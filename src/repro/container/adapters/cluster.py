"""The Cluster adapter: services backed by a TORQUE-like batch system.

"Performs translation of service request into a batch job submitted to
computing cluster via TORQUE resource manager." (paper §3.1)

Configuration::

    {
      "cluster": "hpc1",                 # container-registered Cluster
      "command": "python3 run.py {file:task} result.json",
      "stage_out": ["result.json"],
      "outputs": {
        "result": {"file": "result.json", "json": true},
        "log":    {"stdout": true}
      },
      "resources": {"nodes": 1, "ppn": 2, "walltime": 600}
    }

Command templating follows the Command adapter's rules, except that
``{file:param}`` stages the input into the batch job's sandbox (the
scratch directory on the execution node) instead of a local temp dir.
"""

from __future__ import annotations

import json
import shlex
from typing import Any

from repro.batch import BatchJob, BatchJobState, Cluster, JobResources
from repro.container.adapters.base import Adapter, JobContext, ResourceResolver
from repro.core.errors import AdapterError, ConfigurationError


class ClusterAdapter(Adapter):
    kind = "cluster"

    def __init__(self) -> None:
        self.cluster: Cluster | None = None
        self.command_template = ""
        self.stage_out: list[str] = []
        self.output_specs: dict[str, dict[str, Any]] = {}
        self.resources = JobResources()
        self._active: dict[str, str] = {}  # service job id -> batch job id

    def configure(self, config: dict[str, Any], resources: ResourceResolver) -> None:
        self.configure_determinism(config)
        cluster_name = config.get("cluster")
        if isinstance(cluster_name, Cluster):
            self.cluster = cluster_name
        elif isinstance(cluster_name, str) and cluster_name:
            try:
                backend = resources.resource(cluster_name)
            except KeyError as exc:
                raise ConfigurationError(f"unknown cluster resource {cluster_name!r}") from exc
            if not isinstance(backend, Cluster):
                raise ConfigurationError(f"resource {cluster_name!r} is not a Cluster")
            self.cluster = backend
        else:
            raise ConfigurationError("cluster adapter requires a 'cluster'")
        self.command_template = config.get("command", "")
        if not self.command_template:
            raise ConfigurationError("cluster adapter requires a 'command'")
        self.stage_out = list(config.get("stage_out", []))
        self.output_specs = dict(config.get("outputs", {}))
        spec = config.get("resources", {})
        self.resources = JobResources(
            nodes=int(spec.get("nodes", 1)),
            ppn=int(spec.get("ppn", 1)),
            walltime=float(spec.get("walltime", 3600.0)),
        )

    def _build_batch_job(self, context: JobContext) -> BatchJob:
        stage_in: dict[str, bytes] = {}
        argv: list[str] = []
        for token in shlex.split(self.command_template):
            argv.append(self._render(token, context, stage_in))
        return BatchJob(
            name=f"{context.description.name}-{context.job.id}",
            command=argv,
            stage_in=stage_in,
            stage_out=list(self.stage_out),
            resources=self.resources,
            # the billing tenant rides from submit through to the cluster's
            # slot-time accounting
            tenant=context.job.extra.get("tenant"),
        )

    def _render(self, token: str, context: JobContext, stage_in: dict[str, bytes]) -> str:
        from repro.container.adapters.command import render_value

        pieces: list[str] = []
        position = 0
        while position < len(token):
            char = token[position]
            if token.startswith("{{", position):
                pieces.append("{")
                position += 2
            elif token.startswith("}}", position):
                pieces.append("}")
                position += 2
            elif char == "{":
                end = token.find("}", position)
                if end < 0:
                    raise AdapterError(f"unbalanced '{{' in command token {token!r}")
                placeholder = token[position + 1 : end]
                if placeholder.startswith("file:"):
                    name = placeholder[len("file:") :]
                    if name not in context.inputs:
                        raise AdapterError(f"command references unknown input {name!r}")
                    sandbox_name = f"input-{name}"
                    stage_in[sandbox_name] = context.input_bytes(name)
                    pieces.append(sandbox_name)
                elif placeholder in context.inputs:
                    pieces.append(render_value(context.inputs[placeholder]))
                else:
                    raise AdapterError(f"command references unknown input {placeholder!r}")
                position = end + 1
            else:
                pieces.append(char)
                position += 1
        return "".join(pieces)

    def execute(self, context: JobContext) -> dict[str, Any]:
        assert self.cluster is not None, "adapter not configured"
        batch_job = self._build_batch_job(context)
        self.cluster.qsub(batch_job)
        self._active[context.job.id] = batch_job.id
        try:
            while not batch_job.wait(timeout=0.02):
                if context.cancelled:
                    self.cluster.qdel(batch_job.id)
                    batch_job.wait(timeout=5)
                    raise AdapterError("job cancelled")
        finally:
            self._active.pop(context.job.id, None)
        if batch_job.state is BatchJobState.CANCELLED:
            raise AdapterError("batch job was cancelled")
        if batch_job.state is not BatchJobState.COMPLETED:
            raise AdapterError(
                f"batch job failed ({batch_job.failure_reason}): {batch_job.stderr[-2000:]}"
            )
        return self._collect_outputs(batch_job, context)

    def cancel(self, context: JobContext) -> None:
        batch_id = self._active.get(context.job.id)
        if batch_id is not None:
            self.cluster.qdel(batch_id)

    def _collect_outputs(self, batch_job: BatchJob, context: JobContext) -> dict[str, Any]:
        outputs: dict[str, Any] = {}
        for name, spec in self.output_specs.items():
            if spec.get("stdout"):
                value: Any = batch_job.stdout
            elif spec.get("stderr"):
                value = batch_job.stderr
            elif spec.get("exit_code"):
                outputs[name] = batch_job.exit_status
                continue
            else:
                file_name = spec.get("file", "")
                if file_name not in batch_job.output_files:
                    raise AdapterError(
                        f"batch job did not produce file {file_name!r} for output {name!r}"
                    )
                content = batch_job.output_files[file_name]
                if spec.get("as_file"):
                    outputs[name] = context.store_file(
                        content,
                        name=file_name,
                        content_type=spec.get("content_type", "application/octet-stream"),
                    )
                    continue
                value = content.decode("utf-8", errors="replace")
            if spec.get("json"):
                try:
                    value = json.loads(value)
                except ValueError as exc:
                    raise AdapterError(f"output {name!r} is not valid JSON: {exc}") from exc
            outputs[name] = value
        return outputs
