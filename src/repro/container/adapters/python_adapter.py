"""The Python adapter: services backed by an in-process callable.

The paper's Java adapter "performs invocation of a specified Java class
inside the current Java virtual machine"; transposed to Python, the
adapter calls a function in the current interpreter.

Configuration (one of)::

    {"callable": "package.module:function"}   # imported at deploy time
    {"callable": "registered-name"}           # container-registered callable
    {"callable": <callable object>}           # programmatic deployment

The callable receives the job's *resolved* inputs as keyword arguments
(file references already fetched and decoded) and returns a dict of output
values. A callable that declares a leading ``context`` parameter receives
the :class:`~repro.container.adapters.base.JobContext` as well — that is
how a service stores output files or honours cancellation.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Any, Callable

from repro.container.adapters.base import Adapter, JobContext, ResourceResolver
from repro.core.errors import AdapterError, ConfigurationError


def resolve_callable(spec: Any, resources: ResourceResolver) -> Callable[..., Any]:
    """Turn a configuration value into a callable (see module docstring)."""
    if callable(spec):
        return spec
    if not isinstance(spec, str) or not spec:
        raise ConfigurationError("python adapter requires a 'callable'")
    if ":" in spec:
        module_name, _, attribute = spec.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ConfigurationError(f"cannot import module {module_name!r}: {exc}") from exc
        target = getattr(module, attribute, None)
        if not callable(target):
            raise ConfigurationError(f"{spec!r} does not name a callable")
        return target
    try:
        target = resources.resource(spec)
    except KeyError as exc:
        raise ConfigurationError(
            f"{spec!r} is neither 'module:function' nor a registered callable"
        ) from exc
    if not callable(target):
        raise ConfigurationError(f"registered resource {spec!r} is not callable")
    return target


class PythonAdapter(Adapter):
    kind = "python"
    #: In-process callables leave no external state behind a crash; a
    #: recovered in-flight job can simply be executed again.
    idempotent = True

    def __init__(self) -> None:
        self._callable: Callable[..., Any] | None = None
        self._wants_context = False

    def configure(self, config: dict[str, Any], resources: ResourceResolver) -> None:
        self.configure_determinism(config)
        self._callable = resolve_callable(config.get("callable"), resources)
        try:
            parameters = list(inspect.signature(self._callable).parameters)
        except (TypeError, ValueError):
            parameters = []
        self._wants_context = bool(parameters) and parameters[0] == "context"

    def execute(self, context: JobContext) -> dict[str, Any]:
        assert self._callable is not None, "adapter not configured"
        inputs = context.resolved_inputs()
        try:
            if self._wants_context:
                result = self._callable(context, **inputs)
            else:
                result = self._callable(**inputs)
        except AdapterError:
            raise
        except Exception as exc:  # noqa: BLE001 - service code is arbitrary
            raise AdapterError(f"service callable raised {type(exc).__name__}: {exc}") from exc
        if result is None:
            return {}
        if not isinstance(result, dict):
            raise AdapterError(
                f"service callable must return a dict of outputs, got {type(result).__name__}"
            )
        return result
