"""The Grid adapter: services backed by the gLite-like grid.

"Performs translation of service request into a grid job submitted to the
European Grid Infrastructure ... The internal service configuration
contains the name of grid virtual organization, the path to the grid job
description file and information about mappings between service parameters
and job arguments or files." (paper §3.1)

Configuration::

    {
      "broker": "egi",                       # container-registered GridBroker
      "jdl": "[ Executable = ...; Arguments = \"{n} {file:task}\"; ... ]",
      "owner": "CN=everest-container",        # grid credential used to submit
      "outputs": {
        "curve": {"sandbox": "curve.json", "json": true},
        "log":   {"sandbox": "out.txt"}
      },
      "walltime": 600
    }

The JDL text is a template: ``{param}`` placeholders inside *string
literals* are substituted with input values, and ``{file:param}`` stages
the input into the job's input sandbox and substitutes the sandbox file
name. The rendered JDL must parse (bad templates fail the job with a
JDL syntax error, exactly as gLite submission would).
"""

from __future__ import annotations

import json
from typing import Any

from repro.container.adapters.base import Adapter, JobContext, ResourceResolver
from repro.core.errors import AdapterError, ConfigurationError
from repro.grid import GridBroker, GridJobState, JdlError
from repro.grid.broker import GridError


class GridAdapter(Adapter):
    kind = "grid"

    def __init__(self) -> None:
        self.broker: GridBroker | None = None
        self.jdl_template = ""
        self.owner = ""
        self.output_specs: dict[str, dict[str, Any]] = {}
        self.walltime = 3600.0
        self._active: dict[str, str] = {}

    def configure(self, config: dict[str, Any], resources: ResourceResolver) -> None:
        self.configure_determinism(config)
        broker = config.get("broker")
        if isinstance(broker, GridBroker):
            self.broker = broker
        elif isinstance(broker, str) and broker:
            try:
                backend = resources.resource(broker)
            except KeyError as exc:
                raise ConfigurationError(f"unknown broker resource {broker!r}") from exc
            if not isinstance(backend, GridBroker):
                raise ConfigurationError(f"resource {broker!r} is not a GridBroker")
            self.broker = backend
        else:
            raise ConfigurationError("grid adapter requires a 'broker'")
        self.jdl_template = config.get("jdl", "")
        if not self.jdl_template:
            raise ConfigurationError("grid adapter requires a 'jdl' template")
        self.owner = config.get("owner", "")
        if not self.owner:
            raise ConfigurationError("grid adapter requires an 'owner' credential")
        self.output_specs = dict(config.get("outputs", {}))
        self.walltime = float(config.get("walltime", 3600.0))

    def _render(self, context: JobContext) -> tuple[str, dict[str, bytes]]:
        sandbox: dict[str, bytes] = {}
        text = self.jdl_template
        rendered: list[str] = []
        position = 0
        while True:
            start = text.find("{", position)
            if start < 0:
                rendered.append(text[position:])
                break
            # JDL's own list braces contain quotes/attribute text, not
            # identifiers; treat {name} / {file:name} as placeholders only.
            end = text.find("}", start)
            if end < 0:
                rendered.append(text[position:])
                break
            inner = text[start + 1 : end].strip()
            if inner.startswith("file:"):
                name = inner[len("file:") :]
                if name not in context.inputs:
                    raise AdapterError(f"JDL references unknown input {name!r}")
                sandbox_name = f"input-{name}"
                sandbox[sandbox_name] = context.input_bytes(name)
                rendered.append(text[position:start] + sandbox_name)
                position = end + 1
            elif inner.isidentifier() and inner in context.inputs:
                value = context.inputs[inner]
                if isinstance(value, str):
                    replacement = value
                elif isinstance(value, bool):
                    replacement = "true" if value else "false"
                elif isinstance(value, (int, float)):
                    replacement = repr(value)
                else:
                    replacement = json.dumps(value).replace("\\", "\\\\").replace('"', '\\"')
                rendered.append(text[position:start] + replacement)
                position = end + 1
            else:
                rendered.append(text[position : end + 1])
                position = end + 1
        jdl = "".join(rendered)
        if sandbox:
            declared = ", ".join(f'"{name}"' for name in sandbox)
            if "InputSandbox" not in jdl:
                jdl = jdl.rstrip().rstrip("]") + f"  InputSandbox = {{{declared}}};\n]"
        return jdl, sandbox

    def execute(self, context: JobContext) -> dict[str, Any]:
        assert self.broker is not None, "adapter not configured"
        jdl, sandbox = self._render(context)
        try:
            grid_job = self.broker.submit(
                jdl, owner=self.owner, input_sandbox=sandbox, walltime=self.walltime
            )
        except (GridError, JdlError) as exc:
            raise AdapterError(f"grid submission failed: {exc}") from exc
        self._active[context.job.id] = grid_job.id
        try:
            while not grid_job.batch_job.wait(timeout=0.02):
                if context.cancelled:
                    self.broker.cancel(grid_job.id)
                    grid_job.batch_job.wait(timeout=5)
                    raise AdapterError("job cancelled")
        finally:
            self._active.pop(context.job.id, None)
        if grid_job.state is GridJobState.CANCELLED:
            raise AdapterError("grid job was cancelled")
        if grid_job.state is not GridJobState.DONE:
            raise AdapterError(f"grid job aborted: {grid_job.failure_reason}")
        return self._collect_outputs(grid_job.output_sandbox(), context)

    def cancel(self, context: JobContext) -> None:
        grid_id = self._active.get(context.job.id)
        if grid_id is not None:
            try:
                self.broker.cancel(grid_id)
            except GridError:
                pass

    def _collect_outputs(self, sandbox: dict[str, bytes], context: JobContext) -> dict[str, Any]:
        outputs: dict[str, Any] = {}
        for name, spec in self.output_specs.items():
            file_name = spec.get("sandbox", "")
            if file_name not in sandbox:
                raise AdapterError(
                    f"grid job did not return sandbox file {file_name!r} for output {name!r}"
                )
            content = sandbox[file_name]
            if spec.get("as_file"):
                outputs[name] = context.store_file(
                    content,
                    name=file_name,
                    content_type=spec.get("content_type", "application/octet-stream"),
                )
            elif spec.get("json"):
                try:
                    outputs[name] = json.loads(content)
                except ValueError as exc:
                    raise AdapterError(f"output {name!r} is not valid JSON: {exc}") from exc
            else:
                outputs[name] = content.decode("utf-8", errors="replace")
        return outputs
