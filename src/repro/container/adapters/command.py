"""The Command adapter: services backed by an executable.

"Converts service request to an execution of specified command in a
separate process. The internal service configuration contains the command
to execute and information about mappings between service parameters and
command line arguments or external files." (paper §3.1)

Configuration::

    {
      "command": "python3 invert.py --n {n} --matrix {file:matrix}",
      "stdin": "{payload}",              # optional stdin template
      "outputs": {
        "inverse": {"file": "result.json", "json": true},
        "log":     {"stdout": true},
        "report":  {"file": "report.txt", "as_file": true,
                     "content_type": "text/plain"}
      },
      "timeout": 300,
      "allow_nonzero_exit": false
    }

Template placeholders: ``{param}`` substitutes the input value into the
token (scalars as text, structures as JSON); ``{file:param}`` materializes
the input — file references are downloaded — as a file in the scratch
directory and substitutes its path. The command string is tokenized with
shell rules but executed *without* a shell.

Output mappings: ``{"stdout": true}`` / ``{"stderr": true}`` capture the
streams, ``{"exit_code": true}`` the status, ``{"file": name}`` reads a
produced file — parsed as JSON with ``"json": true``, or stored as a file
resource (returned by reference) with ``"as_file": true``.
"""

from __future__ import annotations

import json
import shlex
import subprocess
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.container.adapters.base import Adapter, JobContext, ResourceResolver
from repro.core.errors import AdapterError, ConfigurationError

def render_value(value: Any) -> str:
    """How an input value appears when substituted into a command."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    return json.dumps(value)


def render_token(token: str, context: JobContext, scratch: Path, file_counter: list[int]) -> str:
    """Substitute every ``{param}`` / ``{file:param}`` in one token.

    Literal braces are written ``{{`` and ``}}`` (as in ``str.format``), so
    commands may contain JSON or shell constructs untouched.
    """
    pieces: list[str] = []
    position = 0
    while position < len(token):
        char = token[position]
        if token.startswith("{{", position):
            pieces.append("{")
            position += 2
        elif token.startswith("}}", position):
            pieces.append("}")
            position += 2
        elif char == "{":
            end = token.find("}", position)
            if end < 0:
                raise AdapterError(f"unbalanced '{{' in command token {token!r}")
            placeholder = token[position + 1 : end]
            if placeholder.startswith("file:"):
                name = placeholder[len("file:") :]
                if name not in context.inputs:
                    raise AdapterError(f"command references unknown input {name!r}")
                file_counter[0] += 1
                path = scratch / f"input-{file_counter[0]}-{name}"
                path.write_bytes(context.input_bytes(name))
                pieces.append(str(path))
            elif placeholder == "workdir":
                pieces.append(str(scratch))
            elif placeholder in context.inputs:
                pieces.append(render_value(context.inputs[placeholder]))
            else:
                raise AdapterError(f"command references unknown input {placeholder!r}")
            position = end + 1
        else:
            pieces.append(char)
            position += 1
    return "".join(pieces)


class CommandAdapter(Adapter):
    kind = "command"
    #: Commands run in throwaway scratch directories from staged-in
    #: inputs; re-running after a crash repeats the same isolated work.
    idempotent = True

    def __init__(self) -> None:
        self.command_template = ""
        self.stdin_template: str | None = None
        self.output_specs: dict[str, dict[str, Any]] = {}
        self.timeout = 3600.0
        self.allow_nonzero_exit = False

    def configure(self, config: dict[str, Any], resources: ResourceResolver) -> None:
        self.configure_determinism(config)
        self.command_template = config.get("command", "")
        if not self.command_template:
            raise ConfigurationError("command adapter requires a 'command'")
        try:
            shlex.split(self.command_template)
        except ValueError as exc:
            raise ConfigurationError(f"unparsable command template: {exc}") from exc
        self.stdin_template = config.get("stdin")
        self.timeout = float(config.get("timeout", 3600.0))
        self.allow_nonzero_exit = bool(config.get("allow_nonzero_exit", False))
        self.output_specs = dict(config.get("outputs", {}))
        for name, spec in self.output_specs.items():
            if not isinstance(spec, dict):
                raise ConfigurationError(f"output mapping {name!r} must be an object")
            sources = [k for k in ("stdout", "stderr", "exit_code", "file") if k in spec]
            if len(sources) != 1:
                raise ConfigurationError(
                    f"output mapping {name!r} needs exactly one of stdout/stderr/exit_code/file"
                )

    def execute(self, context: JobContext) -> dict[str, Any]:
        with tempfile.TemporaryDirectory(prefix="mc-command-") as scratch_name:
            scratch = Path(scratch_name)
            counter = [0]
            argv = [
                render_token(token, context, scratch, counter)
                for token in shlex.split(self.command_template)
            ]
            stdin_text = None
            if self.stdin_template is not None:
                stdin_text = render_token(self.stdin_template, context, scratch, counter)
            completed = self._run(argv, stdin_text, scratch, context)
            if completed.returncode != 0 and not self.allow_nonzero_exit:
                tail = (completed.stderr or "")[-2000:]
                raise AdapterError(
                    f"command exited with status {completed.returncode}: {tail}"
                )
            return self._collect_outputs(completed, scratch, context)

    def _run(
        self,
        argv: list[str],
        stdin_text: str | None,
        scratch: Path,
        context: JobContext,
    ) -> subprocess.CompletedProcess:
        process = subprocess.Popen(
            argv,
            cwd=scratch,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        deadline = time.monotonic() + self.timeout
        try:
            if stdin_text:
                process.stdin.write(stdin_text)
            process.stdin.close()
        except BrokenPipeError:
            pass
        while process.poll() is None:
            if context.cancelled:
                process.kill()
                process.wait()
                raise AdapterError("job cancelled")
            if time.monotonic() > deadline:
                process.kill()
                process.wait()
                raise AdapterError(f"command exceeded timeout of {self.timeout}s")
            time.sleep(0.005)
        stdout = process.stdout.read()
        stderr = process.stderr.read()
        return subprocess.CompletedProcess(argv, process.returncode, stdout, stderr)

    def _collect_outputs(
        self,
        completed: subprocess.CompletedProcess,
        scratch: Path,
        context: JobContext,
    ) -> dict[str, Any]:
        outputs: dict[str, Any] = {}
        for name, spec in self.output_specs.items():
            if spec.get("stdout"):
                value: Any = completed.stdout
            elif spec.get("stderr"):
                value = completed.stderr
            elif spec.get("exit_code"):
                outputs[name] = completed.returncode
                continue
            else:
                path = scratch / spec["file"]
                if not path.exists():
                    raise AdapterError(
                        f"command did not produce expected file {spec['file']!r} for output {name!r}"
                    )
                if spec.get("as_file"):
                    outputs[name] = context.store_file(
                        path.read_bytes(),
                        name=Path(spec["file"]).name,
                        content_type=spec.get("content_type", "application/octet-stream"),
                    )
                    continue
                value = path.read_text()
            if spec.get("json"):
                try:
                    value = json.loads(value)
                except ValueError as exc:
                    raise AdapterError(f"output {name!r} is not valid JSON: {exc}") from exc
            elif spec.get("strip"):
                value = value.strip()
            outputs[name] = value
        return outputs
