"""The adapter interface and the job context adapters execute against."""

from __future__ import annotations

import json
from typing import Any, Protocol

from repro.core.description import ServiceDescription
from repro.core.errors import AdapterError
from repro.core.filerefs import file_uri, is_file_ref, make_file_ref
from repro.core.files import FileStore
from repro.core.jobs import Job
from repro.http.client import ClientError, RestClient
from repro.http.registry import TransportRegistry
from repro.http.transport import TransportError


class ResourceResolver(Protocol):
    """Looks up named backend resources (clusters, grid brokers, callables)
    registered with the container."""

    def resource(self, name: str) -> Any: ...


class JobContext:
    """Everything an adapter may touch while processing one job.

    The context mediates all I/O: resolving input file references (fetching
    them from wherever in the federation they live), storing output files
    as subordinate file resources, and exposing the cooperative
    cancellation flag.
    """

    def __init__(
        self,
        job: Job,
        description: ServiceDescription,
        files: FileStore,
        registry: TransportRegistry,
        base_uri_fn: Any,
        resources: ResourceResolver,
    ):
        self.job = job
        self.description = description
        self.files = files
        self.registry = registry
        self._base_uri_fn = base_uri_fn
        self.resources = resources

    @property
    def inputs(self) -> dict[str, Any]:
        return self.job.inputs

    @property
    def cancelled(self) -> bool:
        return self.job.cancel_event.is_set()

    @property
    def service_base_uri(self) -> str:
        return self._base_uri_fn() if callable(self._base_uri_fn) else str(self._base_uri_fn)

    # -------------------------------------------------------------- input

    def fetch_file(self, reference: dict[str, Any]) -> bytes:
        """Download the content behind a file reference."""
        uri = file_uri(reference)
        try:
            return RestClient(self.registry).get_bytes(uri)
        except (ClientError, TransportError) as exc:
            raise AdapterError(f"cannot fetch input file {uri!r}: {exc}") from exc

    def input_bytes(self, name: str) -> bytes:
        """An input value as bytes: file refs are fetched, scalars/structures
        are rendered as JSON (strings as UTF-8 text)."""
        value = self.inputs[name]
        if is_file_ref(value):
            return self.fetch_file(value)
        if isinstance(value, str):
            return value.encode("utf-8")
        return json.dumps(value).encode("utf-8")

    def resolve_input(self, name: str) -> Any:
        """An input value with file refs fetched and JSON-decoded.

        The fetched content is parsed as JSON when possible, else returned
        as text.
        """
        value = self.inputs[name]
        if not is_file_ref(value):
            return value
        content = self.fetch_file(value)
        try:
            return json.loads(content)
        except (ValueError, UnicodeDecodeError):
            return content.decode("utf-8", errors="replace")

    def resolved_inputs(self) -> dict[str, Any]:
        return {name: self.resolve_input(name) for name in self.inputs}

    # ------------------------------------------------------------- output

    def store_file(
        self,
        content: bytes,
        name: str = "",
        content_type: str = "application/octet-stream",
    ) -> dict[str, Any]:
        """Store an output file under this job; returns its reference."""
        entry = self.files.put(content, job_id=self.job.id, name=name, content_type=content_type)
        uri = f"{self.service_base_uri}/jobs/{self.job.id}/files/{entry.id}"
        return make_file_ref(uri, name=name, size=entry.size, content_type=content_type)


class Adapter:
    """Base class of the pluggable request processors.

    Lifecycle: one adapter instance per deployed service. ``configure`` is
    called once at deploy time with the *internal service configuration*
    (paper §3.1) and should reject bad configurations eagerly; ``execute``
    is called per job on a handler thread and returns the output parameter
    values; ``cancel`` is called when a client deletes a live job.
    """

    #: The configuration name of this adapter type ("command", "python"...).
    kind: str = ""

    #: Whether re-executing a job from its recorded inputs is safe.
    #: Recovery re-enqueues in-flight jobs of idempotent adapters after a
    #: cold restart; non-idempotent ones (external backends that may have
    #: partially acted) are failed as interrupted instead.
    idempotent: bool = False

    #: Whether identical inputs always produce equivalent outputs. The
    #: result cache only serves/coalesces submissions of deterministic
    #: adapters; a nondeterministic service (random seeds, wall-clock
    #: reads, stateful backends) opts out by clearing this — either in the
    #: adapter class or per deployment via ``{"deterministic": false}`` in
    #: the internal configuration (see :meth:`configure_determinism`).
    deterministic: bool = True

    def configure_determinism(self, config: dict[str, Any]) -> None:
        """Absorb a ``deterministic`` override from the internal
        configuration; adapters call this from ``configure``."""
        if "deterministic" in config:
            self.deterministic = bool(config["deterministic"])

    def configure(self, config: dict[str, Any], resources: ResourceResolver) -> None:
        """Validate and absorb the internal service configuration."""

    def execute(self, context: JobContext) -> dict[str, Any]:
        """Process one job; blocking. Returns output parameter values."""
        raise NotImplementedError

    def cancel(self, context: JobContext) -> None:
        """Best-effort abort of a running job (the cancel event is already
        set; override to propagate to external backends)."""
