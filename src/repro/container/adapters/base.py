"""The adapter interface and the job context adapters execute against."""

from __future__ import annotations

import json
from typing import Any, Protocol

from repro.core.description import ServiceDescription
from repro.core.errors import AdapterError
from repro.core.filerefs import (
    blob_digest,
    file_uri,
    is_blob_ref,
    is_file_ref,
    make_blob_ref,
    make_file_ref,
)
from repro.core.files import FileStore
from repro.core.jobs import Job
from repro.http.client import ClientError, RestClient
from repro.http.registry import TransportRegistry
from repro.http.transport import TransportError


class ResourceResolver(Protocol):
    """Looks up named backend resources (clusters, grid brokers, callables)
    registered with the container."""

    def resource(self, name: str) -> Any: ...


class JobContext:
    """Everything an adapter may touch while processing one job.

    The context mediates all I/O: resolving input file references (fetching
    them from wherever in the federation they live), storing output files
    as subordinate file resources, and exposing the cooperative
    cancellation flag.
    """

    def __init__(
        self,
        job: Job,
        description: ServiceDescription,
        files: FileStore,
        registry: TransportRegistry,
        base_uri_fn: Any,
        resources: ResourceResolver,
        blobs: Any = None,
        blob_base_fn: Any = None,
        fetch_max_bytes: "int | None" = None,
        fetch_timeout: "float | None" = None,
    ):
        self.job = job
        self.description = description
        self.files = files
        self.registry = registry
        self._base_uri_fn = base_uri_fn
        self.resources = resources
        #: The container's blob store (``None`` in blob-less deployments).
        self.blobs = blobs
        self._blob_base_fn = blob_base_fn
        #: Caps on resolving remote file references: a reference whose
        #: content exceeds ``fetch_max_bytes`` or whose transfer outruns
        #: ``fetch_timeout`` fails this job recoverably instead of pinning
        #: a handler thread under an unbounded download.
        self.fetch_max_bytes = fetch_max_bytes
        self.fetch_timeout = fetch_timeout

    @property
    def inputs(self) -> dict[str, Any]:
        return self.job.inputs

    @property
    def cancelled(self) -> bool:
        return self.job.cancel_event.is_set()

    @property
    def service_base_uri(self) -> str:
        return self._base_uri_fn() if callable(self._base_uri_fn) else str(self._base_uri_fn)

    # -------------------------------------------------------------- input

    def fetch_file(self, reference: dict[str, Any]) -> bytes:
        """Download the content behind a file reference.

        Blob references resolve through the local blob store when one is
        attached: already-staged content is read from disk, anything else
        is staged chunk-wise from the owning container (sharing chunks
        with previously staged blobs) before being read. Plain file
        references — and blob references whose producer does not answer
        the manifest resource — fall back to a whole-body GET. Either
        path honours the context's size cap and deadline, failing the job
        recoverably on violation.
        """
        uri = file_uri(reference)
        if is_blob_ref(reference) and self.blobs is not None:
            digest = self._ensure_staged(reference)
            return self.blobs.read(digest)
        try:
            return RestClient(self.registry).get_bytes(uri, max_bytes=self.fetch_max_bytes)
        except (ClientError, TransportError) as exc:
            raise AdapterError(f"cannot fetch input file {uri!r}: {exc}") from exc

    def open_blob(self, reference: dict[str, Any]) -> Any:
        """Iterate a blob input's bytes chunk-wise — constant memory.

        Stages the blob into the local store first when it is not already
        there; the returned iterator reads one stored chunk at a time, so
        an arbitrarily large input can be processed without ever holding
        it whole. Requires the container's blob store and a blob ref.
        """
        if not is_blob_ref(reference) or self.blobs is None:
            raise AdapterError("open_blob requires a blob reference and a blob store")
        return self.blobs.open_range(self._ensure_staged(reference))

    def _ensure_staged(self, reference: dict[str, Any]) -> str:
        """The reference's digest, with its content present in the local
        store and pinned for this job's lifetime (a job that outlives the
        GC grace period must never have its input swept mid-run; the pin
        is released when the job is deleted, like output pins)."""
        digest = blob_digest(reference)
        if not self.blobs.exists(digest):
            from repro.blob.staging import StagingError, stage_blob

            uri = file_uri(reference)
            try:
                stage_blob(
                    self.blobs,
                    self.registry,
                    uri,
                    digest,
                    max_bytes=self.fetch_max_bytes,
                    timeout=self.fetch_timeout,
                )
            except (ClientError, TransportError, StagingError) as exc:
                raise AdapterError(f"cannot stage input blob {uri!r}: {exc}") from exc
        self.blobs.pin(digest, f"job:{self.job.id}")
        return digest

    def input_bytes(self, name: str) -> bytes:
        """An input value as bytes: file refs are fetched, scalars/structures
        are rendered as JSON (strings as UTF-8 text)."""
        value = self.inputs[name]
        if is_file_ref(value):
            return self.fetch_file(value)
        if isinstance(value, str):
            return value.encode("utf-8")
        return json.dumps(value).encode("utf-8")

    def resolve_input(self, name: str) -> Any:
        """An input value with plain file refs fetched and JSON-decoded.

        The fetched content is parsed as JSON when possible, else returned
        as text. Blob references stay *by reference*: they address bulk
        binary data that must never be inflated into an argument value —
        the service pulls the bytes through :meth:`input_bytes` or
        :meth:`fetch_file` when (and only when) it wants them.
        """
        value = self.inputs[name]
        if not is_file_ref(value) or is_blob_ref(value):
            return value
        content = self.fetch_file(value)
        try:
            return json.loads(content)
        except (ValueError, UnicodeDecodeError):
            return content.decode("utf-8", errors="replace")

    def resolved_inputs(self) -> dict[str, Any]:
        return {name: self.resolve_input(name) for name in self.inputs}

    # ------------------------------------------------------------- output

    def store_file(
        self,
        content: bytes,
        name: str = "",
        content_type: str = "application/octet-stream",
    ) -> dict[str, Any]:
        """Store an output file under this job; returns its reference."""
        entry = self.files.put(content, job_id=self.job.id, name=name, content_type=content_type)
        uri = f"{self.service_base_uri}/jobs/{self.job.id}/files/{entry.id}"
        return make_file_ref(uri, name=name, size=entry.size, content_type=content_type)

    def store_blob(
        self,
        content: "bytes | Any",
        name: str = "",
        content_type: str = "application/octet-stream",
    ) -> dict[str, Any]:
        """Store an output as a content-addressed blob; returns its reference.

        ``content`` may be a buffer or any iterable of buffers — a
        generator lets a service emit an arbitrarily large output in
        constant memory. The blob is pinned by this job (released when
        the job is deleted) and the returned reference carries the
        digest, so consumers stage it by content instead of copying bytes
        through intermediaries. Requires the container's blob store;
        falls back to :meth:`store_file` (which buffers) when there is
        none.
        """
        if self.blobs is None:
            if not isinstance(content, (bytes, bytearray, memoryview)):
                content = b"".join(content)
            return self.store_file(bytes(content), name=name, content_type=content_type)
        manifest = self.blobs.put_bytes(content, content_type=content_type)
        self.blobs.pin(manifest.digest, f"job:{self.job.id}")
        base = (
            self._blob_base_fn()
            if callable(self._blob_base_fn)
            else (self._blob_base_fn or self.service_base_uri)
        )
        return make_blob_ref(
            manifest.digest,
            f"{str(base).rstrip('/')}/blobs/{manifest.digest}",
            name=name,
            size=manifest.size,
            content_type=content_type,
        )


class Adapter:
    """Base class of the pluggable request processors.

    Lifecycle: one adapter instance per deployed service. ``configure`` is
    called once at deploy time with the *internal service configuration*
    (paper §3.1) and should reject bad configurations eagerly; ``execute``
    is called per job on a handler thread and returns the output parameter
    values; ``cancel`` is called when a client deletes a live job.
    """

    #: The configuration name of this adapter type ("command", "python"...).
    kind: str = ""

    #: Whether re-executing a job from its recorded inputs is safe.
    #: Recovery re-enqueues in-flight jobs of idempotent adapters after a
    #: cold restart; non-idempotent ones (external backends that may have
    #: partially acted) are failed as interrupted instead.
    idempotent: bool = False

    #: Whether identical inputs always produce equivalent outputs. The
    #: result cache only serves/coalesces submissions of deterministic
    #: adapters; a nondeterministic service (random seeds, wall-clock
    #: reads, stateful backends) opts out by clearing this — either in the
    #: adapter class or per deployment via ``{"deterministic": false}`` in
    #: the internal configuration (see :meth:`configure_determinism`).
    deterministic: bool = True

    def configure_determinism(self, config: dict[str, Any]) -> None:
        """Absorb a ``deterministic`` override from the internal
        configuration; adapters call this from ``configure``."""
        if "deterministic" in config:
            self.deterministic = bool(config["deterministic"])

    def configure(self, config: dict[str, Any], resources: ResourceResolver) -> None:
        """Validate and absorb the internal service configuration."""

    def execute(self, context: JobContext) -> dict[str, Any]:
        """Process one job; blocking. Returns output parameter values."""
        raise NotImplementedError

    def cancel(self, context: JobContext) -> None:
        """Best-effort abort of a running job (the cancel event is already
        set; override to propagate to external backends)."""
