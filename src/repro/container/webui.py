"""Auto-generated web interface for deployed services.

"In addition to this, container automatically generates a complementary
web interface allowing users to access the service via a web browser."
(paper §3.1)

The page is a self-contained HTML document: a form generated from the
service description, and a small JavaScript snippet that submits the form
as JSON through the unified REST API and polls the job resource — the
Ajax-native integration the paper argues REST+JSON buys over big Web
services.
"""

from __future__ import annotations

import html
import json

from repro.core.description import Parameter, ServiceDescription

_PAGE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
 body {{ font-family: sans-serif; margin: 2em; max-width: 50em; }}
 label {{ display: block; margin-top: 1em; font-weight: bold; }}
 .hint {{ color: #666; font-size: 0.85em; }}
 textarea, input {{ width: 100%; box-sizing: border-box; font-family: monospace; }}
 #state {{ font-weight: bold; }}
 pre {{ background: #f4f4f4; padding: 1em; overflow-x: auto; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p>{description}</p>
<form id="job-form">
{fields}
<p><button type="submit">Submit</button></p>
</form>
<p>Job state: <span id="state">—</span></p>
<pre id="result"></pre>
<script>
const SERVICE_URI = {service_uri_json};
const SCHEMAS = {schemas_json};
document.getElementById('job-form').addEventListener('submit', async (event) => {{
  event.preventDefault();
  const inputs = {{}};
  for (const [name, schema] of Object.entries(SCHEMAS)) {{
    const field = document.getElementById('param-' + name);
    if (!field || field.value === '') continue;
    try {{ inputs[name] = JSON.parse(field.value); }}
    catch (e) {{ inputs[name] = field.value; }}
  }}
  const created = await fetch(SERVICE_URI, {{
    method: 'POST',
    headers: {{'Content-Type': 'application/json'}},
    body: JSON.stringify(inputs),
  }}).then(r => r.json());
  const poll = async () => {{
    const job = await fetch(created.uri).then(r => r.json());
    document.getElementById('state').textContent = job.state;
    if (job.state === 'DONE' || job.state === 'FAILED' || job.state === 'CANCELLED') {{
      document.getElementById('result').textContent = JSON.stringify(job, null, 2);
    }} else {{
      setTimeout(poll, 500);
    }}
  }};
  poll();
}});
</script>
</body>
</html>
"""


def _field(parameter: Parameter) -> str:
    schema_text = html.escape(json.dumps(parameter.schema))
    title = html.escape(parameter.title or parameter.name)
    required = "" if parameter.required else " (optional)"
    default = "" if parameter.default is None else html.escape(json.dumps(parameter.default))
    return (
        f'<label for="param-{parameter.name}">{title}{required}</label>\n'
        f'<span class="hint">schema: {schema_text}</span>\n'
        f'<textarea id="param-{parameter.name}" rows="2">{default}</textarea>'
    )


def render_service_page(description: ServiceDescription, service_uri: str) -> str:
    """The HTML page served at ``GET <service>/ui``."""
    fields = "\n".join(_field(parameter) for parameter in description.inputs)
    return _PAGE.format(
        title=html.escape(description.title or description.name),
        description=html.escape(description.description),
        fields=fields,
        service_uri_json=json.dumps(service_uri),
        schemas_json=json.dumps({p.name: p.schema for p in description.inputs}),
    )


def render_index_page(container_name: str, services: list[ServiceDescription]) -> str:
    """The HTML index listing every deployed service."""
    rows = "\n".join(
        f'<li><a href="/services/{d.name}/ui">{html.escape(d.title or d.name)}</a>'
        f' — {html.escape(d.description or "")}</li>'
        for d in sorted(services, key=lambda d: d.name)
    )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(container_name)}</title></head>\n"
        f"<body><h1>Services deployed in {html.escape(container_name)}</h1>\n"
        f"<ul>\n{rows}\n</ul></body></html>"
    )
