"""Everest — the MathCloud service container (paper §3.1, Fig. 1).

The container turns applications into computational web services: it
keeps a list of deployed services and their configurations (*Service
Manager*), converts incoming requests into asynchronous jobs served by a
configurable pool of handler threads (*Job Manager*), and delegates the
actual request processing to pluggable *adapters*:

- :class:`~repro.container.adapters.command.CommandAdapter` — run a shell
  command in a scratch directory (the paper's Command adapter);
- :class:`~repro.container.adapters.python_adapter.PythonAdapter` — call
  a Python function in-process (the paper's Java adapter, transposed);
- :class:`~repro.container.adapters.cluster.ClusterAdapter` — submit a
  batch job to a TORQUE-like cluster (:mod:`repro.batch`);
- :class:`~repro.container.adapters.grid.GridAdapter` — submit a JDL job
  through the gLite-like broker (:mod:`repro.grid`).

Every deployed service is published through the unified REST API and gets
an auto-generated web page (:mod:`repro.container.webui`).
"""

from repro.container.adapters.base import Adapter, JobContext
from repro.container.config import ServiceConfig
from repro.container.container import ServiceContainer

__all__ = ["Adapter", "JobContext", "ServiceConfig", "ServiceContainer"]
