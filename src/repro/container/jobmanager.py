"""The Job Manager: queue plus a configurable pool of handler threads.

"The requests are converted into asynchronous jobs and placed in a queue
served by a configurable pool of handler threads. During job processing,
handler thread invokes adapter specified in the service configuration."
(paper §3.1)

The pool is shared by every service deployed in the container, so the pool
size bounds the container's processing concurrency (benchmark F1 sweeps
it).
"""

from __future__ import annotations

import logging
import queue
import threading
import traceback
from typing import Any, Callable

from repro.core.errors import AdapterError, ServiceError
from repro.core.jobs import Job, JobState

logger = logging.getLogger(__name__)

#: A unit of work: the job and the thunk that runs its adapter.
_Task = tuple[Job, Callable[[], dict[str, Any]]]


class JobManager:
    """Runs adapter executions for queued jobs on a fixed thread pool."""

    def __init__(self, handlers: int = 4, name: str = "everest"):
        if handlers < 1:
            raise ValueError("the handler pool needs at least one thread")
        self.handlers = handlers
        self._queue: "queue.Queue[_Task | None]" = queue.Queue()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"{name}-handler-{index}", daemon=True
            )
            for index in range(handlers)
        ]
        for thread in self._threads:
            thread.start()
        self._stopped = False

    def enqueue(self, job: Job, execute: Callable[[], dict[str, Any]]) -> None:
        """Queue one job; ``execute`` is the adapter invocation thunk."""
        if self._stopped:
            raise ServiceError("container is shut down")
        self._queue.put((job, execute))

    def run_job(self, job: Job, execute: Callable[[], dict[str, Any]]) -> None:
        """Process a job in the calling thread (sync-mode services)."""
        self._process(job, execute)

    @property
    def queued(self) -> int:
        return self._queue.qsize()

    def shutdown(self, wait: bool = True) -> None:
        self._stopped = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=5)

    # ----------------------------------------------------------- internals

    def _worker(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:
                return
            job, execute = task
            self._process(job, execute)

    @staticmethod
    def _process(job: Job, execute: Callable[[], dict[str, Any]]) -> None:
        if job.state.terminal:  # cancelled while queued
            return
        try:
            job.mark_running()
        except ServiceError:
            return  # lost the race against a cancel
        try:
            outputs = execute()
        except AdapterError as error:
            job.try_finish(lambda: (JobState.FAILED, error.message))
            return
        except Exception as error:  # noqa: BLE001 - adapters may misbehave
            logger.error(
                "adapter crashed for job %s\n%s", job.id, traceback.format_exc()
            )
            job.try_finish(
                lambda: (JobState.FAILED, f"internal adapter error: {error}")
            )
            return
        job.try_finish(lambda: (JobState.DONE, outputs))
