"""The Job Manager: queue plus a configurable pool of handler threads.

"The requests are converted into asynchronous jobs and placed in a queue
served by a configurable pool of handler threads. During job processing,
handler thread invokes adapter specified in the service configuration."
(paper §3.1)

The pool is shared by every service deployed in the container, so the pool
size bounds the container's processing concurrency (benchmark F1 sweeps
it). The queue/worker machinery itself lives in
:class:`repro.runtime.ExecutorPool`; the manager adds the job semantics —
state transitions, adapter error conversion, correlation-id logging.
"""

from __future__ import annotations

import logging
import traceback
from typing import Any, Callable

from repro.core.errors import AdapterError, ServiceError
from repro.core.jobs import Job, JobState
from repro.runtime.pool import ExecutorPool, PoolStats

logger = logging.getLogger(__name__)


class JobManager:
    """Runs adapter executions for queued jobs on a fixed thread pool."""

    def __init__(self, handlers: int = 4, name: str = "everest"):
        if handlers < 1:
            raise ValueError("the handler pool needs at least one thread")
        self.handlers = handlers
        self._pool = ExecutorPool(workers=handlers, name=f"{name}-handler")
        self._stopped = False

    def enqueue(self, job: Job, execute: Callable[[], dict[str, Any]]) -> None:
        """Queue one job; ``execute`` is the adapter invocation thunk."""
        if self._stopped:
            raise ServiceError("container is shut down")
        logger.info("job %s [request %s] queued for %s", job.id, job.request_id or "-", job.service)
        self._pool.submit(self._process, job, execute)

    def run_job(self, job: Job, execute: Callable[[], dict[str, Any]]) -> None:
        """Process a job in the calling thread (sync-mode services)."""
        self._process(job, execute)

    def set_task_hook(self, hook: "Callable[[str], None] | None") -> None:
        """Install (or clear) the handler pool's per-task fault hook."""
        self._pool.task_hook = hook

    @property
    def queued(self) -> int:
        return self._pool.stats.queued

    @property
    def stats(self) -> PoolStats:
        """Task counters of the handler pool (queued/running/completed/failed)."""
        return self._pool.stats

    def shutdown(self, wait: bool = True) -> None:
        self._stopped = True
        self._pool.shutdown(wait=wait)

    # ----------------------------------------------------------- internals

    @staticmethod
    def _process(job: Job, execute: Callable[[], dict[str, Any]]) -> None:
        rid = job.request_id or "-"
        if job.state.terminal:  # cancelled while queued
            logger.info("job %s [request %s] skipped: already %s", job.id, rid, job.state.value)
            return
        try:
            job.mark_running()
        except ServiceError:
            return  # lost the race against a cancel
        logger.info("job %s [request %s] running for %s", job.id, rid, job.service)
        try:
            outputs = execute()
        except AdapterError as error:
            job.try_finish(lambda: (JobState.FAILED, error.message))
            logger.info("job %s [request %s] failed: %s", job.id, rid, error.message)
            return
        except Exception as error:  # noqa: BLE001 - adapters may misbehave
            logger.error(
                "adapter crashed for job %s [request %s]\n%s", job.id, rid, traceback.format_exc()
            )
            job.try_finish(
                lambda: (JobState.FAILED, f"internal adapter error: {error}")
            )
            return
        if job.try_finish(lambda: (JobState.DONE, outputs)):
            logger.info("job %s [request %s] done", job.id, rid)
