"""The Job Manager: queue plus a configurable pool of handler threads.

"The requests are converted into asynchronous jobs and placed in a queue
served by a configurable pool of handler threads. During job processing,
handler thread invokes adapter specified in the service configuration."
(paper §3.1)

The pool is shared by every service deployed in the container, so the pool
size bounds the container's processing concurrency (benchmark F1 sweeps
it). The queue/worker machinery itself lives in
:class:`repro.runtime.ExecutorPool`; the manager adds the job semantics —
state transitions, adapter error conversion, correlation-id logging.

Durability: constructed with a ``journal_dir`` the manager write-ahead
journals every job lifecycle event (creation with inputs and the creating
``Idempotency-Key``, then each state transition) and, when the directory
already holds segments, replays them into a per-service recovery table
before serving. The container consumes that table at deploy time to
rebuild each service's job store — completed jobs with their results,
in-flight jobs re-enqueued or failed-as-interrupted.
"""

from __future__ import annotations

import logging
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Callable

from repro.core.errors import AdapterError, ServiceError
from repro.core.jobs import Job, JobState, job_document, restore_job
from repro.durability.journal import Journal
from repro.runtime.pool import ExecutorPool, PoolStats
from repro.runtime.trace import SpanContext, activate_span_context, record_span, span
from repro.tenancy.registry import DEFAULT_TENANT, apply_usage_event

__all__ = [
    "INTERRUPTED_ERROR",
    "JobManager",
    "apply_blob_event",
    "apply_cache_event",
    "apply_job_event",
    "apply_usage_event",
    "job_document",
    "restore_job",
]

logger = logging.getLogger(__name__)

#: The error recorded on jobs whose processing a restart cut short.
INTERRUPTED_ERROR = "interrupted: the container stopped before the job finished"


def apply_job_event(table: dict[str, dict[str, dict]], record: dict[str, Any]) -> None:
    """Fold one journal record into the per-service recovery table."""
    if record.get("type") != "job":
        return
    service, job_id, event = record.get("service"), record.get("id"), record.get("event")
    if not service or not job_id or not event:
        return
    jobs = table.setdefault(service, {})
    if event == "deleted":
        jobs.pop(job_id, None)
        return
    document = jobs.setdefault(job_id, {"id": job_id, "state": JobState.WAITING.value})
    if event == "created":
        for field in ("inputs", "request_id", "key", "created", "extra"):
            if field in record:
                document[field] = record[field]
        # re-enqueued after a previous recovery: the job is in flight again
        document["state"] = JobState.WAITING.value
        document.pop("results", None)
        document.pop("error", None)
    elif event == "running":
        document["state"] = JobState.RUNNING.value
        if "started" in record:
            document["started"] = record["started"]
    elif event in ("done", "failed", "cancelled"):
        document["state"] = {
            "done": JobState.DONE.value,
            "failed": JobState.FAILED.value,
            "cancelled": JobState.CANCELLED.value,
        }[event]
        for field in ("results", "error", "finished", "extra"):
            if field in record:
                document[field] = record[field]


def apply_cache_event(table: dict[str, dict[str, dict]], record: dict[str, Any]) -> None:
    """Fold one cache record (snapshot- or journal-shaped) into the
    per-service rehydration table (service → fingerprint → record)."""
    if "fp" not in record or record.get("type") not in (None, "cache"):
        return
    service, fingerprint, job_id = record.get("service"), record["fp"], record.get("id")
    if not service or not fingerprint or not job_id:
        return
    table.setdefault(service, {})[fingerprint] = {
        "service": service,
        "fp": fingerprint,
        "id": job_id,
        "stored": record.get("stored", 0.0),
    }


def apply_blob_event(table: dict[str, dict[str, Any]], record: dict[str, Any]) -> None:
    """Fold one blob record into the recovery table (digest → entry).

    Events mirror the blob store's lifecycle: ``commit`` makes a digest
    known, ``pin``/``unpin`` maintain its owner list, ``collect`` removes
    it. Replaying the whole journal therefore reproduces the exact pin
    state at crash time, which is what keeps GC safe across restarts.
    """
    if record.get("type") != "blob":
        return
    digest, event = record.get("digest"), record.get("event")
    if not digest or not event:
        return
    if event == "collect":
        table.pop(digest, None)
        return
    entry = table.setdefault(digest, {"committed": False, "pins": []})
    if event == "commit":
        entry["committed"] = True
    elif event == "pin":
        owner = record.get("owner")
        if owner and owner not in entry["pins"]:
            entry["pins"].append(owner)
    elif event == "unpin":
        owner = record.get("owner")
        if owner in entry["pins"]:
            entry["pins"].remove(owner)


class JobManager:
    """Runs adapter executions for queued jobs on a fixed thread pool."""

    def __init__(
        self,
        handlers: int = 4,
        name: str = "everest",
        journal_dir: "str | Path | None" = None,
        journal_fsync: str = "batch",
    ):
        if handlers < 1:
            raise ValueError("the handler pool needs at least one thread")
        self.handlers = handlers
        self._pool = ExecutorPool(workers=handlers, name=f"{name}-handler")
        self._stopped = False
        self._quiesced = False
        #: Live (non-terminal) jobs this manager has adopted, by id.
        self._tracked: dict[str, Job] = {}
        self._track_lock = threading.Lock()
        self.journal: Journal | None = None
        #: Corruption tolerated while replaying the journal, if any.
        self.recovery_warnings: list[str] = []
        self._recovered: dict[str, dict[str, dict]] = {}
        self._recovered_cache: dict[str, dict[str, dict]] = {}
        self._recovered_blobs: dict[str, dict[str, Any]] = {}
        self._recovered_usage: dict[str, dict[str, Any]] = {}
        #: Fair-share admission queue, when tenancy is enabled: jobs park
        #: here and handler threads drain them by scheduler policy.
        self.admission = None
        #: Tenant registry charged for job wall-time, when tenancy is on.
        self.accounting = None
        #: The container's result cache, when one is attached; shutdown
        #: closes it so pending coalesced claims fail instead of hanging.
        self.result_cache = None
        #: The container's span buffer, when observability is on. Spans
        #: for ``queue.wait`` and ``adapter.run`` are recorded against the
        #: trace the creating request carried (``job.trace_id``).
        self.tracer = None
        if journal_dir is not None:
            self.journal = Journal(Path(journal_dir), fsync=journal_fsync)
            self._replay()

    def enqueue(self, job: Job, execute: Callable[[], dict[str, Any]]) -> None:
        """Queue one job; ``execute`` is the adapter invocation thunk."""
        if self._stopped:
            raise ServiceError("container is shut down")
        self.adopt(job)
        logger.info("job %s [request %s] queued for %s", job.id, job.request_id or "-", job.service)
        if self.admission is not None:
            from repro.tenancy.admission import AdmissionEntry

            tenant = job.extra.get("tenant", DEFAULT_TENANT)
            self.admission.offer(AdmissionEntry(
                tenant=tenant, job=job, execute=execute, enqueued=time.time(),
                priority=self.admission.registry.spec(tenant).priority,
            ))
            # one pool task per offered job: each drain releases whichever
            # entry the fair-share policy ranks first, not necessarily the
            # one just offered
            self._pool.submit(self._drain_admission)
            return
        self._pool.submit(self._process, job, execute, time.time())

    def run_job(self, job: Job, execute: Callable[[], dict[str, Any]]) -> None:
        """Process a job in the calling thread (sync-mode services)."""
        self.adopt(job)
        self._process(job, execute, time.time())

    def adopt(self, job: Job) -> None:
        """Track ``job`` and journal its creation plus every transition.

        Idempotent per job id, so a service may adopt before enqueueing
        without double-journaling.
        """
        with self._track_lock:
            if job.id in self._tracked:
                return
            if not job.state.terminal:
                self._tracked[job.id] = job
        if self.journal is not None:
            self._append(self._creation_record(job))
        job.subscribe(self._on_transition)

    def import_job(self, job: Job) -> None:
        """Adopt a handed-off job from a retiring replica.

        Journals the job's creation record and — when the handoff arrived
        already terminal — its terminal record, so the handoff survives a
        cold restart in the standard journal format. Terminal imports are
        *not* charged to tenancy accounting: the origin replica already
        billed the tenant for the work, and handing the finished job over
        must not bill it twice. Non-terminal imports subscribe the normal
        transition observer — their (re-)execution here is journaled and
        billed exactly like locally created work.
        """
        with self._track_lock:
            if job.id in self._tracked:
                return
            if not job.state.terminal:
                self._tracked[job.id] = job
        if self.journal is not None:
            self._append(self._creation_record(job))
            if job.state.terminal:
                self._append(self._transition_record(job, job.state))
        if not job.state.terminal:
            job.subscribe(self._on_transition)

    def quiesce(self) -> None:
        """Stop *starting* queued work (the drain protocol's first step).

        Jobs already running finish normally; WAITING jobs stay WAITING so
        the retire path can migrate them to the ring successor without the
        risk of this pool picking one up concurrently — the one way a
        handoff could execute the same job twice.
        """
        self._quiesced = True

    @property
    def quiesced(self) -> bool:
        return self._quiesced

    def running_count(self) -> int:
        """Jobs currently executing (the drain waits for this to hit 0)."""
        with self._track_lock:
            jobs = list(self._tracked.values())
        return sum(1 for job in jobs if job.state is JobState.RUNNING)

    def record_deleted(self, job: Job) -> None:
        """Journal that a job resource was deleted (recovery must not
        resurrect it)."""
        with self._track_lock:
            self._tracked.pop(job.id, None)
        if self.journal is not None:
            self._append(
                {"type": "job", "event": "deleted", "service": job.service, "id": job.id}
            )

    def take_recovered(self, service: str) -> dict[str, dict]:
        """Claim the recovered job documents of one service (id → doc).

        Each service's recovery set is handed out once — to the deploy
        that rebuilds its job store.
        """
        return self._recovered.pop(service, {})

    def take_recovered_cache(self, service: str) -> dict[str, dict]:
        """Claim the journaled cache records of one service (fp → record).

        The deploy that rebuilds the service seeds its result cache from
        these — after checking each record's job actually recovered DONE.
        """
        return self._recovered_cache.pop(service, {})

    def take_recovered_blobs(self) -> dict[str, dict[str, Any]]:
        """Claim the replayed blob table (digest → {committed, pins});
        handed out once, to the container's blob store."""
        table, self._recovered_blobs = self._recovered_blobs, {}
        return table

    def record_blob(self, record: dict[str, Any]) -> None:
        """Journal one blob lifecycle record (commit/pin/unpin/collect)."""
        if self.journal is not None:
            self._append(dict(record, type="blob"))

    def record_usage(self, record: dict[str, Any]) -> None:
        """Journal one tenant usage delta ({tenant, cpu, disk})."""
        if self.journal is not None:
            self._append(dict(record, type="usage"))

    def take_recovered_usage(self) -> dict[str, dict[str, Any]]:
        """Claim the replayed usage table (tenant → {cpu, disk}); handed
        out once, to the container's tenant registry."""
        table, self._recovered_usage = self._recovered_usage, {}
        return table

    def attach_cache(self, cache: Any) -> None:
        """Adopt the container's result cache: journal its promotions and
        close it on shutdown so pending claimants are failed, not hung."""
        self.result_cache = cache
        if cache is not None:
            cache.journal_fn = self.record_cache

    def record_cache(self, service: str, fingerprint: str, job_id: str, stored: float) -> None:
        """Journal one done-tier cache promotion as a lightweight record.

        Rehydration cross-checks the record against the recovered job
        table, so a record outliving its job (deletion, failure rollback)
        is inert rather than dangerous.
        """
        if self.journal is not None:
            self._append(
                {
                    "type": "cache",
                    "service": service,
                    "fp": fingerprint,
                    "id": job_id,
                    "stored": stored,
                }
            )

    def set_task_hook(self, hook: "Callable[[str], None] | None") -> None:
        """Install (or clear) the handler pool's per-task fault hook."""
        self._pool.task_hook = hook

    @property
    def queued(self) -> int:
        return self._pool.stats.queued

    @property
    def stats(self) -> PoolStats:
        """Task counters of the handler pool (queued/running/completed/failed)."""
        return self._pool.stats

    def shutdown(self, wait: bool = True) -> None:
        self._stopped = True
        if self.result_cache is not None:
            # fail pending coalesced claimants instead of hanging them
            self.result_cache.close()
        self._pool.shutdown(wait=wait)
        if not wait:
            # without the drain, queued-but-unstarted jobs would sit in
            # WAITING forever; mark them interrupted (journaled) instead
            with self._track_lock:
                pending = list(self._tracked.values())
            for job in pending:
                job.try_interrupt(INTERRUPTED_ERROR)
        if self.journal is not None:
            self.journal.sync()
            self.journal.close()

    def crash(self) -> None:
        """A cold stop: the journal goes first, so nothing after this
        call is persisted — then the pool is released without waiting."""
        if self.journal is not None:
            self.journal.close()
        self._stopped = True
        if self.result_cache is not None:
            self.result_cache.close()
        self._pool.shutdown(wait=False)

    # ----------------------------------------------------------- internals

    def _replay(self) -> None:
        recovery = self.journal.recover()
        self.recovery_warnings = recovery.warnings
        table: dict[str, dict[str, dict]] = {}
        cache_table: dict[str, dict[str, dict]] = {}
        blob_table: dict[str, dict[str, Any]] = {}
        snapshot = recovery.snapshot or {}
        for service, jobs in (snapshot.get("services") or {}).items():
            table[service] = {job_id: dict(document) for job_id, document in jobs.items()}
        for record in snapshot.get("cache") or []:
            apply_cache_event(cache_table, record)
        for record in snapshot.get("blobs") or []:
            apply_blob_event(blob_table, record)
        usage_table: dict[str, dict[str, Any]] = {}
        for record in snapshot.get("usage") or []:
            apply_usage_event(usage_table, record)
        for record in recovery.records:
            apply_job_event(table, record)
            apply_cache_event(cache_table, record)
            apply_blob_event(blob_table, record)
            if record.get("type") == "usage":
                apply_usage_event(usage_table, record)
        self._recovered = table
        self._recovered_cache = cache_table
        self._recovered_blobs = blob_table
        self._recovered_usage = usage_table
        if table:
            total = sum(len(jobs) for jobs in table.values())
            logger.info("replayed journal: %d jobs across %d services", total, len(table))

    def _append(self, record: dict[str, Any]) -> None:
        """Journal one record; persistence failures never break processing."""
        try:
            self.journal.append(record)
        except Exception as error:  # noqa: BLE001 - journaling is best-effort
            logger.error("journal append failed for %s: %s", record.get("id"), error)

    def _creation_record(self, job: Job) -> dict[str, Any]:
        record: dict[str, Any] = {
            "type": "job",
            "event": "created",
            "service": job.service,
            "id": job.id,
            "inputs": job.inputs,
            "created": job.created,
        }
        if job.request_id is not None:
            record["request_id"] = job.request_id
        if job.idempotency_key is not None:
            record["key"] = job.idempotency_key
        if job.extra:
            record["extra"] = dict(job.extra)
        return record

    def _transition_record(self, job: Job, state: JobState) -> dict[str, Any]:
        record: dict[str, Any] = {
            "type": "job",
            "event": state.value.lower() if state.terminal else "running",
            "service": job.service,
            "id": job.id,
        }
        if state is JobState.RUNNING:
            record["started"] = job.started
        elif state is JobState.DONE:
            record["event"] = "done"
            record["results"] = job.results
            record["finished"] = job.finished
        elif state is JobState.FAILED:
            record["event"] = "failed"
            record["error"] = job.error
            record["finished"] = job.finished
            if job.extra:
                record["extra"] = dict(job.extra)
        elif state is JobState.CANCELLED:
            record["event"] = "cancelled"
            record["finished"] = job.finished
        return record

    def _on_transition(self, job: Job, state: JobState) -> None:
        if self.journal is not None:
            self._append(self._transition_record(job, state))
        if state.terminal:
            with self._track_lock:
                self._tracked.pop(job.id, None)
            if self.accounting is not None:
                tenant = job.extra.get("tenant")
                if tenant and job.started and job.finished:
                    # wall-time of the adapter run, charged exactly once —
                    # on the terminal transition (recovery restores
                    # terminal jobs directly, without re-firing it)
                    self.accounting.charge(
                        tenant, cpu=max(0.0, job.finished - job.started))

    def _drain_admission(self) -> None:
        """Pool task: release and process the fair-share queue's pick."""
        if self._quiesced:
            return
        entry = self.admission.take()
        if entry is not None:
            self._process(entry.job, entry.execute, entry.enqueued)

    def _process(
        self,
        job: Job,
        execute: Callable[[], dict[str, Any]],
        enqueued: "float | None" = None,
    ) -> None:
        rid = job.request_id or "-"
        if job.state.terminal:  # cancelled while queued
            logger.info("job %s [request %s] skipped: already %s", job.id, rid, job.state.value)
            return
        if self._quiesced:
            # draining for retirement: leave the job WAITING for migration
            logger.info("job %s [request %s] parked: manager is quiesced", job.id, rid)
            return
        try:
            job.mark_running()
        except ServiceError:
            return  # lost the race against a cancel
        logger.info("job %s [request %s] running for %s", job.id, rid, job.service)
        # both spans hang off the submit that created the job; they are
        # `follows` links, not children — the creating request has usually
        # already answered 201 by the time a handler thread picks this up
        traced = self.tracer is not None and job.trace_id is not None
        if traced and enqueued is not None:
            record_span(
                self.tracer, job.trace_id, job.trace_parent, "queue.wait",
                start=enqueued, duration=time.time() - enqueued,
                labels={"service": job.service, "job": job.id},
            )
        context = SpanContext(self.tracer, job.trace_id, job.trace_parent) if traced else None
        with activate_span_context(context):
            with span(
                "adapter.run",
                labels={"service": job.service, "job": job.id},
                link="follows",
            ):
                try:
                    outputs = execute()
                except AdapterError as error:
                    job.try_finish(lambda: (JobState.FAILED, error.message))
                    logger.info("job %s [request %s] failed: %s", job.id, rid, error.message)
                    return
                except Exception as error:  # noqa: BLE001 - adapters may misbehave
                    logger.error(
                        "adapter crashed for job %s [request %s]\n%s", job.id, rid, traceback.format_exc()
                    )
                    job.try_finish(
                        lambda: (JobState.FAILED, f"internal adapter error: {error}")
                    )
                    return
        if job.try_finish(lambda: (JobState.DONE, outputs)):
            logger.info("job %s [request %s] done", job.id, rid)
