"""The service container: deployment, publication and serving.

A :class:`ServiceContainer` owns one REST application, one job manager and
any number of deployed services. It can publish itself two ways at once:

- in process — the container binds itself into a
  :class:`~repro.http.registry.TransportRegistry` under
  ``local://<name>`` at construction, so its services are immediately
  reachable by other components sharing the registry;
- over TCP — :meth:`serve` starts a :class:`~repro.http.server.RestServer`
  and switches advertised service URIs to the public ``http://`` address.
"""

from __future__ import annotations

import logging
import tempfile
import threading
from pathlib import Path
from typing import Any, Callable

from repro.blob import BlobStore, mount_blob_store
from repro.cache import ResultCache
from repro.container.adapters import create_adapter
from repro.container.config import ServiceConfig
from repro.container.jobmanager import (
    INTERRUPTED_ERROR,
    JobManager,
    job_document,
    restore_job,
)
from repro.container.service import DeployedService
from repro.container.webui import render_index_page, render_service_page
from repro.core.api import SubmitLedger, mount_service, unmount_service
from repro.core.errors import ConfigurationError
from repro.core.jobs import Job, JobState
from repro.http.app import RestApp
from repro.http.messages import HttpError, Request, Response
from repro.http.registry import TransportRegistry
from repro.http.server import RestServer
from repro.observability import (
    ObservabilityMiddleware,
    instrument_container,
    mount_metrics,
)
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.trace import Tracer
from repro.security.authz import AccessPolicy
from repro.security.identity import IdentityBroker
from repro.security.middleware import SecurityMiddleware
from repro.security.pki import CertificateAuthority

logger = logging.getLogger(__name__)


class ServiceContainer:
    """Everest: builds, deploys and publishes computational web services."""

    def __init__(
        self,
        name: str = "everest",
        handlers: int = 4,
        registry: TransportRegistry | None = None,
        journal_dir: "str | Path | None" = None,
        journal_fsync: str = "batch",
        cache: "ResultCache | bool | None" = None,
        observability: bool = True,
    ):
        self.name = name
        self.registry = registry or TransportRegistry()
        self.app = RestApp(name)
        # observability is on by default (a production container is blind
        # without it); the kill switch exists for overhead benchmarks and
        # minimal embeddings
        self.metrics: "MetricsRegistry | None" = None
        self.tracer: "Tracer | None" = None
        if observability:
            self.metrics = MetricsRegistry(name)
            self.tracer = Tracer(name)
            self.app.add_middleware(ObservabilityMiddleware(self.metrics, self.tracer))
            mount_metrics(self.app, self.metrics)
        # with a journal directory the manager replays any history it finds
        # there; deploy() consumes the recovered jobs per service
        self.job_manager = JobManager(
            handlers=handlers, name=name, journal_dir=journal_dir, journal_fsync=journal_fsync
        )
        self.job_manager.tracer = self.tracer
        # the result cache is opt-in: POST-creates-a-new-job is the REST
        # contract unless the operator asks for content-addressed reuse.
        # Explicit bool checks: an *empty* ResultCache is falsy (len == 0)
        # yet must still be adopted
        if cache is True:
            cache = ResultCache()
        elif cache is False:
            cache = None
        self.cache: "ResultCache | None" = cache
        if self.cache is not None:
            self.job_manager.attach_cache(self.cache)
        self._services: dict[str, DeployedService] = {}
        self._resources: dict[str, Any] = {}
        self._policies: dict[str, AccessPolicy] = {}
        self._lock = threading.Lock()
        self._server: RestServer | None = None
        self.local_base = self.registry.bind_local(name, self.app)
        self._security: SecurityMiddleware | None = None
        #: Tenant registry + gate, set by :meth:`enable_tenancy`.
        self.tenancy = None
        self.tenant_gate = None
        # the blob data plane: durable beside the journal when one exists,
        # a temp directory (cleaned up on shutdown) otherwise
        if journal_dir is not None:
            blob_dir = Path(journal_dir) / "blobs"
            self._blob_tmp = None
        else:
            self._blob_tmp = tempfile.TemporaryDirectory(prefix=f"{name}-blobs-")
            blob_dir = Path(self._blob_tmp.name)
        self.blobs = BlobStore(blob_dir, journal_fn=self.job_manager.record_blob)
        self.blobs.recover(self.job_manager.take_recovered_blobs())
        mount_blob_store(self.app, self.blobs, base_uri=lambda: self.base_uri)
        self.app.route("GET", "/", self._index)
        self.app.route("GET", "/services", self._index)
        self.app.route("GET", "/ui", self._index_ui)
        if self.metrics is not None:
            # collectors read live subsystem state at scrape time; wired
            # last so every attribute they close over exists
            instrument_container(self)

    # ----------------------------------------------------------- publishing

    @property
    def base_uri(self) -> str:
        """The advertised URI prefix (http when served, local otherwise)."""
        if self._server is not None:
            return self._server.base_url
        return self.local_base

    def service_uri(self, name: str) -> str:
        return f"{self.base_uri}/services/{name}"

    def serve(self, host: str = "127.0.0.1", port: int = 0, **server_options: object) -> RestServer:
        """Expose the container over TCP; returns the running server.

        Extra keyword arguments (``server_impl``, ``idle_timeout``,
        ``max_body_bytes``, …) are forwarded to :class:`RestServer`.
        """
        if self._server is not None:
            raise RuntimeError("container is already serving")
        self._server = RestServer(self.app, host=host, port=port, **server_options).start()
        return self._server

    def shutdown(self, wait: bool = True) -> None:
        """Stop serving and the handler pool (deployed services stay queryable
        in process until the interpreter exits).

        Without ``wait`` the handler pool is released immediately and any
        queued-but-unstarted jobs are marked interrupted rather than left
        dangling in ``WAITING``.
        """
        if self._server is not None:
            self._server.stop()
            self._server = None
        self.job_manager.shutdown(wait=wait)
        self.registry.unbind_local(self.name)
        if self._blob_tmp is not None:
            self._blob_tmp.cleanup()
            self._blob_tmp = None

    # ----------------------------------------------------------- durability

    @property
    def journal(self):
        """The container's write-ahead journal (``None`` when volatile)."""
        return self.job_manager.journal

    def crash(self) -> None:
        """Simulate a cold stop: nothing after this call is persisted.

        The journal closes first — transitions the dying object graph
        still makes are lost, exactly as a real crash would lose them —
        then serving stops without draining or marking anything. Rebuild
        by constructing a fresh container over the same ``journal_dir``.
        """
        self.job_manager.crash()
        if self._server is not None:
            self._server.stop()
            self._server = None
        self.registry.unbind_local(self.name)

    def compact(self) -> None:
        """Snapshot every service's current job state into the journal and
        drop the segments the snapshot covers."""
        if self.journal is None:
            return
        state = {
            "services": {
                service.name: {job.id: job_document(job) for job in service.jobs.list()}
                for service in self.services
            }
        }
        if self.cache is not None:
            state["cache"] = self.cache.export()
        state["blobs"] = self.blobs.export()
        if self.tenancy is not None:
            state["usage"] = self.tenancy.export()
        self.journal.snapshot(state)

    # ------------------------------------------------------------- security

    def enable_security(
        self,
        ca: CertificateAuthority,
        identity_broker: IdentityBroker | None = None,
    ) -> None:
        """Protect every service with the common security mechanism.

        Per-service policies come from each configuration's ``security``
        block; services without one remain open.
        """
        if self._security is not None:
            raise RuntimeError("security is already enabled")
        self._security = SecurityMiddleware(
            ca, identity_broker=identity_broker, policy_resolver=self._policy_for
        )
        self.app.add_middleware(self._security)

    # -------------------------------------------------------------- tenancy

    def enable_tenancy(self, registry=None, max_backlog_total: int = 256):
        """Meter and fair-share this container's capacity across tenants.

        Wires the registry's usage deltas through the write-ahead journal
        (and adopts any balances replayed from it), replaces the FIFO
        hand-off to the handler pool with a :class:`FairShareQueue`, and
        adds a :class:`TenantGate` that attributes every request to its
        billing tenant. The gate does not *enforce* here — quota and
        backlog checks live in ``DeployedService.submit`` where they can
        reject before a job exists; rate limits belong to the gateway.

        Call after :meth:`enable_security` (middleware runs in add order,
        and the gate attributes by the identity security resolved).
        Returns the registry so callers can declare tenants on it.
        """
        from repro.tenancy import FairShareQueue, TenantGate, TenantRegistry
        from repro.tenancy.gate import instrument_tenancy

        if self.tenancy is not None:
            raise RuntimeError("tenancy is already enabled")
        registry = registry or TenantRegistry()
        registry._journal_fn = self.job_manager.record_usage
        registry.recover(self.job_manager.take_recovered_usage())
        self.tenancy = registry
        self.job_manager.accounting = registry
        self.job_manager.admission = FairShareQueue(
            registry, max_backlog_total=max_backlog_total)
        self.tenant_gate = TenantGate(registry, metrics=self.metrics, enforce=False)
        self.app.add_middleware(self.tenant_gate)
        if self.metrics is not None:
            instrument_tenancy(self.metrics, registry,
                               admission=self.job_manager.admission, container=self)
        return registry

    def set_policy(self, service_name: str, policy: AccessPolicy | None) -> None:
        """Set or clear a deployed service's access policy at runtime
        (the administrator's allow/deny/proxy lists, paper §3.4)."""
        with self._lock:
            if service_name not in self._services:
                raise ConfigurationError(f"no service {service_name!r} deployed")
            if policy is None:
                self._policies.pop(service_name, None)
            else:
                self._policies[service_name] = policy

    def _policy_for(self, path: str) -> AccessPolicy | None:
        if not path.startswith("/services/"):
            return None
        service_name = path[len("/services/") :].split("/", 1)[0]
        return self._policies.get(service_name)

    # ------------------------------------------------------------ resources

    def register_resource(self, name: str, resource: Any) -> None:
        """Attach a named backend (a Cluster, a GridBroker, a callable) that
        service configurations may reference."""
        with self._lock:
            if name in self._resources:
                raise ConfigurationError(f"resource {name!r} already registered")
            self._resources[name] = resource

    def resource(self, name: str) -> Any:
        with self._lock:
            if name not in self._resources:
                raise KeyError(name)
            return self._resources[name]

    # ----------------------------------------------------------- deployment

    def deploy(self, config: ServiceConfig | dict[str, Any]) -> DeployedService:
        """Deploy a service from its configuration and publish it."""
        if isinstance(config, dict):
            config = ServiceConfig.from_dict(config)
        with self._lock:
            if config.name in self._services:
                raise ConfigurationError(f"service {config.name!r} is already deployed")
        adapter = create_adapter(config.adapter)
        adapter.configure(config.config, self)
        service = DeployedService(
            config=config,
            adapter=adapter,
            job_manager=self.job_manager,
            registry=self.registry,
            base_uri_fn=lambda name=config.name: self.service_uri(name),
            resources=self,
            cache=self.cache,
            blobs=self.blobs,
            blob_base_fn=lambda: self.base_uri,
        )
        ledger = self._recover_service(service, adapter)
        base_path = f"/services/{config.name}"
        mount_service(
            self.app,
            base_path,
            service,
            base_uri=lambda name=config.name: self.service_uri(name),
            ledger=ledger,
            tracer=self.tracer,
        )
        self.app.route("GET", f"{base_path}/ui", self._make_ui_handler(service))
        with self._lock:
            self._services[config.name] = service
            if config.policy is not None:
                self._policies[config.name] = config.policy
        return service

    def deploy_directory(self, path: "str | Path") -> list[DeployedService]:
        """Deploy every ``*.json`` service configuration in a directory.

        The paper's container reads its deployment set "at startup from
        configuration files"; this is that startup step, usable any time.
        Files are processed in name order; the first bad file aborts the
        call (already-deployed services from the same call stay deployed,
        and the error names the offending file).
        """
        directory = Path(path)
        if not directory.is_dir():
            raise ConfigurationError(f"{directory} is not a directory")
        deployed: list[DeployedService] = []
        for config_path in sorted(directory.glob("*.json")):
            try:
                deployed.append(self.deploy(ServiceConfig.from_file(config_path)))
            except ConfigurationError as exc:
                raise ConfigurationError(f"{config_path.name}: {exc}") from exc
        return deployed

    def undeploy(self, name: str) -> None:
        with self._lock:
            service = self._services.pop(name, None)
            self._policies.pop(name, None)
        if service is None:
            raise ConfigurationError(f"no service {name!r} deployed")
        unmount_service(self.app, f"/services/{name}")

    def service(self, name: str) -> DeployedService:
        with self._lock:
            if name not in self._services:
                raise KeyError(name)
            return self._services[name]

    @property
    def services(self) -> list[DeployedService]:
        with self._lock:
            return list(self._services.values())

    def _recover_service(self, service: DeployedService, adapter: Any) -> SubmitLedger:
        """Rebuild a deploying service's job table from the journal replay.

        Completed jobs come back with their results and stay addressable
        (including ``?wait=`` long-polls, which return immediately on a
        terminal job); in-flight jobs are re-enqueued when the adapter is
        idempotent, otherwise failed as interrupted. Recovered
        ``Idempotency-Key`` bindings are seeded into the returned submit
        ledger so post-restart replays bind to their original jobs.
        """
        ledger = SubmitLedger()
        recovered = self.job_manager.take_recovered(service.name)
        requeue: list[Job] = []
        for document in recovered.values():
            job = restore_job(service.name, document)
            if not job.state.terminal:
                if getattr(adapter, "idempotent", False):
                    requeue.append(job)
                else:
                    job.try_interrupt(INTERRUPTED_ERROR)
                    self.job_manager.adopt(job)
            service.jobs.add(job)
            if job.idempotency_key:
                ledger.store(job.idempotency_key, job.id)
        # enqueue after the store is fully seeded, so a re-run completing
        # instantly cannot race a not-yet-registered sibling's key lookup
        for job in requeue:
            self._register_recovered_inflight(service, job)
            service.requeue(job)
        self._rehydrate_cache(service)
        return ledger

    def _register_recovered_inflight(self, service: DeployedService, job: Job) -> None:
        """Put a re-enqueued job back into the single-flight index.

        Without this a submit arriving right after a cold restart would
        miss and start a second execution of a fingerprint the recovered
        job is already re-running — violating the cache's no-concurrent-
        duplicate guarantee across the crash boundary.
        """
        if self.cache is None or not service.cacheable:
            return
        fingerprint = service._fingerprint(job.inputs)
        if fingerprint is not None:
            self.cache.register(fingerprint, service.name, job)

    def _rehydrate_cache(self, service: DeployedService) -> None:
        """Re-seed the hot set from journaled cache records (cold restart).

        Only records whose job itself recovered ``DONE`` are admitted:
        deleted jobs dropped out of the recovery table via their
        ``deleted`` journal event, and failed/interrupted jobs must never
        be served from cache.
        """
        if self.cache is None or not service.cacheable:
            self.job_manager.take_recovered_cache(service.name)
            return
        seeded = 0
        for record in self.job_manager.take_recovered_cache(service.name).values():
            try:
                job = service.jobs.get(record["id"])
            except Exception:  # noqa: BLE001 - the job did not survive recovery
                continue
            if job.state is not JobState.DONE:
                continue
            if self.cache.seed(record["fp"], service.name, record["id"], record["stored"]):
                seeded += 1
        if seeded:
            logger.info("rehydrated %d cache entries for %s", seeded, service.name)

    # ------------------------------------------------------------- handlers

    def _index(self, request: Request) -> Response:
        entries = [
            {
                "name": service.name,
                "title": service.description.title,
                "uri": self.service_uri(service.name),
            }
            for service in self.services
        ]
        return Response.json({"container": self.name, "services": entries})

    def _index_ui(self, request: Request) -> Response:
        descriptions = [service.description for service in self.services]
        return Response.html(render_index_page(self.name, descriptions))

    def _make_ui_handler(self, service: DeployedService) -> Callable[[Request], Response]:
        def handler(request: Request) -> Response:
            page = render_service_page(service.description, self.service_uri(service.name))
            return Response.html(page)

        return handler
