"""Replica provisioners: how the autoscaler gets and releases capacity.

The scaler decides *when* to change the pool; a provisioner knows *how* —
where containers come from, how to quiesce one for the drain protocol,
and how to tear one down. :class:`InProcessProvisioner` builds
:class:`~repro.container.ServiceContainer` instances in this process
(tests, benchmarks, single-host deployments); the same interface is the
seam for subprocess or remote provisioners later — quiesce and busy map
onto an admin endpoint instead of direct method calls.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Callable

logger = logging.getLogger(__name__)

__all__ = ["InProcessProvisioner", "ReplicaProvisioner"]


class ReplicaProvisioner:
    """The capacity backend the autoscaler drives.

    Implementations manage the replica lifecycle behind stable ids:

    - :meth:`spawn` brings up a fresh replica and returns its base URL;
    - :meth:`quiesce` stops it *starting* queued work (running jobs
      finish) — the precondition for migrating its WAITING jobs safely;
    - :meth:`busy` reports how many jobs are still executing there;
    - :meth:`retire` shuts a quiesced, migrated replica down cleanly;
    - :meth:`kill` tears one down abruptly (crash path / chaos).
    """

    def spawn(self, replica_id: str) -> str:
        raise NotImplementedError

    def quiesce(self, replica_id: str) -> None:
        raise NotImplementedError

    def busy(self, replica_id: str) -> int:
        raise NotImplementedError

    def retire(self, replica_id: str) -> None:
        raise NotImplementedError

    def kill(self, replica_id: str) -> None:
        raise NotImplementedError

    def wait_idle(self, replica_id: str, timeout: float = 10.0) -> bool:
        """Block until no job is executing on ``replica_id`` (or timeout).

        Call after :meth:`quiesce`: the count only goes down once no new
        work starts. Returns True when the replica went idle in time.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.busy(replica_id) == 0:
                return True
            time.sleep(0.01)
        return self.busy(replica_id) == 0


class InProcessProvisioner(ReplicaProvisioner):
    """Builds replica containers in this process via a factory callable.

    ``factory(replica_id)`` must return a started
    :class:`~repro.container.ServiceContainer` (services deployed, bound
    on the shared transport registry); its ``local_base`` becomes the
    replica's base URL.
    """

    def __init__(self, factory: Callable[[str], Any]):
        self.factory = factory
        self._lock = threading.Lock()
        self._containers: dict[str, Any] = {}

    @property
    def containers(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._containers)

    def get(self, replica_id: str) -> Any:
        with self._lock:
            return self._containers.get(replica_id)

    def spawn(self, replica_id: str) -> str:
        container = self.factory(replica_id)
        with self._lock:
            if replica_id in self._containers:
                raise ValueError(f"replica {replica_id!r} already provisioned")
            self._containers[replica_id] = container
        return container.local_base

    def quiesce(self, replica_id: str) -> None:
        container = self._require(replica_id)
        container.job_manager.quiesce()

    def busy(self, replica_id: str) -> int:
        container = self.get(replica_id)
        if container is None:
            return 0
        return container.job_manager.running_count()

    def retire(self, replica_id: str) -> None:
        with self._lock:
            container = self._containers.pop(replica_id, None)
        if container is not None:
            container.shutdown()

    def kill(self, replica_id: str) -> None:
        with self._lock:
            container = self._containers.pop(replica_id, None)
        if container is not None:
            try:
                container.crash()
            except Exception:  # noqa: BLE001 - killing a broken container
                logger.exception("killing replica %s raised", replica_id)

    def shutdown(self) -> None:
        """Tear down every provisioned container (test/bench teardown)."""
        with self._lock:
            containers = list(self._containers.values())
            self._containers.clear()
        for container in containers:
            try:
                container.shutdown()
            except Exception:  # noqa: BLE001 - best-effort teardown
                logger.exception("container shutdown raised")

    def _require(self, replica_id: str) -> Any:
        container = self.get(replica_id)
        if container is None:
            raise KeyError(replica_id)
        return container
