"""Elastic replica autoscaling with live shard rebalancing.

The control loop (:class:`Autoscaler`) watches per-replica load — queue
depth and handler activity scraped from each replica's ``/metrics`` page,
the gateway's own in-flight gauges, and request-latency percentiles — and
grows or shrinks the replica pool behind a
:class:`~repro.gateway.ServiceGateway` through a pluggable
:class:`ReplicaProvisioner`. Scale-down *drains*: the retiring replica's
jobs are handed to its ring successor over the standard REST API before
the replica leaves the set (see ``ServiceGateway.retire``).
"""

from repro.autoscale.provisioner import InProcessProvisioner, ReplicaProvisioner
from repro.autoscale.scaler import Autoscaler, ScalerDecision, ScalerPolicy

__all__ = [
    "Autoscaler",
    "InProcessProvisioner",
    "ReplicaProvisioner",
    "ScalerDecision",
    "ScalerPolicy",
]
