"""The autoscaler control loop: load in, membership changes out.

Each :meth:`Autoscaler.tick` is one deterministic control decision — the
live loop just runs ticks on a :class:`~repro.runtime.pool.PeriodicTask`,
and tests/benchmarks call :meth:`tick` directly for reproducible
schedules. A tick:

1. scrapes per-replica load (queue depth + running handlers from each
   replica's ``/metrics`` page, the gateway's own in-flight gauge as the
   floor, request-latency p95 when the policy sets an SLO);
2. evicts-and-replaces replicas that have been ``DOWN`` for
   ``dead_after`` consecutive ticks (their jobs died with them — only a
   *live* replica can drain);
3. compares average load per live replica against the policy's
   thresholds and scales up (spawn + join) or down (drain → quiesce →
   migrate → retire — see ``ServiceGateway.retire``), at most one
   scaling action per ``hold_ticks`` window so the loop cannot flap.

Every decision lands in a bounded deque (surfaced in ``/health`` and
``/status``) and in the ``mc_scaler_*`` metrics.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.gateway.replicaset import ReplicaState
from repro.http.transport import TransportError
from repro.observability.promtext import histogram_quantile, parse_metrics
from repro.runtime.pool import PeriodicTask

logger = logging.getLogger(__name__)

__all__ = ["Autoscaler", "ScalerDecision", "ScalerPolicy"]


@dataclass
class ScalerPolicy:
    """Thresholds and bounds for the control loop."""

    min_replicas: int = 1
    max_replicas: int = 8
    #: Average (queued + running + gateway in-flight) per live replica
    #: at or above which the pool grows.
    scale_up_load: float = 4.0
    #: ... at or below which the pool shrinks (must leave hysteresis
    #: room below ``scale_up_load`` or the loop oscillates).
    scale_down_load: float = 0.5
    #: Request-latency p95 (seconds) that also triggers scale-up, when
    #: replicas expose the ``mc_http_request_seconds`` histogram. None
    #: disables the latency trigger.
    latency_slo: "float | None" = None
    #: Ticks to hold after any membership change before acting again.
    hold_ticks: int = 2
    #: Consecutive ticks a replica may report DOWN before it is evicted
    #: and replaced.
    dead_after: int = 3
    #: How long a scale-down waits for running jobs to finish.
    drain_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.scale_down_load >= self.scale_up_load:
            raise ValueError("scale_down_load must sit below scale_up_load")


@dataclass
class ScalerDecision:
    """One tick's outcome, kept for /health and the decision metrics."""

    tick: int
    action: str  # hold | scale-up | scale-down | replace | retire-failed
    reason: str
    load: float
    replicas: int
    details: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "tick": self.tick,
            "action": self.action,
            "reason": self.reason,
            "load": round(self.load, 3),
            "replicas": self.replicas,
            **({"details": self.details} if self.details else {}),
        }


class Autoscaler:
    """Drives a gateway's replica pool from observed load."""

    def __init__(
        self,
        gateway: Any,
        provisioner: Any,
        policy: ScalerPolicy | None = None,
        interval: float = 1.0,
        id_prefix: str = "as",
        decision_history: int = 64,
    ):
        self.gateway = gateway
        self.provisioner = provisioner
        self.policy = policy or ScalerPolicy()
        self.interval = interval
        self.id_prefix = id_prefix
        self.decisions: "deque[ScalerDecision]" = deque(maxlen=decision_history)
        self._lock = threading.Lock()
        self._tick_count = 0
        self._spawned = 0
        self._cooldown = 0
        self._down_ticks: dict[str, int] = {}
        self._task: PeriodicTask | None = None
        gateway.autoscaler = self
        self._decisions_metric = None
        self._load_metric = None
        metrics = getattr(gateway, "metrics", None)
        if metrics is not None:
            self._decisions_metric = metrics.counter(
                "mc_scaler_decisions_total",
                "Autoscaler tick outcomes, by action.",
                labels=("action",),
            )
            self._load_metric = metrics.gauge(
                "mc_scaler_load",
                "Average load per live replica at the last scaler tick.",
            )
            metrics.collector(
                "mc_scaler_replicas",
                "Replicas currently in the gateway's pool.",
                "gauge",
                lambda: len(gateway.replicas),
            )

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "Autoscaler":
        if self._task is not None:
            raise RuntimeError("autoscaler already started")
        self._task = PeriodicTask(self.interval, self.tick, name="autoscaler")
        self._task.start()
        return self

    def stop(self) -> None:
        if self._task is None:
            return
        self._task.stop()
        self._task = None

    # ----------------------------------------------------------- observation

    def observe(self) -> dict[str, float]:
        """Per-replica load: queued + running (scraped) + gateway in-flight.

        A replica whose ``/metrics`` page is unreachable contributes its
        gateway-side in-flight gauge alone — the loop degrades, it does
        not stall.
        """
        loads: dict[str, float] = {}
        for entry in self.gateway.replicas.snapshot():
            if entry["state"] == ReplicaState.DOWN.value or entry.get("draining"):
                continue
            load = float(entry["in_flight"])
            scraped = self._scrape(entry["url"])
            if scraped is not None:
                queued = scraped.get("mc_pool_queued")
                running = scraped.get("mc_pool_running")
                load += (queued.total() if queued else 0.0)
                load += (running.total() if running else 0.0)
                if self.policy.latency_slo is not None:
                    p95 = self._latency_p95(scraped)
                    if p95 is not None and p95 >= self.policy.latency_slo:
                        # over-SLO latency counts as saturation even when
                        # the queue gauge alone looks calm
                        load = max(load, self.policy.scale_up_load)
            loads[entry["id"]] = load
        return loads

    def _scrape(self, base_url: str) -> "dict[str, Any] | None":
        try:
            response = self.gateway.registry.request("GET", f"{base_url}/metrics")
        except TransportError:
            return None
        if not response.ok:
            return None
        try:
            return parse_metrics(response.body.decode("utf-8", "replace"))
        except ValueError:
            return None

    @staticmethod
    def _latency_p95(families: dict[str, Any]) -> "float | None":
        family = families.get("mc_http_request_seconds")
        if family is None:
            return None
        merged: dict[float, float] = {}
        for sample in family.samples:
            if not sample.name.endswith("_bucket"):
                continue
            le = sample.labels.get("le", "")
            bound = float("inf") if le == "+Inf" else float(le or "inf")
            merged[bound] = merged.get(bound, 0.0) + sample.value
        if not merged:
            return None
        return histogram_quantile(0.95, sorted(merged.items()))

    # ----------------------------------------------------------- the control

    def tick(self) -> ScalerDecision:
        """One deterministic control decision (thread-safe, reentrant-free)."""
        with self._lock:
            return self._tick_locked()

    def _tick_locked(self) -> ScalerDecision:
        self._tick_count += 1
        decision = self._replace_dead()
        if decision is None:
            loads = self.observe()
            live = len(loads)
            load = (sum(loads.values()) / live) if live else 0.0
            if self._load_metric is not None:
                self._load_metric.set(load)
            decision = self._decide(loads, live, load)
        self.decisions.append(decision)
        if self._decisions_metric is not None:
            self._decisions_metric.labels(decision.action).inc()
        if decision.action != "hold":
            logger.info(
                "scaler tick %d: %s (%s; load=%.2f, replicas=%d)",
                decision.tick, decision.action, decision.reason,
                decision.load, decision.replicas,
            )
        return decision

    def _decide(self, loads: dict[str, float], live: int, load: float) -> ScalerDecision:
        policy = self.policy
        if self._cooldown > 0:
            self._cooldown -= 1
            return self._decision("hold", "cooling down", load)
        if live < policy.min_replicas:
            grown = self.scale_up(policy.min_replicas - live)
            return self._decision(
                "scale-up", "below minimum pool size", load, details={"added": grown}
            )
        if load >= policy.scale_up_load and live < policy.max_replicas:
            grown = self.scale_up(1)
            return self._decision(
                "scale-up", f"load {load:.2f} >= {policy.scale_up_load}", load,
                details={"added": grown},
            )
        if load <= policy.scale_down_load and live > policy.min_replicas:
            victim = self._pick_victim(loads)
            if victim is not None:
                outcome = self.scale_down(victim)
                return self._decision(
                    outcome["action"], outcome["reason"], load, details=outcome,
                )
        return self._decision("hold", "load within band", load)

    def _decision(
        self, action: str, reason: str, load: float, details: "dict[str, Any] | None" = None
    ) -> ScalerDecision:
        return ScalerDecision(
            tick=self._tick_count,
            action=action,
            reason=reason,
            load=load,
            replicas=len(self.gateway.replicas),
            details=details or {},
        )

    # ------------------------------------------------------------- actuation

    def scale_up(self, count: int = 1) -> list[str]:
        """Spawn ``count`` replicas and join them to the gateway's pool."""
        added: list[str] = []
        for _ in range(max(0, count)):
            if len(self.gateway.replicas) >= self.policy.max_replicas:
                break
            replica_id = f"{self.id_prefix}{self._spawned}"
            self._spawned += 1
            base_url = self.provisioner.spawn(replica_id)
            self.gateway.add_replica(base_url, replica_id=replica_id)
            added.append(replica_id)
        if added:
            self._cooldown = self.policy.hold_ticks
        return added

    def scale_down(self, replica_id: str) -> dict[str, Any]:
        """Retire one replica through the full drain protocol."""
        self.gateway.drain(replica_id)
        self.provisioner.quiesce(replica_id)
        self.provisioner.wait_idle(replica_id, timeout=self.policy.drain_timeout)
        try:
            summary = self.gateway.retire(
                replica_id, drain_timeout=self.policy.drain_timeout
            )
        except (RuntimeError, KeyError) as error:
            # nothing was dropped: the replica is still DRAINING with all
            # its jobs; the next tick below the threshold retries it
            logger.warning("retiring %s failed, will retry: %s", replica_id, error)
            return {"action": "retire-failed", "reason": str(error), "replica": replica_id}
        self.provisioner.retire(replica_id)
        self._down_ticks.pop(replica_id, None)
        self._cooldown = self.policy.hold_ticks
        return {
            "action": "scale-down",
            "reason": f"retired {replica_id} -> {summary['successor']}",
            **summary,
        }

    def _pick_victim(self, loads: dict[str, float]) -> "str | None":
        """Which replica to retire: a half-drained one first (retry), else
        the least-loaded live one."""
        for entry in self.gateway.replicas.snapshot():
            if entry.get("draining"):
                return entry["id"]
        if not loads:
            return None
        return min(sorted(loads), key=lambda rid: loads[rid])

    def _replace_dead(self) -> "ScalerDecision | None":
        """Evict replicas DOWN for ``dead_after`` ticks; respawn to floor.

        A dead replica cannot drain — its unfinished jobs are lost from
        the gateway's view (clients holding Idempotency-Keys re-mint them
        elsewhere; the dead container's journal still has them for a
        later cold restart).
        """
        down_now: set[str] = set()
        for entry in self.gateway.replicas.snapshot():
            if entry["state"] == ReplicaState.DOWN.value:
                down_now.add(entry["id"])
                self._down_ticks[entry["id"]] = self._down_ticks.get(entry["id"], 0) + 1
        for replica_id in list(self._down_ticks):
            if replica_id not in down_now:
                del self._down_ticks[replica_id]
        dead = [
            replica_id
            for replica_id, ticks in self._down_ticks.items()
            if ticks >= self.policy.dead_after
        ]
        if not dead:
            return None
        replaced: list[str] = []
        for replica_id in dead:
            try:
                self.gateway.evict(replica_id)
            except KeyError:
                pass
            self.provisioner.kill(replica_id)
            del self._down_ticks[replica_id]
        deficit = self.policy.min_replicas - len(self.gateway.replicas)
        if deficit > 0:
            replaced = self.scale_up(deficit)
        self._cooldown = self.policy.hold_ticks
        return self._decision(
            "replace",
            f"evicted dead {', '.join(sorted(dead))}",
            0.0,
            details={"evicted": sorted(dead), "respawned": replaced},
        )

    # ------------------------------------------------------------ reporting

    def snapshot(self) -> dict[str, Any]:
        return {
            "interval": self.interval,
            "ticks": self._tick_count,
            "cooldown": self._cooldown,
            "policy": {
                "min_replicas": self.policy.min_replicas,
                "max_replicas": self.policy.max_replicas,
                "scale_up_load": self.policy.scale_up_load,
                "scale_down_load": self.policy.scale_down_load,
                "latency_slo": self.policy.latency_slo,
                "hold_ticks": self.policy.hold_ticks,
                "dead_after": self.policy.dead_after,
            },
            "decisions": [decision.to_json() for decision in list(self.decisions)[-10:]],
        }
