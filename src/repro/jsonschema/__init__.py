"""JSON Schema validator (draft-04 core subset), built from scratch.

The unified REST API describes each service's input and output parameters
with JSON Schema (paper §2); this subpackage provides the validator the
platform uses for that contract — no external dependency is assumed.

Supported keywords: ``type`` (including unions), ``enum``, ``const``,
numeric bounds (``minimum``/``maximum``/``exclusiveMinimum``/
``exclusiveMaximum``/``multipleOf``), string bounds (``minLength``/
``maxLength``/``pattern``), object keywords (``properties``, ``required``,
``additionalProperties``, ``minProperties``, ``maxProperties``), array
keywords (``items`` as schema or tuple, ``additionalItems``, ``minItems``,
``maxItems``, ``uniqueItems``), combinators (``allOf``, ``anyOf``,
``oneOf``, ``not``), and local references (``$ref`` into
``#/definitions``).
"""

from repro.jsonschema.validator import (
    SchemaError,
    ValidationError,
    check_schema,
    is_valid,
    validate,
)

__all__ = ["SchemaError", "ValidationError", "check_schema", "is_valid", "validate"]
