"""The JSON Schema validation engine.

Validation walks instance and schema together, accumulating a JSON-pointer
style path so error messages point at the offending element::

    ValidationError: $.matrix[2][0]: expected number, got str

Follows draft-04 semantics for the supported keyword set, with one
deliberate deviation: ``exclusiveMinimum``/``exclusiveMaximum`` accept both
the boolean (draft-04) and numeric (draft-06+) forms, since service authors
use either.
"""

from __future__ import annotations

import math
import re
from typing import Any

#: JSON type name → Python type check. ``bool`` must be screened out of the
#: numeric checks because it subclasses ``int``.
_TYPE_CHECKS = {
    "null": lambda v: v is None,
    "boolean": lambda v: isinstance(v, bool),
    "integer": lambda v: (isinstance(v, int) and not isinstance(v, bool))
    or (isinstance(v, float) and v.is_integer()),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "string": lambda v: isinstance(v, str),
    "array": lambda v: isinstance(v, list),
    "object": lambda v: isinstance(v, dict),
}

_KNOWN_KEYWORDS = {
    "$ref", "$schema", "id", "title", "description", "default", "examples",
    "type", "enum", "const", "format",
    "minimum", "maximum", "exclusiveMinimum", "exclusiveMaximum", "multipleOf",
    "minLength", "maxLength", "pattern",
    "properties", "required", "additionalProperties", "minProperties",
    "maxProperties", "patternProperties",
    "items", "additionalItems", "minItems", "maxItems", "uniqueItems",
    "allOf", "anyOf", "oneOf", "not", "definitions",
}


class ValidationError(Exception):
    """An instance does not conform to its schema."""

    def __init__(self, path: str, message: str):
        super().__init__(f"{path}: {message}")
        self.path = path
        self.reason = message


class SchemaError(Exception):
    """The schema itself is malformed."""


def _type_name(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, dict):
        return "object"
    return type(value).__name__


def _resolve_ref(ref: str, root: dict[str, Any]) -> Any:
    """Resolve a local ``#/...`` JSON-pointer reference against ``root``."""
    if not ref.startswith("#"):
        raise SchemaError(f"only local $ref supported, got {ref!r}")
    target: Any = root
    pointer = ref[1:].lstrip("/")
    if not pointer:
        return root
    for token in pointer.split("/"):
        token = token.replace("~1", "/").replace("~0", "~")
        if isinstance(target, dict) and token in target:
            target = target[token]
        elif isinstance(target, list) and token.isdigit() and int(token) < len(target):
            target = target[int(token)]
        else:
            raise SchemaError(f"unresolvable $ref {ref!r} (at token {token!r})")
    return target


def check_schema(schema: Any) -> None:
    """Raise :class:`SchemaError` if ``schema`` is structurally invalid.

    This is a shallow sanity check (types of keyword values, known type
    names); it exists so service deployment can reject broken parameter
    descriptions early instead of failing on the first request.
    """
    _check_schema(schema, "#")


def _check_schema(schema: Any, where: str) -> None:
    if schema is True or schema is False:
        return
    if not isinstance(schema, dict):
        raise SchemaError(f"{where}: schema must be an object or boolean, got {_type_name(schema)}")
    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        for name in names:
            if name not in _TYPE_CHECKS:
                raise SchemaError(f"{where}: unknown type {name!r}")
    for keyword in ("properties", "patternProperties", "definitions"):
        block = schema.get(keyword)
        if block is not None:
            if not isinstance(block, dict):
                raise SchemaError(f"{where}: {keyword} must be an object")
            for key, sub in block.items():
                _check_schema(sub, f"{where}/{keyword}/{key}")
    for keyword in ("allOf", "anyOf", "oneOf"):
        block = schema.get(keyword)
        if block is not None:
            if not isinstance(block, list) or not block:
                raise SchemaError(f"{where}: {keyword} must be a non-empty array")
            for index, sub in enumerate(block):
                _check_schema(sub, f"{where}/{keyword}/{index}")
    if "not" in schema:
        _check_schema(schema["not"], f"{where}/not")
    items = schema.get("items")
    if isinstance(items, list):
        for index, sub in enumerate(items):
            _check_schema(sub, f"{where}/items/{index}")
    elif items is not None:
        _check_schema(items, f"{where}/items")
    extra = schema.get("additionalProperties")
    if isinstance(extra, dict):
        _check_schema(extra, f"{where}/additionalProperties")
    elif extra is not None and not isinstance(extra, bool):
        raise SchemaError(f"{where}: additionalProperties must be a boolean or schema")
    required = schema.get("required")
    if required is not None and (
        not isinstance(required, list) or not all(isinstance(r, str) for r in required)
    ):
        raise SchemaError(f"{where}: required must be an array of strings")
    if "pattern" in schema:
        try:
            re.compile(schema["pattern"])
        except (re.error, TypeError) as exc:
            raise SchemaError(f"{where}: bad pattern: {exc}") from exc


def validate(instance: Any, schema: Any, root: dict[str, Any] | None = None, path: str = "$") -> None:
    """Validate ``instance`` against ``schema``.

    Raises :class:`ValidationError` with the instance path on the first
    violation found; returns ``None`` on success. ``root`` is the document
    used to resolve ``$ref`` (defaults to ``schema`` itself).
    """
    if schema is True:
        return
    if schema is False:
        raise ValidationError(path, "schema forbids any value")
    if not isinstance(schema, dict):
        raise SchemaError(f"schema must be an object or boolean, got {_type_name(schema)}")
    if root is None:
        root = schema

    if "$ref" in schema:
        validate(instance, _resolve_ref(schema["$ref"], root), root, path)
        return

    _validate_type(instance, schema, path)
    _validate_enum_const(instance, schema, path)
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        _validate_number(instance, schema, path)
    if isinstance(instance, str):
        _validate_string(instance, schema, path)
    if isinstance(instance, dict):
        _validate_object(instance, schema, root, path)
    if isinstance(instance, list):
        _validate_array(instance, schema, root, path)
    _validate_combinators(instance, schema, root, path)


def is_valid(instance: Any, schema: Any) -> bool:
    """Boolean form of :func:`validate`."""
    try:
        validate(instance, schema)
    except ValidationError:
        return False
    return True


def _validate_type(instance: Any, schema: dict[str, Any], path: str) -> None:
    declared = schema.get("type")
    if declared is None:
        return
    names = declared if isinstance(declared, list) else [declared]
    for name in names:
        check = _TYPE_CHECKS.get(name)
        if check is None:
            raise SchemaError(f"unknown type {name!r} in schema")
        if check(instance):
            return
    expected = " or ".join(names)
    raise ValidationError(path, f"expected {expected}, got {_type_name(instance)}")


def _validate_enum_const(instance: Any, schema: dict[str, Any], path: str) -> None:
    if "enum" in schema and not any(_json_equal(instance, option) for option in schema["enum"]):
        raise ValidationError(path, f"value {instance!r} not in enum {schema['enum']!r}")
    if "const" in schema and not _json_equal(instance, schema["const"]):
        raise ValidationError(path, f"value {instance!r} != const {schema['const']!r}")


def _json_equal(left: Any, right: Any) -> bool:
    """JSON equality: 1 == 1.0 but True != 1."""
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left == right
    if type(left) is not type(right):
        return False
    if isinstance(left, list):
        return len(left) == len(right) and all(_json_equal(a, b) for a, b in zip(left, right))
    if isinstance(left, dict):
        return left.keys() == right.keys() and all(_json_equal(v, right[k]) for k, v in left.items())
    return bool(left == right)


def _validate_number(value: float, schema: dict[str, Any], path: str) -> None:
    minimum, maximum = schema.get("minimum"), schema.get("maximum")
    exclusive_min, exclusive_max = schema.get("exclusiveMinimum"), schema.get("exclusiveMaximum")
    if isinstance(exclusive_min, bool):  # draft-04 boolean modifier form
        exclusive_min = minimum if exclusive_min else None
        minimum = None if exclusive_min is not None else minimum
    if isinstance(exclusive_max, bool):
        exclusive_max = maximum if exclusive_max else None
        maximum = None if exclusive_max is not None else maximum
    if minimum is not None and value < minimum:
        raise ValidationError(path, f"{value} is less than minimum {minimum}")
    if maximum is not None and value > maximum:
        raise ValidationError(path, f"{value} is greater than maximum {maximum}")
    if exclusive_min is not None and value <= exclusive_min:
        raise ValidationError(path, f"{value} is not greater than exclusive minimum {exclusive_min}")
    if exclusive_max is not None and value >= exclusive_max:
        raise ValidationError(path, f"{value} is not less than exclusive maximum {exclusive_max}")
    multiple = schema.get("multipleOf")
    if multiple is not None:
        quotient = value / multiple
        if not math.isclose(quotient, round(quotient), rel_tol=1e-12, abs_tol=1e-12):
            raise ValidationError(path, f"{value} is not a multiple of {multiple}")


def _validate_string(value: str, schema: dict[str, Any], path: str) -> None:
    min_length, max_length = schema.get("minLength"), schema.get("maxLength")
    if min_length is not None and len(value) < min_length:
        raise ValidationError(path, f"string shorter than minLength {min_length}")
    if max_length is not None and len(value) > max_length:
        raise ValidationError(path, f"string longer than maxLength {max_length}")
    pattern = schema.get("pattern")
    if pattern is not None and re.search(pattern, value) is None:
        raise ValidationError(path, f"string does not match pattern {pattern!r}")


def _validate_object(
    instance: dict[str, Any], schema: dict[str, Any], root: dict[str, Any], path: str
) -> None:
    for name in schema.get("required", []):
        if name not in instance:
            raise ValidationError(path, f"missing required property {name!r}")
    min_properties, max_properties = schema.get("minProperties"), schema.get("maxProperties")
    if min_properties is not None and len(instance) < min_properties:
        raise ValidationError(path, f"object has fewer than {min_properties} properties")
    if max_properties is not None and len(instance) > max_properties:
        raise ValidationError(path, f"object has more than {max_properties} properties")

    properties = schema.get("properties", {})
    pattern_properties = schema.get("patternProperties", {})
    additional = schema.get("additionalProperties", True)
    for key, value in instance.items():
        child_path = f"{path}.{key}"
        matched = False
        if key in properties:
            validate(value, properties[key], root, child_path)
            matched = True
        for pattern, sub_schema in pattern_properties.items():
            if re.search(pattern, key):
                validate(value, sub_schema, root, child_path)
                matched = True
        if matched:
            continue
        if additional is False:
            raise ValidationError(child_path, f"unexpected property {key!r}")
        if isinstance(additional, dict):
            validate(value, additional, root, child_path)


def _validate_array(
    instance: list[Any], schema: dict[str, Any], root: dict[str, Any], path: str
) -> None:
    min_items, max_items = schema.get("minItems"), schema.get("maxItems")
    if min_items is not None and len(instance) < min_items:
        raise ValidationError(path, f"array has fewer than {min_items} items")
    if max_items is not None and len(instance) > max_items:
        raise ValidationError(path, f"array has more than {max_items} items")
    if schema.get("uniqueItems"):
        seen: list[Any] = []
        for index, item in enumerate(instance):
            if any(_json_equal(item, other) for other in seen):
                raise ValidationError(f"{path}[{index}]", "array items are not unique")
            seen.append(item)
    items = schema.get("items")
    if isinstance(items, list):  # tuple validation
        for index, (item, sub_schema) in enumerate(zip(instance, items)):
            validate(item, sub_schema, root, f"{path}[{index}]")
        additional = schema.get("additionalItems", True)
        if additional is False and len(instance) > len(items):
            raise ValidationError(path, f"array longer than its {len(items)}-item tuple schema")
        if isinstance(additional, dict):
            for index in range(len(items), len(instance)):
                validate(instance[index], additional, root, f"{path}[{index}]")
    elif items is not None:
        for index, item in enumerate(instance):
            validate(item, items, root, f"{path}[{index}]")


def _validate_combinators(
    instance: Any, schema: dict[str, Any], root: dict[str, Any], path: str
) -> None:
    for sub_schema in schema.get("allOf", []):
        validate(instance, sub_schema, root, path)
    any_of = schema.get("anyOf")
    if any_of is not None:
        failures = []
        for sub_schema in any_of:
            try:
                validate(instance, sub_schema, root, path)
                break
            except ValidationError as error:
                failures.append(error.reason)
        else:
            raise ValidationError(path, "value matches none of anyOf: " + "; ".join(failures))
    one_of = schema.get("oneOf")
    if one_of is not None:
        matches = 0
        for sub_schema in one_of:
            try:
                validate(instance, sub_schema, root, path)
                matches += 1
            except ValidationError:
                pass
        if matches != 1:
            raise ValidationError(path, f"value matches {matches} of oneOf schemas, expected exactly 1")
    if "not" in schema:
        try:
            validate(instance, schema["not"], root, path)
        except ValidationError:
            return
        raise ValidationError(path, "value matches forbidden ('not') schema")
