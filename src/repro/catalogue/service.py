"""The catalogue as a RESTful web application.

=========  ==============================  =================================
Path       GET                             POST / DELETE
=========  ==============================  =================================
/search    ranked hits (?q=&tag=&available=)
/services  all published entries           POST publish {uri, tags} /
                                           DELETE ?uri= unpublish
/services/tags                             POST add tags {uri, tags}
/ping                                      POST re-ping all services
=========  ==============================  =================================
"""

from __future__ import annotations

from repro.catalogue.catalogue import Catalogue, CatalogueError
from repro.http.app import RestApp
from repro.http.messages import HttpError, Request, Response
from repro.http.registry import TransportRegistry
from repro.http.server import RestServer


class CatalogueService:
    """Wraps a :class:`Catalogue` in a REST application."""

    def __init__(self, catalogue: Catalogue | None = None, registry: TransportRegistry | None = None):
        self.catalogue = catalogue or Catalogue(registry)
        self.app = RestApp("catalogue")
        self.app.route("GET", "/search", self._search)
        self.app.route("GET", "/services", self._list)
        self.app.route("POST", "/services", self._publish)
        self.app.route("DELETE", "/services", self._unpublish)
        self.app.route("POST", "/services/tags", self._tag)
        self.app.route("POST", "/ping", self._ping)
        self.app.route("GET", "/ui", self._ui)

    def bind_local(self, authority: str = "catalogue") -> str:
        """Expose in process on the catalogue's own registry."""
        return self.catalogue.registry.bind_local(authority, self.app)

    def serve(self, host: str = "127.0.0.1", port: int = 0, **server_options: object) -> RestServer:
        return RestServer(self.app, host=host, port=port, **server_options).start()

    # ------------------------------------------------------------- handlers

    def _search(self, request: Request) -> Response:
        hits = self.catalogue.search(
            query=request.query.get("q", ""),
            tag=request.query.get("tag") or None,
            available_only=request.query.get("available", "").lower() in ("1", "true", "yes"),
            limit=int(request.query.get("limit", "20")),
        )
        return Response.json({"query": request.query.get("q", ""), "hits": hits})

    def _list(self, request: Request) -> Response:
        return Response.json([entry.to_json() for entry in self.catalogue.entries()])

    def _publish(self, request: Request) -> Response:
        body = request.json
        uri = body.get("uri", "")
        if not uri:
            raise HttpError(400, "publication needs a 'uri'")
        try:
            entry = self.catalogue.publish(uri, tags=body.get("tags", []))
        except CatalogueError as exc:
            raise HttpError(422, str(exc)) from exc
        return Response.created(entry.uri, entry.to_json())

    def _unpublish(self, request: Request) -> Response:
        uri = request.query.get("uri", "")
        if not uri:
            raise HttpError(400, "unpublish needs a ?uri= parameter")
        try:
            self.catalogue.unpublish(uri)
        except CatalogueError as exc:
            raise HttpError(404, str(exc)) from exc
        return Response.no_content()

    def _tag(self, request: Request) -> Response:
        body = request.json
        try:
            entry = self.catalogue.add_tags(body.get("uri", ""), body.get("tags", []))
        except CatalogueError as exc:
            raise HttpError(404, str(exc)) from exc
        return Response.json(entry.to_json())

    def _ping(self, request: Request) -> Response:
        return Response.json(self.catalogue.ping_all())

    def _ui(self, request: Request) -> Response:
        from repro.catalogue.webui import render_search_page

        query = request.query.get("q", "")
        hits = self.catalogue.search(query) if query else []
        return Response.html(render_search_page(query, hits))
