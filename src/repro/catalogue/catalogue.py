"""The catalogue: publication, discovery, monitoring and annotation.

Publishing takes "a URI of the service and a few tags describing it"; the
catalogue then "retrieves service description via the unified REST API,
performs indexing and stores description along with specified tags"
(paper §3.2). A background pinger keeps availability current, and entries
can be tagged by users after publication (the paper's "collaborative
Web 2.0" feature).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.catalogue.index import InvertedIndex
from repro.catalogue.snippets import make_snippet
from repro.http.client import ClientError, RestClient
from repro.http.registry import TransportRegistry
from repro.http.transport import TransportError
from repro.runtime.pool import ExecutorPool, PeriodicTask


class CatalogueError(Exception):
    """Publication or lookup failure."""


@dataclass
class CatalogueEntry:
    """One published service."""

    uri: str
    description: dict[str, Any]
    tags: set[str] = field(default_factory=set)
    available: bool = True
    #: Finer-grained availability for gateway-published services:
    #: ``up`` (responsive), ``degraded`` (responding with 5xx — e.g. a
    #: gateway whose replicas are all down or saturated), ``down``
    #: (unreachable at the transport level).
    status: str = "up"
    published_at: float = field(default_factory=time.time)
    last_ping: float | None = None

    @property
    def name(self) -> str:
        return str(self.description.get("name", ""))

    @property
    def title(self) -> str:
        return str(self.description.get("title", "")) or self.name

    def index_text(self) -> str:
        """The searchable text: name, title, prose, parameters and tags."""
        parts = [
            self.name,
            self.title,
            str(self.description.get("description", "")),
            " ".join(self.tags),
        ]
        for group in ("inputs", "outputs"):
            for parameter_name, spec in self.description.get(group, {}).items():
                parts.append(parameter_name)
                if isinstance(spec, dict):
                    parts.append(str(spec.get("title", "")))
        return " ".join(part for part in parts if part)

    def to_json(self) -> dict[str, Any]:
        return {
            "uri": self.uri,
            "description": self.description,
            "tags": sorted(self.tags),
            "available": self.available,
            "status": self.status,
            "published_at": self.published_at,
            "last_ping": self.last_ping,
        }

    @classmethod
    def from_json(cls, document: dict[str, Any]) -> "CatalogueEntry":
        return cls(
            uri=document["uri"],
            description=document["description"],
            tags=set(document.get("tags", [])),
            available=bool(document.get("available", True)),
            status=str(document.get("status", "up")),
            published_at=float(document.get("published_at", time.time())),
            last_ping=document.get("last_ping"),
        )


class Catalogue:
    """Discovery, monitoring and annotation of computational web services."""

    def __init__(self, registry: TransportRegistry | None = None):
        self.registry = registry or TransportRegistry()
        self._client = RestClient(self.registry)
        self._probe_client = RestClient(self.registry, retry_after_cap=0.0)
        self._entries: dict[str, CatalogueEntry] = {}
        self._index = InvertedIndex()
        self._lock = threading.Lock()
        self._pinger: PeriodicTask | None = None
        self._ping_pool: ExecutorPool | None = None

    # ---------------------------------------------------------- publication

    def publish(self, uri: str, tags: list[str] | None = None) -> CatalogueEntry:
        """Register a service by URI; its description is fetched and indexed."""
        uri = uri.rstrip("/")
        try:
            description = self._client.get(uri)
        except (ClientError, TransportError) as exc:
            raise CatalogueError(f"cannot retrieve service description from {uri!r}: {exc}") from exc
        if not isinstance(description, dict) or "name" not in description:
            raise CatalogueError(f"{uri!r} did not return a service description")
        entry = CatalogueEntry(uri=uri, description=description, tags=set(tags or []))
        with self._lock:
            self._entries[uri] = entry
        self._index.add(uri, entry.index_text())
        return entry

    def unpublish(self, uri: str) -> None:
        uri = uri.rstrip("/")
        with self._lock:
            if uri not in self._entries:
                raise CatalogueError(f"service {uri!r} is not published")
            del self._entries[uri]
        self._index.remove(uri)

    def entry(self, uri: str) -> CatalogueEntry:
        with self._lock:
            entry = self._entries.get(uri.rstrip("/"))
        if entry is None:
            raise CatalogueError(f"service {uri!r} is not published")
        return entry

    def entries(self) -> list[CatalogueEntry]:
        with self._lock:
            return list(self._entries.values())

    def add_tags(self, uri: str, tags: list[str]) -> CatalogueEntry:
        """User tagging (the catalogue's collaborative feature)."""
        entry = self.entry(uri)
        entry.tags.update(tags)
        self._index.add(entry.uri, entry.index_text())
        return entry

    # -------------------------------------------------------------- search

    def search(
        self,
        query: str,
        tag: str | None = None,
        available_only: bool = False,
        limit: int = 20,
    ) -> list[dict[str, Any]]:
        """Ranked full-text search with optional filters.

        Each hit carries the entry plus a highlighted snippet. An empty
        query with a tag filter lists that tag's services (newest first).
        """
        if query.strip():
            ranked = self._index.search(query)
            ordered = [self._entries.get(uri) for uri, _ in ranked]
        else:
            ordered = sorted(self.entries(), key=lambda e: -e.published_at)
        hits: list[dict[str, Any]] = []
        for entry in ordered:
            if entry is None:
                continue
            if tag is not None and tag not in entry.tags:
                continue
            if available_only and not entry.available:
                continue
            hits.append(
                {
                    "uri": entry.uri,
                    "name": entry.name,
                    "title": entry.title,
                    "tags": sorted(entry.tags),
                    "available": entry.available,
                    "snippet": make_snippet(entry.index_text(), query),
                }
            )
            if len(hits) >= limit:
                break
        return hits

    # ----------------------------------------------------------- monitoring

    def ping(self, uri: str) -> bool:
        """Probe one service; updates and returns its availability.

        A 5xx answer (a gateway with its whole replica pool down reports
        503) marks the entry ``degraded`` — published and addressable but
        not currently serving — while a transport failure marks it
        ``down``. Probes never honour ``Retry-After`` waits: a ping must
        report *now*, not after the service recovers.
        """
        entry = self.entry(uri)
        try:
            response = self._probe_client.request_raw("GET", entry.uri)
        except (ClientError, TransportError):
            entry.available = False
            entry.status = "down"
        else:
            entry.available = response.ok
            if response.ok:
                entry.status = "up"
            elif response.status >= 500:
                entry.status = "degraded"
            else:  # 404 and friends: the service resource itself is gone
                entry.status = "down"
        entry.last_ping = time.time()
        return entry.available

    def ping_all(self) -> dict[str, bool]:
        return {entry.uri: self.ping(entry.uri) for entry in self.entries()}

    def start_pinger(self, interval: float = 30.0, workers: int = 2) -> None:
        """Probe every published service periodically.

        Each round fans the pings out over a small
        :class:`~repro.runtime.ExecutorPool`, so one unreachable service
        (a socket timeout) no longer stalls the availability of every
        entry behind it in the round.
        """
        if self._pinger is not None:
            raise RuntimeError("pinger already running")
        self._ping_pool = ExecutorPool(workers=workers, name="catalogue-ping")
        self._pinger = PeriodicTask(interval, self._ping_round, name="catalogue-pinger")
        self._pinger.start()

    def _ping_round(self) -> None:
        pool = self._ping_pool
        if pool is None:
            return
        handles = [pool.submit(self.ping, entry.uri) for entry in self.entries()]
        for handle in handles:
            handle.wait(timeout=60)

    def stop_pinger(self) -> None:
        if self._pinger is None:
            return
        self._pinger.stop()
        self._pinger = None
        if self._ping_pool is not None:
            self._ping_pool.shutdown(wait=False)
            self._ping_pool = None

    # ---------------------------------------------------------- persistence

    def save(self, path: str | Path) -> None:
        documents = [entry.to_json() for entry in self.entries()]
        Path(path).write_text(json.dumps(documents, indent=2))

    def load(self, path: str | Path) -> int:
        """Load previously saved entries (merging by URI); returns count."""
        documents = json.loads(Path(path).read_text())
        for document in documents:
            entry = CatalogueEntry.from_json(document)
            with self._lock:
                self._entries[entry.uri] = entry
            self._index.add(entry.uri, entry.index_text())
        return len(documents)
