"""Search-result snippets: "short snippets of each found service with
highlighted query terms" (paper §3.2)."""

from __future__ import annotations

import re

from repro.catalogue.index import tokenize


def _term_spans(text: str, terms: set[str]) -> list[tuple[int, int]]:
    """Character spans of query-term occurrences (word-boundary matches)."""
    spans: list[tuple[int, int]] = []
    for term in terms:
        for match in re.finditer(rf"\b{re.escape(term)}\w*", text, flags=re.IGNORECASE):
            spans.append(match.span())
    return sorted(spans)


def make_snippet(text: str, query: str, width: int = 160, mark: str = "**") -> str:
    """A window of ``text`` around the densest cluster of query terms.

    Matched terms are wrapped in ``mark`` (``**term**`` reads well both in
    terminals and when rendered). Falls back to the head of the text when
    no term occurs.
    """
    collapsed = " ".join(text.split())
    terms = set(tokenize(query))
    spans = _term_spans(collapsed, terms)
    if not spans:
        head = collapsed[:width]
        return head + ("…" if len(collapsed) > width else "")

    # choose the window starting at each span that covers the most spans
    best_start, best_count = spans[0][0], 0
    for start, _ in spans:
        window_end = start + width
        count = sum(1 for s, e in spans if s >= start and e <= window_end)
        if count > best_count:
            best_start, best_count = start, count
    window_start = max(0, best_start - 20)
    window_end = min(len(collapsed), window_start + width)

    pieces: list[str] = []
    cursor = window_start
    for start, end in spans:
        if start < window_start or end > window_end:
            continue
        pieces.append(collapsed[cursor:start])
        pieces.append(f"{mark}{collapsed[start:end]}{mark}")
        cursor = end
    pieces.append(collapsed[cursor:window_end])
    snippet = "".join(pieces)
    prefix = "…" if window_start > 0 else ""
    suffix = "…" if window_end < len(collapsed) else ""
    return prefix + snippet + suffix
