"""The catalogue's browser interface.

"[The catalogue] is implemented as a web application with interface and
functionality similar to modern search engines." (§3.2) — a search box,
ranked results with highlighted snippets, tags and availability badges.
Served at ``GET /ui`` of the catalogue application; the form round-trips
through ``GET /ui?q=…`` so it works without JavaScript.
"""

from __future__ import annotations

import html
import re
from typing import Any

_PAGE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>MathCloud service catalogue</title>
<style>
 body {{ font-family: sans-serif; margin: 2em auto; max-width: 48em; }}
 form {{ margin-bottom: 2em; }}
 input[type=text] {{ width: 70%; padding: 0.5em; font-size: 1.1em; }}
 .hit {{ margin-bottom: 1.4em; }}
 .hit a {{ font-size: 1.1em; }}
 .snippet {{ color: #333; }}
 .snippet em {{ background: #ffef9e; font-style: normal; }}
 .meta {{ color: #0a7a0a; font-size: 0.85em; }}
 .dead {{ color: #b00; font-size: 0.85em; }}
 .tag {{ background: #eef; border-radius: 3px; padding: 0 0.4em; font-size: 0.8em; }}
</style>
</head>
<body>
<h1>Service catalogue</h1>
<form method="get" action="/ui">
  <input type="text" name="q" value="{query}" placeholder="search services...">
  <button type="submit">Search</button>
</form>
{results}
</body>
</html>
"""


def _snippet_html(snippet: str) -> str:
    """Convert the catalogue's ``**term**`` highlights to ``<em>``."""
    escaped = html.escape(snippet)
    return re.sub(r"\*\*(.+?)\*\*", r"<em>\1</em>", escaped)


def render_search_page(query: str, hits: list[dict[str, Any]]) -> str:
    """The search page, with results when a query was given."""
    if not query:
        results = "<p>Enter a query to search the published services.</p>"
    elif not hits:
        results = f"<p>No services match <b>{html.escape(query)}</b>.</p>"
    else:
        blocks = []
        for hit in hits:
            tags = " ".join(f'<span class="tag">{html.escape(t)}</span>' for t in hit["tags"])
            status = (
                '<span class="meta">available</span>'
                if hit["available"]
                else '<span class="dead">unavailable</span>'
            )
            blocks.append(
                '<div class="hit">'
                f'<a href="{html.escape(hit["uri"], quote=True)}">{html.escape(hit["title"])}</a> '
                f"{status}<br>"
                f'<span class="snippet">{_snippet_html(hit["snippet"])}</span><br>'
                f"{tags}</div>"
            )
        results = "\n".join(blocks)
    return _PAGE.format(query=html.escape(query, quote=True), results=results)
