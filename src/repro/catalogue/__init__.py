"""The service catalogue (paper §3.2).

"The main purpose of service catalogue is to support discovery, monitoring
and annotation of computational web services. It is implemented as a web
application with interface and functionality similar to modern search
engines."

Pieces:

- :mod:`repro.catalogue.index` — an inverted index with TF-IDF cosine
  ranking, built from scratch;
- :mod:`repro.catalogue.snippets` — search-result snippets with
  highlighted query terms;
- :mod:`repro.catalogue.catalogue` — the catalogue proper: publish by URI
  (the description is retrieved through the unified REST API), full-text
  search with tag/availability filters, periodic pinging, user tagging,
  JSON persistence;
- :mod:`repro.catalogue.service` — the catalogue as a RESTful web app.
"""

from repro.catalogue.catalogue import Catalogue, CatalogueEntry
from repro.catalogue.index import InvertedIndex, tokenize
from repro.catalogue.service import CatalogueService

__all__ = ["Catalogue", "CatalogueEntry", "CatalogueService", "InvertedIndex", "tokenize"]
