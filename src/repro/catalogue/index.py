"""Inverted index with TF-IDF cosine ranking.

Small by design — the catalogue indexes service descriptions, which are
short documents — but a real search engine in miniature: postings lists,
log-scaled term frequencies, inverse document frequency and cosine
normalization, so multi-term queries rank sensibly.
"""

from __future__ import annotations

import math
import re
import threading
from collections import Counter

_TOKEN = re.compile(r"[a-z0-9]+")

#: Words too common in service descriptions to be discriminative.
STOP_WORDS = frozenset(
    "a an and are as at be by for from has in is it of on or the this to with".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercased alphanumeric tokens, stop words removed.

    CamelCase and snake_case identifiers split on their seams so that a
    query for "matrix" finds a service named ``invertMatrix`` or
    ``matrix_tools``.
    """
    seamed = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", text)
    tokens = _TOKEN.findall(seamed.lower())
    return [token for token in tokens if token not in STOP_WORDS]


class InvertedIndex:
    """Thread-safe document index over string keys."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, int]] = {}  # term -> doc -> tf
        self._doc_terms: dict[str, Counter[str]] = {}
        self._lock = threading.Lock()

    def add(self, doc_id: str, text: str) -> None:
        """(Re)index a document; replaces any previous content."""
        terms = Counter(tokenize(text))
        with self._lock:
            self._remove_locked(doc_id)
            self._doc_terms[doc_id] = terms
            for term, frequency in terms.items():
                self._postings.setdefault(term, {})[doc_id] = frequency

    def remove(self, doc_id: str) -> None:
        with self._lock:
            self._remove_locked(doc_id)

    def _remove_locked(self, doc_id: str) -> None:
        terms = self._doc_terms.pop(doc_id, None)
        if not terms:
            return
        for term in terms:
            postings = self._postings.get(term)
            if postings is not None:
                postings.pop(doc_id, None)
                if not postings:
                    del self._postings[term]

    def __contains__(self, doc_id: object) -> bool:
        with self._lock:
            return doc_id in self._doc_terms

    def __len__(self) -> int:
        with self._lock:
            return len(self._doc_terms)

    def search(self, query: str, limit: int | None = None) -> list[tuple[str, float]]:
        """Rank documents for ``query`` by TF-IDF cosine similarity.

        Returns ``(doc_id, score)`` pairs, best first. An empty or
        all-stop-word query matches nothing.
        """
        query_terms = Counter(tokenize(query))
        if not query_terms:
            return []
        with self._lock:
            corpus_size = len(self._doc_terms)
            if corpus_size == 0:
                return []
            scores: dict[str, float] = {}
            for term, query_tf in query_terms.items():
                postings = self._postings.get(term)
                if not postings:
                    continue
                idf = math.log((1 + corpus_size) / (1 + len(postings))) + 1.0
                query_weight = (1 + math.log(query_tf)) * idf
                for doc_id, doc_tf in postings.items():
                    doc_weight = (1 + math.log(doc_tf)) * idf
                    scores[doc_id] = scores.get(doc_id, 0.0) + query_weight * doc_weight
            if not scores:
                return []
            # cosine normalization by document vector length
            for doc_id in list(scores):
                length = math.sqrt(
                    sum(
                        ((1 + math.log(tf)) * self._idf_locked(term, corpus_size)) ** 2
                        for term, tf in self._doc_terms[doc_id].items()
                    )
                )
                scores[doc_id] /= length or 1.0
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return ranked[:limit] if limit is not None else ranked

    def _idf_locked(self, term: str, corpus_size: int) -> float:
        postings = self._postings.get(term, {})
        return math.log((1 + corpus_size) / (1 + len(postings))) + 1.0
