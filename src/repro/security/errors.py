"""Security error types."""

from __future__ import annotations


class SecurityError(Exception):
    """Base class for authentication/authorization failures."""


class AuthenticationError(SecurityError):
    """Credentials are missing, malformed, expired or forged (HTTP 401)."""

    http_status = 401


class AuthorizationError(SecurityError):
    """The authenticated identity may not perform the action (HTTP 403)."""

    http_status = 403
