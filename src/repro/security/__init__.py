"""The MathCloud security mechanism (paper §3.4, Fig. 3).

Authentication, authorization and a limited delegation scheme:

- :mod:`repro.security.pki` — a simulated X.509 PKI: a certificate
  authority issues signed certificates with distinguished names; services
  and users authenticate by presenting them. (HMAC signatures stand in for
  RSA/SSL — the trust decisions are identical, only the wire cryptography
  is simulated; see DESIGN.md.)
- :mod:`repro.security.identity` — OpenID-style authentication through an
  identity-provider broker (the paper's Loginza), for users without
  certificates.
- :mod:`repro.security.authz` — per-service allow/deny lists over
  identities, plus the *proxy list*: services (e.g. the workflow service)
  trusted to invoke a service on behalf of a user.
- :mod:`repro.security.middleware` — the REST middleware that extracts
  credentials from request headers, verifies them and enforces policies.
"""

from repro.security.authz import AccessDecision, AccessPolicy
from repro.security.errors import AuthenticationError, AuthorizationError, SecurityError
from repro.security.identity import Identity, IdentityBroker, OpenIdProvider
from repro.security.middleware import CredentialHeaders, SecurityMiddleware, client_headers
from repro.security.pki import Certificate, CertificateAuthority

__all__ = [
    "AccessDecision",
    "AccessPolicy",
    "AuthenticationError",
    "AuthorizationError",
    "Certificate",
    "CertificateAuthority",
    "CredentialHeaders",
    "Identity",
    "IdentityBroker",
    "OpenIdProvider",
    "SecurityError",
    "SecurityMiddleware",
    "client_headers",
]
