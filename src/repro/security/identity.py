"""OpenID-style authentication through an identity-provider broker.

The paper's second client-authentication path is the Loginza service: a
broker that accepts assertions from popular identity providers (Google,
Facebook, any OpenID endpoint), aimed at browser users without
certificates. Here each :class:`OpenIdProvider` issues signed assertions
for its users, and the :class:`IdentityBroker` verifies an assertion
against whichever registered provider issued it.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import secrets
import time
from dataclasses import dataclass

from repro.security.errors import AuthenticationError


@dataclass(frozen=True)
class Identity:
    """An authenticated principal.

    ``id`` is the canonical identity string used in allow/deny/proxy lists:
    a certificate subject DN (``CN=alice``) or an OpenID identifier
    (``https://openid.example/alice``).
    """

    id: str
    kind: str  # "certificate" | "openid" | "anonymous"

    @property
    def anonymous(self) -> bool:
        return self.kind == "anonymous"


ANONYMOUS = Identity(id="", kind="anonymous")


class OpenIdProvider:
    """One identity provider: issues and checks signed assertions."""

    def __init__(self, name: str, base_url: str = "", secret: bytes | None = None):
        self.name = name
        self.base_url = base_url or f"https://{name}.example"
        self._secret = secret if secret is not None else secrets.token_bytes(32)

    def identifier_for(self, username: str) -> str:
        return f"{self.base_url}/{username}"

    def issue_assertion(self, username: str, valid_for: float = 3600.0) -> str:
        """An assertion token the user's browser would carry after login."""
        claims = {
            "provider": self.name,
            "identifier": self.identifier_for(username),
            "expires": time.time() + valid_for,
        }
        payload = json.dumps(claims, sort_keys=True).encode("utf-8")
        signature = hmac.new(self._secret, payload, hashlib.sha256).hexdigest()
        envelope = {"claims": claims, "signature": signature}
        return base64.urlsafe_b64encode(json.dumps(envelope).encode("utf-8")).decode("ascii")

    def verify_assertion(self, token: str) -> str:
        """Return the asserted OpenID identifier or raise."""
        try:
            envelope = json.loads(base64.urlsafe_b64decode(token.encode("ascii")))
            claims, signature = envelope["claims"], envelope["signature"]
        except (ValueError, KeyError, TypeError) as exc:
            raise AuthenticationError(f"malformed OpenID assertion: {exc}") from exc
        payload = json.dumps(claims, sort_keys=True).encode("utf-8")
        expected = hmac.new(self._secret, payload, hashlib.sha256).hexdigest()
        if not hmac.compare_digest(expected, signature):
            raise AuthenticationError("OpenID assertion signature is invalid")
        if claims.get("provider") != self.name:
            raise AuthenticationError("OpenID assertion names a different provider")
        if time.time() > float(claims.get("expires", 0)):
            raise AuthenticationError("OpenID assertion has expired")
        return str(claims["identifier"])


class IdentityBroker:
    """The Loginza stand-in: one verification point over many providers."""

    def __init__(self, providers: list[OpenIdProvider] | None = None):
        self._providers: dict[str, OpenIdProvider] = {}
        for provider in providers or []:
            self.register(provider)

    def register(self, provider: OpenIdProvider) -> None:
        if provider.name in self._providers:
            raise ValueError(f"provider {provider.name!r} already registered")
        self._providers[provider.name] = provider

    def verify(self, token: str) -> Identity:
        """Verify an assertion against its issuing provider."""
        try:
            envelope = json.loads(base64.urlsafe_b64decode(token.encode("ascii")))
            provider_name = envelope["claims"]["provider"]
        except (ValueError, KeyError, TypeError) as exc:
            raise AuthenticationError(f"malformed OpenID assertion: {exc}") from exc
        provider = self._providers.get(provider_name)
        if provider is None:
            raise AuthenticationError(f"unknown identity provider {provider_name!r}")
        identifier = provider.verify_assertion(token)
        return Identity(id=identifier, kind="openid")

    @property
    def provider_names(self) -> list[str]:
        return sorted(self._providers)
