"""Authorization: allow/deny lists and the proxy (delegation) list.

Per the paper, a service administrator configures, per service:

- an *allow list*: identities that may access the service (absent list =
  everyone authenticated may access);
- a *deny list*: identities that may never access it (deny wins);
- a *proxy list*: certificates of services trusted to invoke this service
  *on behalf of* a user — the lightweight alternative to grid proxy
  certificates used by e.g. the workflow management service.

An anonymous caller is only admitted when the policy explicitly allows
anonymous access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.security.errors import AuthorizationError
from repro.security.identity import Identity


@dataclass(frozen=True)
class AccessDecision:
    """The outcome of an authorization check."""

    #: The identity whose permissions applied (the user, after delegation).
    effective_id: str
    #: The identity that made the call (the proxying service, if any).
    caller_id: str
    delegated: bool = False


@dataclass
class AccessPolicy:
    """One service's access rules."""

    #: Identities allowed in. ``None`` means "any authenticated identity".
    allow: set[str] | None = None
    deny: set[str] = field(default_factory=set)
    #: Identities (service certificates' DNs) trusted to act for users.
    proxies: set[str] = field(default_factory=set)
    allow_anonymous: bool = False

    def decide(self, caller: Identity, on_behalf_of: str | None = None) -> AccessDecision:
        """Authorize ``caller`` (possibly delegating for ``on_behalf_of``).

        Returns the decision or raises :class:`AuthorizationError`.
        """
        if caller.anonymous:
            if on_behalf_of:
                raise AuthorizationError("anonymous callers cannot act on behalf of users")
            if not self.allow_anonymous:
                raise AuthorizationError("anonymous access is not allowed")
            return AccessDecision(effective_id="", caller_id="", delegated=False)

        if on_behalf_of:
            if caller.id not in self.proxies:
                raise AuthorizationError(
                    f"{caller.id!r} is not in the proxy list and may not act on behalf of users"
                )
            subject = on_behalf_of
        else:
            subject = caller.id

        if subject in self.deny:
            raise AuthorizationError(f"{subject!r} is denied access")
        if self.allow is not None and subject not in self.allow:
            raise AuthorizationError(f"{subject!r} is not in the allow list")
        return AccessDecision(
            effective_id=subject, caller_id=caller.id, delegated=bool(on_behalf_of)
        )

    @classmethod
    def open(cls) -> "AccessPolicy":
        """A policy admitting everyone, including anonymous callers."""
        return cls(allow_anonymous=True)
