"""Simulated X.509 public-key infrastructure.

The paper authenticates services with SSL server certificates and clients
with X.509 client certificates. This module reproduces the *trust model*
— a certificate authority vouches for a subject's distinguished name, with
validity windows, verification and serialization — while standing in
HMAC-SHA256 over the certificate fields for real public-key signatures
(no CA key ever leaves the process, so the substitution preserves
unforgeability within a deployment).
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import secrets
import time
from dataclasses import dataclass

from repro.security.errors import AuthenticationError


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a distinguished name to a validity window."""

    subject_dn: str
    issuer: str
    serial: str
    not_before: float
    not_after: float
    signature: str

    def signed_payload(self) -> bytes:
        document = {
            "subject_dn": self.subject_dn,
            "issuer": self.issuer,
            "serial": self.serial,
            "not_before": self.not_before,
            "not_after": self.not_after,
        }
        return json.dumps(document, sort_keys=True).encode("utf-8")

    def to_token(self) -> str:
        """Serialize for transport in an HTTP header (base64 JSON)."""
        document = {
            "subject_dn": self.subject_dn,
            "issuer": self.issuer,
            "serial": self.serial,
            "not_before": self.not_before,
            "not_after": self.not_after,
            "signature": self.signature,
        }
        return base64.urlsafe_b64encode(json.dumps(document).encode("utf-8")).decode("ascii")

    @classmethod
    def from_token(cls, token: str) -> "Certificate":
        try:
            document = json.loads(base64.urlsafe_b64decode(token.encode("ascii")))
            return cls(
                subject_dn=document["subject_dn"],
                issuer=document["issuer"],
                serial=document["serial"],
                not_before=float(document["not_before"]),
                not_after=float(document["not_after"]),
                signature=document["signature"],
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise AuthenticationError(f"malformed certificate token: {exc}") from exc


class CertificateAuthority:
    """Issues and verifies certificates for one trust domain."""

    def __init__(self, name: str = "CN=MathCloud CA", secret: bytes | None = None):
        self.name = name
        self._secret = secret if secret is not None else secrets.token_bytes(32)
        self._revoked: set[str] = set()

    def _sign(self, payload: bytes) -> str:
        return hmac.new(self._secret, payload, hashlib.sha256).hexdigest()

    def issue(self, subject_dn: str, valid_for: float = 86400.0) -> Certificate:
        """Issue a certificate for ``subject_dn``, valid ``valid_for`` seconds."""
        if not subject_dn:
            raise ValueError("subject distinguished name must be non-empty")
        now = time.time()
        unsigned = Certificate(
            subject_dn=subject_dn,
            issuer=self.name,
            serial=secrets.token_hex(8),
            not_before=now - 1.0,  # small skew allowance
            not_after=now + valid_for,
            signature="",
        )
        return Certificate(
            subject_dn=unsigned.subject_dn,
            issuer=unsigned.issuer,
            serial=unsigned.serial,
            not_before=unsigned.not_before,
            not_after=unsigned.not_after,
            signature=self._sign(unsigned.signed_payload()),
        )

    def verify(self, certificate: Certificate) -> str:
        """Verify signature, validity window and revocation.

        Returns the subject DN (the authenticated identity) on success and
        raises :class:`AuthenticationError` otherwise.
        """
        if certificate.issuer != self.name:
            raise AuthenticationError(
                f"certificate issued by {certificate.issuer!r}, not trusted CA {self.name!r}"
            )
        expected = self._sign(certificate.signed_payload())
        if not hmac.compare_digest(expected, certificate.signature):
            raise AuthenticationError("certificate signature is invalid")
        now = time.time()
        if now < certificate.not_before:
            raise AuthenticationError("certificate is not yet valid")
        if now > certificate.not_after:
            raise AuthenticationError("certificate has expired")
        if certificate.serial in self._revoked:
            raise AuthenticationError("certificate has been revoked")
        return certificate.subject_dn

    def revoke(self, certificate: Certificate) -> None:
        self._revoked.add(certificate.serial)
