"""REST middleware enforcing the security mechanism.

Credentials travel in three headers:

- ``X-Client-Certificate`` — a serialized certificate token
  (:meth:`~repro.security.pki.Certificate.to_token`);
- ``X-OpenID-Assertion`` — an identity-broker assertion token;
- ``X-On-Behalf-Of`` — the user identity a trusted proxy (e.g. the
  workflow management service) is acting for.

The middleware authenticates the caller, asks the per-path policy for a
decision and attaches it to ``request.context``:

- ``identity`` — the authenticated caller (:class:`Identity`);
- ``access`` — the :class:`~repro.security.authz.AccessDecision`, whose
  ``effective_id`` is the user whose permissions applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.http.messages import HttpError, Request, Response
from repro.security.authz import AccessPolicy
from repro.security.errors import AuthenticationError, AuthorizationError
from repro.security.identity import ANONYMOUS, Identity, IdentityBroker
from repro.security.pki import Certificate, CertificateAuthority

CERTIFICATE_HEADER = "X-Client-Certificate"
OPENID_HEADER = "X-OpenID-Assertion"
ON_BEHALF_HEADER = "X-On-Behalf-Of"

#: Resolves a request path to the policy protecting it (None = open).
PolicyResolver = Callable[[str], AccessPolicy | None]


@dataclass
class CredentialHeaders:
    """Client-side helper: the headers a credentialed client should send."""

    certificate: Certificate | None = None
    openid_assertion: str = ""
    on_behalf_of: str = ""

    def as_dict(self) -> dict[str, str]:
        headers: dict[str, str] = {}
        if self.certificate is not None:
            headers[CERTIFICATE_HEADER] = self.certificate.to_token()
        if self.openid_assertion:
            headers[OPENID_HEADER] = self.openid_assertion
        if self.on_behalf_of:
            headers[ON_BEHALF_HEADER] = self.on_behalf_of
        return headers


def client_headers(
    certificate: Certificate | None = None,
    openid_assertion: str = "",
    on_behalf_of: str = "",
) -> dict[str, str]:
    """Shorthand for :class:`CredentialHeaders(...).as_dict()`."""
    return CredentialHeaders(certificate, openid_assertion, on_behalf_of).as_dict()


class SecurityMiddleware:
    """Authenticates requests and enforces per-path access policies."""

    def __init__(
        self,
        ca: CertificateAuthority,
        identity_broker: IdentityBroker | None = None,
        policy_resolver: PolicyResolver | None = None,
    ):
        self.ca = ca
        self.identity_broker = identity_broker or IdentityBroker()
        self.policy_resolver = policy_resolver or (lambda path: None)

    def authenticate(self, request: Request) -> Identity:
        """Determine the caller's identity from credential headers.

        Certificate and OpenID credentials are both accepted; if both are
        present the certificate wins (it is the stronger credential).
        Missing credentials yield the anonymous identity; *invalid*
        credentials are an error — a forged token must never silently
        downgrade to anonymous.
        """
        certificate_token = request.headers.get(CERTIFICATE_HEADER)
        if certificate_token:
            certificate = Certificate.from_token(certificate_token)
            subject = self.ca.verify(certificate)
            return Identity(id=subject, kind="certificate")
        assertion = request.headers.get(OPENID_HEADER)
        if assertion:
            return self.identity_broker.verify(assertion)
        return ANONYMOUS

    def __call__(self, request: Request, call_next: Callable[[Request], Response]) -> Response:
        try:
            identity = self.authenticate(request)
        except AuthenticationError as exc:
            raise HttpError(401, str(exc)) from exc
        request.context["identity"] = identity
        policy = self.policy_resolver(request.path)
        if policy is not None:
            on_behalf_of = request.headers.get(ON_BEHALF_HEADER) or None
            try:
                request.context["access"] = policy.decide(identity, on_behalf_of)
            except AuthorizationError as exc:
                status = 401 if identity.anonymous else 403
                raise HttpError(status, str(exc)) from exc
        return call_next(request)
