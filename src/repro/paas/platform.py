"""The PaaS core: tenants, quotas, hosted deployment, shared catalogue."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.catalogue import Catalogue
from repro.container import ServiceContainer
from repro.container.config import ServiceConfig
from repro.core.description import check_service_name
from repro.core.errors import ConfigurationError, ServiceError
from repro.http.registry import TransportRegistry
from repro.security.pki import Certificate, CertificateAuthority

#: Adapters a hosted tenant may use. The Python adapter would execute
#: tenant-supplied code inside the platform process, so it is excluded;
#: command/cluster/grid run work in separate processes or on substrates.
HOSTED_ADAPTERS = frozenset({"command", "cluster", "grid"})


class PaasError(ServiceError):
    """Tenancy or quota violation."""

    http_status = 403


@dataclass
class Quota:
    """Per-tenant resource limits."""

    max_services: int = 10
    handlers: int = 2

    def __post_init__(self) -> None:
        if self.max_services < 1 or self.handlers < 1:
            raise ConfigurationError("quota values must be >= 1")


@dataclass(eq=False)
class Tenant:
    """One hosted account: an isolated container plus its credentials."""

    name: str
    owner_dn: str
    container: ServiceContainer
    certificate: Certificate
    quota: Quota = field(default_factory=Quota)

    @property
    def service_count(self) -> int:
        return len(self.container.services)

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "owner": self.owner_dn,
            "base_uri": self.container.base_uri,
            "services": [s.name for s in self.container.services],
            "quota": {
                "max_services": self.quota.max_services,
                "handlers": self.quota.handlers,
            },
        }


class Platform:
    """Hosts tenants, enforces quotas, shares a catalogue."""

    def __init__(
        self,
        registry: TransportRegistry | None = None,
        ca: CertificateAuthority | None = None,
        name: str = "mathcloud-paas",
    ):
        self.name = name
        self.registry = registry or TransportRegistry()
        self.ca = ca or CertificateAuthority(f"CN={name} CA")
        self.catalogue = Catalogue(self.registry)
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    # -------------------------------------------------------------- tenancy

    def create_tenant(
        self, name: str, owner_dn: str, quota: Quota | None = None
    ) -> Tenant:
        """Provision a tenant: container + owner certificate."""
        check_service_name(name)  # same alphabet rules as service names
        if not owner_dn:
            raise PaasError("a tenant needs an owner distinguished name")
        with self._lock:
            if name in self._tenants:
                raise PaasError(f"tenant {name!r} already exists")
            quota = quota or Quota()
            container = ServiceContainer(
                f"{self.name}-{name}", handlers=quota.handlers, registry=self.registry
            )
            tenant = Tenant(
                name=name,
                owner_dn=owner_dn,
                container=container,
                certificate=self.ca.issue(owner_dn),
                quota=quota,
            )
            self._tenants[name] = tenant
        return tenant

    def delete_tenant(self, name: str, caller_dn: str) -> None:
        tenant = self.tenant(name)
        self._authorize(tenant, caller_dn)
        for service in list(tenant.container.services):
            self._unpublish_quietly(tenant, service.name)
        tenant.container.shutdown()
        with self._lock:
            del self._tenants[name]

    def tenant(self, name: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(name)
        if tenant is None:
            raise PaasError(f"no tenant {name!r}")
        return tenant

    @property
    def tenants(self) -> list[Tenant]:
        with self._lock:
            return list(self._tenants.values())

    def shutdown(self) -> None:
        for tenant in self.tenants:
            tenant.container.shutdown()
        with self._lock:
            self._tenants.clear()

    # ----------------------------------------------------------- deployment

    def _authorize(self, tenant: Tenant, caller_dn: str) -> None:
        if caller_dn != tenant.owner_dn:
            raise PaasError(
                f"{caller_dn!r} does not own tenant {tenant.name!r}"
            )

    def deploy_service(
        self, tenant_name: str, config: dict[str, Any], caller_dn: str
    ) -> str:
        """Deploy a JSON service configuration into a tenant's container.

        Returns the public service URI. Enforces ownership, the hosted
        adapter allow-list and the tenant's service quota.
        """
        tenant = self.tenant(tenant_name)
        self._authorize(tenant, caller_dn)
        parsed = ServiceConfig.from_dict(config)
        if parsed.adapter not in HOSTED_ADAPTERS:
            raise PaasError(
                f"adapter {parsed.adapter!r} is not available to hosted tenants "
                f"(allowed: {sorted(HOSTED_ADAPTERS)})"
            )
        if tenant.service_count >= tenant.quota.max_services:
            raise PaasError(
                f"tenant {tenant.name!r} is at its quota of "
                f"{tenant.quota.max_services} services"
            )
        tenant.container.deploy(parsed)
        uri = tenant.container.service_uri(parsed.name)
        self.catalogue.publish(uri, tags=["paas", f"tenant:{tenant.name}"])
        return uri

    def undeploy_service(self, tenant_name: str, service_name: str, caller_dn: str) -> None:
        tenant = self.tenant(tenant_name)
        self._authorize(tenant, caller_dn)
        self._unpublish_quietly(tenant, service_name)
        tenant.container.undeploy(service_name)

    def _unpublish_quietly(self, tenant: Tenant, service_name: str) -> None:
        from repro.catalogue.catalogue import CatalogueError

        try:
            self.catalogue.unpublish(tenant.container.service_uri(service_name))
        except CatalogueError:
            pass

    # ------------------------------------------------------------ discovery

    def search(self, query: str, tenant_name: str | None = None) -> list[dict[str, Any]]:
        tag = f"tenant:{tenant_name}" if tenant_name else None
        return self.catalogue.search(query, tag=tag)
