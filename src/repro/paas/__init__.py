"""A hosted Platform-as-a-Service for computational web services.

The paper's stated future work: "building a hosted Platform-as-a-Service
(PaaS) for development, sharing and integration of computational web
services based on the described software platform" (§6). This subpackage
implements that layer on top of everything else in the repository:

- multi-tenant hosting: each tenant gets an isolated service container,
  created and managed through the platform's own REST interface;
- configuration-only deployment: hosted tenants submit JSON service
  configurations (command/cluster/grid adapters — arbitrary in-process
  code is not accepted from tenants);
- quotas per tenant (service count, handler threads);
- automatic publication: every deployed service lands in the shared
  platform catalogue, tagged with its tenant;
- certificate-based tenancy: the platform CA issues each tenant an owner
  certificate at sign-up; management calls require it.
"""

from repro.paas.platform import PaasError, Platform, Tenant
from repro.paas.service import PlatformService

__all__ = ["PaasError", "Platform", "PlatformService", "Tenant"]
