"""The PaaS management interface, itself a RESTful web application.

=================  =======  ==========================================
path               method   action
=================  =======  ==========================================
/tenants           GET      list tenants
/tenants           POST     sign up: ``{"name", "owner"}`` → tenant +
                            owner certificate token
/tenants/{t}       GET      tenant details
/tenants/{t}       DELETE   delete tenant (owner only)
/tenants/{t}/services  POST deploy a JSON service config (owner only)
/tenants/{t}/services/{s}  DELETE  undeploy (owner only)
/search            GET      shared catalogue search (?q=&tenant=)
=================  =======  ==========================================

Management calls authenticate with the tenant's owner certificate (the
``X-Client-Certificate`` header issued at sign-up).
"""

from __future__ import annotations

from repro.http.app import RestApp
from repro.http.messages import HttpError, Request, Response
from repro.http.server import RestServer
from repro.paas.platform import PaasError, Platform, Quota
from repro.security.errors import AuthenticationError
from repro.security.middleware import CERTIFICATE_HEADER
from repro.security.pki import Certificate


class PlatformService:
    """Wraps a :class:`Platform` in a REST application."""

    def __init__(self, platform: Platform | None = None):
        self.platform = platform or Platform()
        self.app = RestApp("paas")
        self.app.route("GET", "/tenants", self._list_tenants)
        self.app.route("POST", "/tenants", self._create_tenant)
        self.app.route("GET", "/tenants/{tenant}", self._get_tenant)
        self.app.route("DELETE", "/tenants/{tenant}", self._delete_tenant)
        self.app.route("POST", "/tenants/{tenant}/services", self._deploy)
        self.app.route("DELETE", "/tenants/{tenant}/services/{service}", self._undeploy)
        self.app.route("GET", "/search", self._search)

    def bind_local(self, authority: str = "paas") -> str:
        return self.platform.registry.bind_local(authority, self.app)

    def serve(self, host: str = "127.0.0.1", port: int = 0, **server_options: object) -> RestServer:
        return RestServer(self.app, host=host, port=port, **server_options).start()

    # ----------------------------------------------------------- internals

    def _caller_dn(self, request: Request) -> str:
        token = request.headers.get(CERTIFICATE_HEADER)
        if not token:
            raise HttpError(401, "management calls need an owner certificate")
        try:
            return self.platform.ca.verify(Certificate.from_token(token))
        except AuthenticationError as exc:
            raise HttpError(401, str(exc)) from exc

    # ------------------------------------------------------------- handlers

    def _list_tenants(self, request: Request) -> Response:
        return Response.json([tenant.to_json() for tenant in self.platform.tenants])

    def _create_tenant(self, request: Request) -> Response:
        body = request.json
        name, owner = body.get("name", ""), body.get("owner", "")
        quota_spec = body.get("quota", {})
        try:
            quota = Quota(
                max_services=int(quota_spec.get("max_services", 10)),
                handlers=int(quota_spec.get("handlers", 2)),
            )
            tenant = self.platform.create_tenant(name, owner, quota=quota)
        except (PaasError, ValueError) as exc:
            raise HttpError(getattr(exc, "http_status", 400), str(exc)) from exc
        document = tenant.to_json()
        # the sign-up response is the only place the certificate appears
        document["certificate"] = tenant.certificate.to_token()
        return Response.created(f"/tenants/{tenant.name}", document)

    def _get_tenant(self, request: Request, tenant: str) -> Response:
        try:
            return Response.json(self.platform.tenant(tenant).to_json())
        except PaasError as exc:
            raise HttpError(404, str(exc)) from exc

    def _delete_tenant(self, request: Request, tenant: str) -> Response:
        caller = self._caller_dn(request)
        try:
            self.platform.delete_tenant(tenant, caller)
        except PaasError as exc:
            raise HttpError(exc.http_status, str(exc)) from exc
        return Response.no_content()

    def _deploy(self, request: Request, tenant: str) -> Response:
        caller = self._caller_dn(request)
        try:
            uri = self.platform.deploy_service(tenant, request.json, caller)
        except PaasError as exc:
            raise HttpError(exc.http_status, str(exc)) from exc
        except Exception as exc:  # ConfigurationError and friends
            raise HttpError(422, str(exc)) from exc
        return Response.created(uri, {"uri": uri})

    def _undeploy(self, request: Request, tenant: str, service: str) -> Response:
        caller = self._caller_dn(request)
        try:
            self.platform.undeploy_service(tenant, service, caller)
        except PaasError as exc:
            raise HttpError(exc.http_status, str(exc)) from exc
        except Exception as exc:
            raise HttpError(404, str(exc)) from exc
        return Response.no_content()

    def _search(self, request: Request) -> Response:
        hits = self.platform.search(
            request.query.get("q", ""), tenant_name=request.query.get("tenant") or None
        )
        return Response.json({"hits": hits})
