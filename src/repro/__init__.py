"""MathCloud reproduction.

A pure-Python reproduction of the MathCloud platform (Afanasiev,
Sukhoroslov, Voloshinov, 2013): publication and reuse of scientific
applications as RESTful web services with a unified REST API, a service
container with pluggable adapters, a service catalogue, a workflow
management system and a lightweight security mechanism.

The most commonly used entry points are re-exported here (lazily, so that
subpackages stay importable in isolation)::

    from repro import ServiceContainer, ServiceProxy, Workflow

See ``DESIGN.md`` at the repository root for the full system inventory.
"""

from importlib import import_module
from typing import Any

__version__ = "1.0.0"

#: Re-exported name → defining module.
_EXPORTS = {
    "JobHandle": "repro.client.client",
    "JobState": "repro.core.jobs",
    "Parameter": "repro.core.description",
    "ServiceContainer": "repro.container.container",
    "ServiceDescription": "repro.core.description",
    "ServiceProxy": "repro.client.client",
    "TransportRegistry": "repro.http.registry",
    "Workflow": "repro.workflow.model",
}

__all__ = [*sorted(_EXPORTS), "__version__"]


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    return getattr(import_module(module_name), name)
