"""Client-side transports.

Every REST interaction in the platform goes through the :class:`Transport`
interface, so callers (clients, the workflow engine, the catalogue pinger)
are agnostic about whether a service lives behind a real TCP socket
(:class:`HttpTransport`) or in the same process
(:class:`LocalTransport`). The two are semantically identical: both carry
the full request/response model including headers, status codes and bodies.
"""

from __future__ import annotations

import http.client
from typing import Mapping
from urllib.parse import urlsplit

from repro.http.app import RestApp
from repro.http.messages import Headers, Request, Response


class TransportError(Exception):
    """A connection-level failure (service unreachable, socket error)."""


class Transport:
    """Abstract request/response channel to one or more authorities."""

    #: URI schemes this transport can serve.
    schemes: tuple[str, ...] = ()

    def request(
        self,
        method: str,
        url: str,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
    ) -> Response:
        """Send one request to an absolute ``url`` and return the response.

        Raises :class:`TransportError` when the authority cannot be reached;
        HTTP-level errors (4xx/5xx) are returned as normal responses.
        """
        raise NotImplementedError

    def handles(self, url: str) -> bool:
        """Whether this transport can carry requests for ``url``."""
        parts = urlsplit(url)
        return parts.scheme in self.schemes


class HttpTransport(Transport):
    """Carries requests over TCP using the standard library HTTP client.

    A new connection per request keeps the transport thread-safe; the
    platform's traffic is job-grained, so connection reuse is not worth the
    locking it would need.
    """

    schemes = ("http",)

    def __init__(self, timeout: float = 30.0):
        self.timeout = timeout

    def request(
        self,
        method: str,
        url: str,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
    ) -> Response:
        parts = urlsplit(url)
        if parts.scheme != "http":
            raise TransportError(f"HttpTransport cannot handle {url!r}")
        target = parts.path or "/"
        if parts.query:
            target += "?" + parts.query
        connection = http.client.HTTPConnection(parts.hostname, parts.port or 80, timeout=self.timeout)
        try:
            connection.request(method.upper(), target, body=body or None, headers=dict(headers or {}))
            raw = connection.getresponse()
            response = Response(status=raw.status, body=raw.read())
            for name, value in raw.getheaders():
                response.headers.add(name, value)
            return response
        except (OSError, http.client.HTTPException) as exc:
            raise TransportError(f"{method} {url} failed: {exc}") from exc
        finally:
            connection.close()


class LocalTransport(Transport):
    """Carries requests to in-process applications under ``local://`` URIs.

    Each application is registered under an authority name; a request for
    ``local://authority/path`` is dispatched synchronously into the matching
    :class:`RestApp`. This gives tests and single-process deployments the
    exact REST semantics of the socket path at function-call cost.
    """

    schemes = ("local",)

    def __init__(self) -> None:
        self._apps: dict[str, RestApp] = {}

    def bind(self, authority: str, app: RestApp) -> str:
        """Expose ``app`` as ``local://authority``; returns that base URI."""
        if authority in self._apps:
            raise ValueError(f"authority already bound: {authority!r}")
        self._apps[authority] = app
        return f"local://{authority}"

    def unbind(self, authority: str) -> None:
        self._apps.pop(authority, None)

    def request(
        self,
        method: str,
        url: str,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
    ) -> Response:
        parts = urlsplit(url)
        if parts.scheme != "local":
            raise TransportError(f"LocalTransport cannot handle {url!r}")
        app = self._apps.get(parts.netloc)
        if app is None:
            raise TransportError(f"no local application bound at {parts.netloc!r}")
        target = parts.path or "/"
        if parts.query:
            target += "?" + parts.query
        request = Request.from_target(method, target, headers=Headers(dict(headers or {})), body=body)
        return app.handle(request)

    @property
    def authorities(self) -> list[str]:
        return sorted(self._apps)
