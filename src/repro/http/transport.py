"""Client-side transports.

Every REST interaction in the platform goes through the :class:`Transport`
interface, so callers (clients, the workflow engine, the catalogue pinger,
the gateway) are agnostic about whether a service lives behind a real TCP
socket (:class:`HttpTransport`) or in the same process
(:class:`LocalTransport`). The two are semantically identical: both carry
the full request/response model including headers, status codes and bodies.
"""

from __future__ import annotations

import http.client
import threading
from collections import deque
from typing import Mapping
from urllib.parse import urlsplit

from repro.http.app import RestApp
from repro.http.messages import Headers, Request, Response


class TransportError(Exception):
    """A connection-level failure (service unreachable, socket error)."""


class ConnectError(TransportError):
    """The connection could not be established at all.

    No request bytes reached the server, so the request was provably not
    processed — callers (the gateway's retry path) may replay it on another
    authority without risking duplicate side effects. Errors raised after
    the connection was up (send or receive failures) stay plain
    :class:`TransportError`, because the server may have processed the
    request before the socket died.
    """


class Transport:
    """Abstract request/response channel to one or more authorities."""

    #: URI schemes this transport can serve.
    schemes: tuple[str, ...] = ()

    def request(
        self,
        method: str,
        url: str,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
    ) -> Response:
        """Send one request to an absolute ``url`` and return the response.

        Raises :class:`TransportError` when the authority cannot be reached;
        HTTP-level errors (4xx/5xx) are returned as normal responses.
        """
        raise NotImplementedError

    def handles(self, url: str) -> bool:
        """Whether this transport can carry requests for ``url``."""
        parts = urlsplit(url)
        return parts.scheme in self.schemes


#: Socket errors that mean a *reused* keep-alive connection went stale
#: (the server closed it between requests). Candidates for one replay on
#: a fresh connection, subject to :func:`_replay_safe`.
_STALE_ERRORS = (
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    http.client.ResponseNotReady,
)

#: Methods that may always be replayed after a stale-socket failure.
_REPLAYABLE_METHODS = frozenset({"GET", "HEAD", "PUT", "DELETE", "OPTIONS", "TRACE"})


def _replay_safe(method: str, headers: "Mapping[str, str] | None", exc: Exception) -> bool:
    """Whether a stale-socket failure may be replayed on a fresh connection.

    ``CannotSendRequest`` is raised before any bytes go out, so the server
    provably never saw the request. Any later failure (reset during send or
    ``getresponse``) is ambiguous — the server may have processed the
    request and died before delivering the response — so only idempotent
    methods, or requests the caller explicitly marked replayable with an
    ``Idempotency-Key``, are retried transparently. Everything else
    surfaces as :class:`TransportError` for the caller to arbitrate.
    """
    if isinstance(exc, http.client.CannotSendRequest):
        return True
    if method.upper() in _REPLAYABLE_METHODS:
        return True
    return any(name.lower() == "idempotency-key" for name in (headers or {}))


class HttpTransport(Transport):
    """Carries requests over TCP using the standard library HTTP client.

    Connections are kept alive and pooled per ``(host, port)``: sequential
    requests to the same authority reuse one socket instead of paying a TCP
    handshake each (the gateway's health probes and retries hit the same
    replicas continuously). Each pooled connection is used by one thread at
    a time; the pool itself is lock-protected, so the transport stays
    shareable across threads. A request sent on a reused socket that turns
    out to be stale is transparently replayed once on a fresh connection —
    but only when the replay provably cannot duplicate work (idempotent
    method, ``Idempotency-Key`` present, or the failure preceded the send).
    """

    schemes = ("http",)

    def __init__(self, timeout: float = 30.0, keep_alive: bool = True, pool_size: int = 8):
        self.timeout = timeout
        self.keep_alive = keep_alive
        #: Max idle connections kept per (host, port).
        self.pool_size = pool_size
        self._lock = threading.Lock()
        self._pool: dict[tuple[str, int], deque[http.client.HTTPConnection]] = {}

    def request(
        self,
        method: str,
        url: str,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
    ) -> Response:
        parts = urlsplit(url)
        if parts.scheme != "http":
            raise TransportError(f"HttpTransport cannot handle {url!r}")
        target = parts.path or "/"
        if parts.query:
            target += "?" + parts.query
        authority = (parts.hostname or "", parts.port or 80)
        connection, reused = self._acquire(authority)
        try:
            return self._send(connection, authority, method, target, headers, body)
        except _STALE_ERRORS as exc:
            connection.close()
            if not reused or not _replay_safe(method, headers, exc):
                raise TransportError(f"{method} {url} failed: {exc}") from exc
            # the pooled socket died between requests; replay on a fresh one
            connection, _ = self._acquire(authority, fresh=True)
            try:
                return self._send(connection, authority, method, target, headers, body)
            except (OSError, http.client.HTTPException) as retry_exc:
                connection.close()
                raise TransportError(f"{method} {url} failed: {retry_exc}") from retry_exc
        except ConnectError:
            raise
        except (OSError, http.client.HTTPException) as exc:
            connection.close()
            raise TransportError(f"{method} {url} failed: {exc}") from exc

    def close(self) -> None:
        """Drop every idle pooled connection."""
        with self._lock:
            pools, self._pool = self._pool, {}
        for idle in pools.values():
            for connection in idle:
                connection.close()

    # ----------------------------------------------------------- internals

    def _acquire(
        self, authority: tuple[str, int], fresh: bool = False
    ) -> tuple[http.client.HTTPConnection, bool]:
        """A connection for ``authority``: pooled when available, else new.

        Returns ``(connection, reused)``; a new connection is connected
        eagerly so establishment failures surface as :class:`ConnectError`.
        """
        if self.keep_alive and not fresh:
            with self._lock:
                idle = self._pool.get(authority)
                if idle:
                    return idle.pop(), True
        connection = http.client.HTTPConnection(authority[0], authority[1], timeout=self.timeout)
        try:
            connection.connect()
        except OSError as exc:
            connection.close()
            raise ConnectError(f"cannot connect to {authority[0]}:{authority[1]}: {exc}") from exc
        return connection, False

    def _release(self, authority: tuple[str, int], connection: http.client.HTTPConnection) -> None:
        if not self.keep_alive:
            connection.close()
            return
        with self._lock:
            idle = self._pool.setdefault(authority, deque())
            if len(idle) < self.pool_size:
                idle.append(connection)
                return
        connection.close()

    def _send(
        self,
        connection: http.client.HTTPConnection,
        authority: tuple[str, int],
        method: str,
        target: str,
        headers: Mapping[str, str] | None,
        body: bytes,
    ) -> Response:
        connection.request(method.upper(), target, body=body or None, headers=dict(headers or {}))
        raw = connection.getresponse()
        response = Response(status=raw.status, body=raw.read())
        for name, value in raw.getheaders():
            response.headers.add(name, value)
        if raw.will_close:
            connection.close()
        else:
            self._release(authority, connection)
        return response


class LocalTransport(Transport):
    """Carries requests to in-process applications under ``local://`` URIs.

    Each application is registered under an authority name; a request for
    ``local://authority/path`` is dispatched synchronously into the matching
    :class:`RestApp`. This gives tests and single-process deployments the
    exact REST semantics of the socket path at function-call cost.
    """

    schemes = ("local",)

    def __init__(self) -> None:
        self._apps: dict[str, RestApp] = {}

    def bind(self, authority: str, app: RestApp) -> str:
        """Expose ``app`` as ``local://authority``; returns that base URI."""
        if authority in self._apps:
            raise ValueError(f"authority already bound: {authority!r}")
        self._apps[authority] = app
        return f"local://{authority}"

    def unbind(self, authority: str) -> None:
        self._apps.pop(authority, None)

    def request(
        self,
        method: str,
        url: str,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
    ) -> Response:
        parts = urlsplit(url)
        if parts.scheme != "local":
            raise TransportError(f"LocalTransport cannot handle {url!r}")
        app = self._apps.get(parts.netloc)
        if app is None:
            raise ConnectError(f"no local application bound at {parts.netloc!r}")
        target = parts.path or "/"
        if parts.query:
            target += "?" + parts.query
        request = Request.from_target(method, target, headers=Headers(dict(headers or {})), body=body)
        # local callers receive a complete Response object, so a streaming
        # body is collapsed here (the socket cores are where streaming pays)
        return app.handle(request).materialize()

    @property
    def authorities(self) -> list[str]:
        return sorted(self._apps)
