"""HTTP message model: requests, responses and protocol errors.

The model is deliberately small: exactly what a RESTful computational
service needs (JSON bodies, a few headers, byte-range requests for file
resources) and nothing more.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping
from urllib.parse import parse_qsl, quote, urlsplit

#: Reason phrases for the status codes the platform actually uses.
REASON_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    206: "Partial Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    406: "Not Acceptable",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    416: "Range Not Satisfiable",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Largest request body any server accepts unless configured otherwise.
#: Requests above it are answered ``413 Payload Too Large`` instead of
#: being buffered into memory.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Largest request-line-plus-headers block the incremental parser buffers.
DEFAULT_MAX_HEADER_BYTES = 64 * 1024

#: Bodies above this are spilled to an anonymous temp file instead of
#: being buffered in memory, so a large upload costs O(spill threshold)
#: RSS rather than O(body) on both server cores.
DEFAULT_BODY_SPILL_BYTES = 1024 * 1024


def reason_phrase(status: int) -> str:
    """Return the standard reason phrase for ``status`` (or ``"Unknown"``)."""
    return REASON_PHRASES.get(status, "Unknown")


class Headers:
    """A case-insensitive multi-value HTTP header collection.

    Lookup is case-insensitive; the originally supplied casing is kept for
    serialization. Multiple values per name are supported (``add``), though
    ``get`` returns the first value, which is what REST handlers want.
    """

    def __init__(self, items: Mapping[str, str] | None = None):
        self._items: list[tuple[str, str]] = []
        # lowercased-name → values index; every lookup is one dict hit
        # instead of a scan over the item list (which is kept for
        # serialization order and original casing)
        self._index: dict[str, list[str]] = {}
        if items:
            for name, value in items.items():
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header, keeping any existing values for ``name``."""
        value = str(value)
        self._items.append((name, value))
        self._index.setdefault(name.lower(), []).append(value)

    def set(self, name: str, value: str) -> None:
        """Replace all values of ``name`` with a single ``value``."""
        self.remove(name)
        self.add(name, value)

    def remove(self, name: str) -> None:
        """Drop every value of ``name`` (no error if absent)."""
        lowered = name.lower()
        if self._index.pop(lowered, None) is not None:
            self._items = [(n, v) for n, v in self._items if n.lower() != lowered]

    def get(self, name: str, default: str | None = None) -> str | None:
        """Return the first value of ``name``, or ``default``."""
        values = self._index.get(name.lower())
        return values[0] if values else default

    def get_all(self, name: str) -> list[str]:
        """Return every value of ``name`` in insertion order."""
        return list(self._index.get(name.lower(), ()))

    def items(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._index

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"Headers({dict(self._items)!r})"

    def copy(self) -> "Headers":
        clone = Headers()
        clone._items = list(self._items)
        clone._index = {name: list(values) for name, values in self._index.items()}
        return clone


class HttpError(Exception):
    """An error with an HTTP status, rendered as a JSON error body.

    Raise from any handler (or middleware) to produce a well-formed error
    response; the application kernel converts it.
    """

    #: Optional ``Retry-After`` hint (seconds); subclasses may override
    #: at class level, and the constructor only shadows it when given.
    retry_after: float | None = None

    def __init__(self, status: int, message: str, details: Any = None,
                 retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.details = details
        if retry_after is not None:
            self.retry_after = retry_after

    def to_response(self) -> "Response":
        body: dict[str, Any] = {"error": self.message, "status": self.status}
        if self.details is not None:
            body["details"] = self.details
        response = Response.json(body, status=self.status)
        if self.retry_after is not None:
            response.headers.set("Retry-After", f"{self.retry_after:g}")
        return response


class BodySpool:
    """A request body spilled to an anonymous temp file.

    Created by the parser for bodies above the spill threshold; deleted
    by the OS when the last handle drops (``TemporaryFile`` is unlinked
    at creation), so no cleanup protocol is needed.
    """

    def __init__(self) -> None:
        self._file = tempfile.TemporaryFile()
        self.size = 0

    def write(self, data: bytes) -> None:
        self._file.write(data)
        self.size += len(data)

    def read_all(self) -> bytes:
        self._file.seek(0)
        return self._file.read()

    def chunks(self, chunk_size: int = 65536) -> Iterator[bytes]:
        self._file.seek(0)
        while True:
            piece = self._file.read(chunk_size)
            if not piece:
                return
            yield piece

    def close(self) -> None:
        self._file.close()


@dataclass
class Request:
    """An HTTP request as seen by handlers.

    ``path`` is the decoded path without the query string; ``query`` holds
    decoded query parameters (first value wins on duplicates).

    Small bodies live in ``body``; a body above the server's spill
    threshold lives in ``spool`` instead (``body`` is then empty).
    Handlers that can stream should iterate :meth:`body_chunks`; handlers
    that need the whole buffer use :attr:`body_bytes`, which works either
    way.
    """

    method: str
    path: str
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    query: dict[str, str] = field(default_factory=dict)
    #: Attributes attached by middleware (e.g. the authenticated identity).
    context: dict[str, Any] = field(default_factory=dict)
    #: Temp-file-backed body for spilled requests (``None`` ⇒ in ``body``).
    spool: "BodySpool | None" = None

    @classmethod
    def from_target(
        cls,
        method: str,
        target: str,
        headers: Headers | Mapping[str, str] | None = None,
        body: bytes = b"",
        spool: "BodySpool | None" = None,
    ) -> "Request":
        """Build a request from a request-target (path plus query string)."""
        parts = urlsplit(target)
        query = dict(parse_qsl(parts.query, keep_blank_values=True))
        if headers is None:
            headers = Headers()
        elif not isinstance(headers, Headers):
            headers = Headers(headers)
        return cls(
            method=method.upper(),
            path=parts.path or "/",
            headers=headers,
            body=body,
            query=query,
            spool=spool,
        )

    @property
    def body_size(self) -> int:
        """Total body length, wherever the bytes live."""
        return self.spool.size if self.spool is not None else len(self.body)

    @property
    def body_bytes(self) -> bytes:
        """The whole body as one buffer (reads the spool when spilled)."""
        return self.spool.read_all() if self.spool is not None else self.body

    def body_chunks(self, chunk_size: int = 65536) -> Iterator[bytes]:
        """Iterate the body without materializing a spilled one."""
        if self.spool is not None:
            return self.spool.chunks(chunk_size)
        return iter((self.body,)) if self.body else iter(())

    @property
    def text(self) -> str:
        """The request body decoded as UTF-8."""
        return self.body_bytes.decode("utf-8")

    @property
    def json(self) -> Any:
        """The request body parsed as JSON.

        Raises :class:`HttpError` (400) on malformed or empty bodies so
        handlers can use it directly without their own error handling.
        """
        data = self.body_bytes
        if not data:
            raise HttpError(400, "request body is empty, expected JSON")
        try:
            return json.loads(data)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"malformed JSON in request body: {exc}") from exc

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "") or ""

    def byte_range(self, size: int) -> tuple[int, int] | None:
        """Interpret a ``Range: bytes=a-b`` header against a body of ``size``.

        Returns an inclusive ``(start, end)`` pair, ``None`` when no Range
        header is present, and raises :class:`HttpError` (416) for
        unsatisfiable or malformed ranges. Suffix ranges (``bytes=-n``) are
        supported; multi-range requests are not (they are rejected).
        """
        raw = self.headers.get("Range")
        if raw is None:
            return None
        unit, _, spec = raw.partition("=")
        if unit.strip().lower() != "bytes" or "," in spec:
            raise HttpError(416, f"unsupported Range header: {raw!r}")
        start_text, dash, end_text = spec.strip().partition("-")
        if not dash:
            raise HttpError(416, f"malformed Range header: {raw!r}")
        try:
            if not start_text:  # suffix range: last N bytes
                suffix = int(end_text)
                if suffix <= 0:
                    raise ValueError
                start, end = max(0, size - suffix), size - 1
            else:
                start = int(start_text)
                end = int(end_text) if end_text else size - 1
        except ValueError as exc:
            raise HttpError(416, f"malformed Range header: {raw!r}") from exc
        if start >= size or end < start:
            raise HttpError(416, f"range {raw!r} not satisfiable for size {size}")
        return start, min(end, size - 1)


@dataclass
class Response:
    """An HTTP response produced by handlers.

    A *streaming* response carries an iterator of body chunks in
    ``stream`` (with its exact total length in ``content_length``) instead
    of a ``body`` buffer; servers write the chunks as the socket drains,
    so a multi-GB blob GET never holds the payload in memory. Everything
    else — status, headers, HEAD semantics — is identical.
    """

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    #: Chunk iterator for streaming responses (``None`` ⇒ ``body`` holds it).
    stream: "Iterator[bytes] | None" = None
    #: Exact byte length of ``stream`` (required when streaming: the
    #: platform speaks Content-Length framing, not chunked encoding).
    content_length: "int | None" = None

    @classmethod
    def json(
        cls,
        data: Any,
        status: int = 200,
        headers: Mapping[str, str] | None = None,
    ) -> "Response":
        """A JSON response; ``data`` is serialized with ``json.dumps``."""
        response = cls(
            status=status,
            body=json.dumps(data, ensure_ascii=False).encode("utf-8"),
        )
        response.headers.set("Content-Type", JSON_CONTENT_TYPE)
        for name, value in (headers or {}).items():
            response.headers.set(name, value)
        return response

    @classmethod
    def text(cls, text: str, status: int = 200, content_type: str = "text/plain; charset=utf-8") -> "Response":
        response = cls(status=status, body=text.encode("utf-8"))
        response.headers.set("Content-Type", content_type)
        return response

    @classmethod
    def html(cls, markup: str, status: int = 200) -> "Response":
        return cls.text(markup, status=status, content_type="text/html; charset=utf-8")

    @classmethod
    def no_content(cls) -> "Response":
        return cls(status=204)

    @classmethod
    def created(cls, location: str, data: Any) -> "Response":
        """A 201 response advertising the new resource's URI."""
        response = cls.json(data, status=201)
        response.headers.set("Location", quote(location, safe="/:?=&%"))
        return response

    @classmethod
    def streamed(
        cls,
        chunks: Iterator[bytes],
        length: int,
        status: int = 200,
        content_type: str = "application/octet-stream",
    ) -> "Response":
        """A streaming response: ``length`` bytes drawn from ``chunks``."""
        response = cls(status=status, stream=iter(chunks), content_length=length)
        response.headers.set("Content-Type", content_type)
        return response

    def materialize(self) -> "Response":
        """Collapse a streaming response into a buffered one, in place.

        Used by transports that hand the caller a complete response object
        (the in-process local transport, the threaded test client).
        """
        if self.stream is not None:
            self.body = b"".join(self.stream)
            self.stream = None
            self.content_length = None
        return self

    @property
    def text_body(self) -> str:
        return self.body.decode("utf-8")

    @property
    def json_body(self) -> Any:
        return json.loads(self.body) if self.body else None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ProtocolError(Exception):
    """A malformed or unacceptable request detected while parsing bytes.

    Carries the HTTP status the server should answer with before closing
    the connection (400 for syntax, 413 for an oversized body, 501 for
    transfer encodings the platform does not speak).
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class RequestParser:
    """Incremental, feed-based HTTP/1.1 request parser.

    The event-loop server owns one parser per connection and feeds it
    whatever ``recv`` returned — a byte, a header fragment, several
    pipelined requests at once. :meth:`feed` consumes the bytes and
    returns every request completed so far as ``(request, close_after)``
    pairs, preserving pipeline order; incomplete input is buffered until
    the next feed. The parser never blocks and never reads a socket.

    ``close_after`` captures HTTP/1.1 persistence semantics: ``True`` for
    ``Connection: close`` and for HTTP/1.0 requests without an explicit
    ``keep-alive``.

    Malformed input raises :class:`ProtocolError`; the parser is then
    poisoned (a framing error leaves the byte stream unrecoverable) and
    the connection must be closed after the error response.
    """

    def __init__(
        self,
        max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        spill_threshold: int = DEFAULT_BODY_SPILL_BYTES,
    ):
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        #: Bodies longer than this go to a :class:`BodySpool` instead of
        #: memory; ``0`` spills everything, a negative value never spills.
        self.spill_threshold = spill_threshold
        self._buffer = bytearray()
        self._state = "headers"
        # fields of the request whose body is still arriving
        self._method = ""
        self._target = ""
        self._headers: Headers | None = None
        self._length = 0
        self._close_after = False
        self._spool: "BodySpool | None" = None

    @property
    def buffered(self) -> int:
        """How many unconsumed bytes the parser is holding."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[tuple[Request, bool]]:
        """Consume ``data``; return every request it completed, in order."""
        if self._state == "error":
            raise ProtocolError(400, "parser already failed; connection must close")
        self._buffer.extend(data)
        completed: list[tuple[Request, bool]] = []
        try:
            while True:
                if self._state == "headers":
                    if not self._parse_head():
                        break
                if self._state == "body":
                    if self._spool is not None:
                        # spill what arrived; the buffer never grows past
                        # one feed's worth for a spilled body
                        want = self._length - self._spool.size
                        take = min(want, len(self._buffer))
                        if take:
                            self._spool.write(bytes(self._buffer[:take]))
                            del self._buffer[:take]
                        if self._spool.size < self._length:
                            break
                        request = Request.from_target(
                            self._method, self._target, headers=self._headers,
                            spool=self._spool,
                        )
                        self._spool = None
                    else:
                        if len(self._buffer) < self._length:
                            break
                        body = bytes(self._buffer[: self._length])
                        del self._buffer[: self._length]
                        request = Request.from_target(
                            self._method, self._target, headers=self._headers, body=body
                        )
                    completed.append((request, self._close_after))
                    self._state = "headers"
        except ProtocolError:
            self._state = "error"
            raise
        return completed

    def _parse_head(self) -> bool:
        """Parse one request-line-plus-headers block; False if incomplete."""
        end = self._buffer.find(b"\r\n\r\n")
        if end < 0:
            if len(self._buffer) > self.max_header_bytes:
                raise ProtocolError(400, "request header block too large")
            return False
        head = bytes(self._buffer[:end])
        del self._buffer[: end + 4]
        lines = head.split(b"\r\n")
        # tolerate leading blank lines between pipelined requests (RFC 9112 §2.2)
        while lines and not lines[0].strip():
            lines.pop(0)
        if not lines:
            raise ProtocolError(400, "empty request")
        try:
            request_line = lines[0].decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 never fails
            raise ProtocolError(400, "undecodable request line") from exc
        parts = request_line.split()
        if len(parts) != 3:
            raise ProtocolError(400, f"malformed request line: {request_line!r}")
        method, target, version = parts
        if not version.startswith("HTTP/1."):
            raise ProtocolError(400, f"unsupported protocol version {version!r}")
        headers = Headers()
        for raw in lines[1:]:
            line = raw.decode("latin-1")
            name, separator, value = line.partition(":")
            if not separator or not name or name != name.strip() or " " in name:
                raise ProtocolError(400, f"malformed header line: {line!r}")
            headers.add(name, value.strip())
        transfer_encoding = (headers.get("Transfer-Encoding") or "").lower()
        if transfer_encoding and transfer_encoding != "identity":
            raise ProtocolError(
                501, f"transfer encoding {transfer_encoding!r} is not supported"
            )
        raw_length = headers.get("Content-Length", "0") or "0"
        try:
            length = int(raw_length)
            if length < 0:
                raise ValueError
        except ValueError as exc:
            raise ProtocolError(400, f"invalid Content-Length {raw_length!r}") from exc
        if length > self.max_body_bytes:
            raise ProtocolError(
                413,
                f"request body of {length} bytes exceeds the {self.max_body_bytes}-byte limit",
            )
        connection = (headers.get("Connection") or "").lower()
        tokens = {token.strip() for token in connection.split(",")}
        if version == "HTTP/1.0":
            close_after = "keep-alive" not in tokens
        else:
            close_after = "close" in tokens
        self._method = method
        self._target = target
        self._headers = headers
        self._length = length
        self._close_after = close_after
        self._spool = (
            BodySpool()
            if self.spill_threshold >= 0 and length > self.spill_threshold and length > 0
            else None
        )
        self._state = "body"
        return True


def serialize_response(
    response: Response,
    head: bool = False,
    close: bool = False,
    server: str = "MathCloud/1.0",
) -> bytes:
    """Render ``response`` as HTTP/1.1 wire bytes in a single buffer.

    One buffer means one ``send`` for small responses — the event-loop
    server never exposes the header/body write boundary to Nagle or
    delayed ACKs. ``head`` omits the body while keeping GET's headers and
    ``Content-Length`` (the HEAD contract); ``close`` advertises that the
    connection will not be reused.

    For a *streaming* response this renders the head only (advertising
    ``content_length``); the caller is responsible for writing the chunk
    iterator after it.
    """
    status = response.status
    parts = [f"HTTP/1.1 {status} {reason_phrase(status)}\r\n".encode("latin-1")]
    seen = set()
    for name, value in response.headers.items():
        seen.add(name.lower())
        parts.append(f"{name}: {value}\r\n".encode("latin-1"))
    if "server" not in seen:
        parts.append(f"Server: {server}\r\n".encode("latin-1"))
    if "content-length" not in seen:
        length = (
            response.content_length
            if response.stream is not None and response.content_length is not None
            else len(response.body)
        )
        parts.append(f"Content-Length: {length}\r\n".encode("latin-1"))
    if close and "connection" not in seen:
        parts.append(b"Connection: close\r\n")
    parts.append(b"\r\n")
    if response.body and not head and response.stream is None:
        parts.append(response.body)
    return b"".join(parts)
