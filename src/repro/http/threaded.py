"""Thread-per-connection server core (the original Jetty stand-in).

One handler thread per TCP connection, built on ``http.server``. This was
the platform's only server until the event-loop core
(:mod:`repro.http.eventloop`) replaced it as the default; it stays
available behind ``RestServer(server_impl="threaded")`` for one release
as an escape hatch and as the baseline the G2 benchmark measures against.

A stack per socket caps concurrent clients in the hundreds — every idle
keep-alive connection pins a thread — which is exactly the limit the
event-loop core removes.
"""

from __future__ import annotations

import contextlib
import socket
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.http.app import RestApp
from repro.http.messages import (
    DEFAULT_BODY_SPILL_BYTES,
    DEFAULT_MAX_BODY_BYTES,
    BodySpool,
    Headers,
    HttpError,
    Request,
    reason_phrase,
)

#: Methods the unified REST API uses (Table 1 of the paper) plus PUT, which
#: the catalogue and WMS use for idempotent updates, and HEAD, which the
#: router answers via the matching GET route.
SUPPORTED_METHODS = ("GET", "HEAD", "POST", "DELETE", "PUT")


class _AppRequestHandler(BaseHTTPRequestHandler):
    """Adapts ``http.server`` parsing to the :class:`RestApp` interface.

    ``protocol_version = HTTP/1.1`` makes connections persistent by
    default: the base class keeps the socket open across requests unless
    the client asks ``Connection: close``, and every response here carries
    a ``Content-Length``, which is what persistent connections require.
    """

    protocol_version = "HTTP/1.1"
    server_version = "MathCloud/1.0"
    #: The response goes out as two writes (header block, then body) on an
    #: unbuffered socket; with Nagle on, the second write sits behind the
    #: client's delayed ACK (~40 ms on loopback) on every single response.
    disable_nagle_algorithm = True
    #: Idle keep-alive connections are dropped after this many seconds so
    #: abandoned sockets cannot pin handler threads forever. Overridden on
    #: the generated subclass from the server's ``idle_timeout``.
    timeout = 60.0
    app: RestApp  # set on the generated subclass

    def _dispatch(self) -> None:
        length = int(self.headers.get("Content-Length", 0) or 0)
        limit = getattr(self.server, "max_body_bytes", DEFAULT_MAX_BODY_BYTES)
        if length > limit:
            # refuse before buffering: the body never enters memory, and
            # the connection closes because the unread body would desync it
            self._send_app_response(
                HttpError(
                    413,
                    f"request body of {length} bytes exceeds the {limit}-byte limit",
                ).to_response()
            )
            self.close_connection = True
            return
        spill = getattr(self.server, "body_spill_bytes", DEFAULT_BODY_SPILL_BYTES)
        body, spool = b"", None
        if length and spill >= 0 and length > spill:
            # spill to disk in bounded reads: RSS stays O(read size)
            spool = BodySpool()
            remaining = length
            while remaining:
                piece = self.rfile.read(min(remaining, 65536))
                if not piece:
                    break
                spool.write(piece)
                remaining -= len(piece)
        elif length:
            body = self.rfile.read(length)
        headers = Headers()
        for name, value in self.headers.items():
            headers.add(name, value)
        request = Request.from_target(
            self.command, self.path, headers=headers, body=body, spool=spool
        )
        hook = getattr(self.server, "fault_hook", None)
        if hook is not None:
            decision = hook(request)
            if decision == "drop":
                # fault injection: sever the connection without answering —
                # the client sees exactly what a server crash mid-request
                # looks like
                self.close_connection = True
                return
            if decision == "drop-mid-write":
                response = self.app.handle(request)
                self._send_partial_then_sever(response)
                return
        self._send_app_response(self.app.handle(request))

    def _send_app_response(self, response) -> None:  # noqa: ANN001
        self.send_response_only(response.status, reason_phrase(response.status))
        seen = {name.lower() for name, _ in response.headers.items()}
        for name, value in response.headers.items():
            self.send_header(name, value)
        if "content-length" not in seen:
            length = (
                response.content_length
                if response.stream is not None and response.content_length is not None
                else len(response.body)
            )
            self.send_header("Content-Length", str(length))
        self.end_headers()
        if self.command == "HEAD":
            return
        if response.stream is not None:
            for chunk in response.stream:
                self.wfile.write(chunk)
        elif response.body:
            self.wfile.write(response.body)

    def _send_partial_then_sever(self, response) -> None:  # noqa: ANN001
        """Write the status line and half the headers, then cut the socket —
        what a server dying mid-response looks like to the client."""
        self.send_response_only(response.status, reason_phrase(response.status))
        self.wfile.flush()
        with contextlib.suppress(OSError):
            self.connection.shutdown(socket.SHUT_RDWR)
        self.close_connection = True

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request stderr logging (tests and benchmarks are chatty)."""

    def do_GET(self) -> None:
        self._dispatch()

    def do_HEAD(self) -> None:
        self._dispatch()

    def do_POST(self) -> None:
        self._dispatch()

    def do_DELETE(self) -> None:
        self._dispatch()

    def do_PUT(self) -> None:
        self._dispatch()


class _Server(ThreadingHTTPServer):
    """Bounded thread-per-connection server with a deep accept backlog.

    Counts accepted connections: with keep-alive clients many requests
    share one connection, and the keep-alive regression tests assert
    exactly that.
    """

    request_queue_size = 128
    daemon_threads = True

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self.connections_accepted = 0
        self.max_body_bytes = DEFAULT_MAX_BODY_BYTES
        self.body_spill_bytes = DEFAULT_BODY_SPILL_BYTES
        self._open_lock = threading.Lock()
        self._open_connections: set[socket.socket] = set()

    def get_request(self):  # noqa: ANN201 - socketserver signature
        request = super().get_request()
        # the accept loop is single-threaded, so a plain increment is safe
        self.connections_accepted += 1
        with self._open_lock:
            self._open_connections.add(request[0])
        return request

    def handle_error(self, request, client_address) -> None:  # noqa: ANN001
        # connection resets and broken pipes are routine — a client gave up
        # on a long-poll, or this server is being stopped and its sockets
        # severed; only genuinely unexpected errors deserve the traceback
        exception = sys.exc_info()[1]
        if isinstance(exception, (ConnectionError, TimeoutError)):
            return
        super().handle_error(request, client_address)

    def close_request(self, request) -> None:  # noqa: ANN001 - socketserver signature
        with self._open_lock:
            self._open_connections.discard(request)
        super().close_request(request)

    def close_connections(self) -> None:
        """Sever every live keep-alive connection.

        A persistent connection otherwise outlives the listener: its
        handler thread keeps answering requests after ``server_close``,
        so a "stopped" server would still serve pooled client sockets.
        """
        with self._open_lock:
            connections = list(self._open_connections)
            self._open_connections.clear()
        for connection in connections:
            with contextlib.suppress(OSError):
                connection.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                connection.close()


class ThreadedServerCore:
    """The threaded implementation behind the :class:`RestServer` facade."""

    def __init__(
        self,
        app: RestApp,
        host: str = "127.0.0.1",
        port: int = 0,
        fault_hook: "Callable[[Request], str | None] | None" = None,
        idle_timeout: float = 60.0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        body_spill_bytes: int = DEFAULT_BODY_SPILL_BYTES,
    ):
        handler = type("Handler", (_AppRequestHandler,), {"app": app, "timeout": idle_timeout})
        self._server = _Server((host, port), handler)
        self._server.daemon_threads = True
        self._server.fault_hook = fault_hook
        self._server.max_body_bytes = max_body_bytes
        self._server.body_spill_bytes = body_spill_bytes
        self.idle_timeout = idle_timeout
        self._thread: threading.Thread | None = None
        #: The threaded core drops idle sockets via the handler-level
        #: timeout but does not count them; only the event-loop core
        #: tracks this precisely.
        self.connections_timed_out = 0

    @property
    def fault_hook(self) -> "Callable[[Request], str | None] | None":
        return self._server.fault_hook

    @fault_hook.setter
    def fault_hook(self, hook: "Callable[[Request], str | None] | None") -> None:
        self._server.fault_hook = hook

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def connections_accepted(self) -> int:
        return self._server.connections_accepted

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"rest-server-{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def started(self) -> bool:
        return self._thread is not None

    def close_connections(self) -> None:
        self._server.close_connections()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.close_connections()
        self._server.server_close()
        self._thread.join(timeout=5)
        self._thread = None
