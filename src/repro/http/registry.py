"""Transport registry: resolve absolute URIs to transports.

Service URIs flow freely through the platform — catalogue entries, workflow
blocks, job representations all carry them. The registry is the single
place that decides *how* to reach a URI: ``http://`` URIs go over sockets,
``local://`` URIs go in process. A registry with an HTTP transport is the
default, so code that only ever talks to remote services needs no setup.
"""

from __future__ import annotations

from typing import Mapping

from repro.http.app import RestApp
from repro.http.messages import Response
from repro.http.transport import HttpTransport, LocalTransport, Transport, TransportError


class TransportRegistry:
    """Routes requests to the transport that owns the URI scheme."""

    def __init__(self, http_timeout: float = 30.0):
        self.local = LocalTransport()
        self.http = HttpTransport(timeout=http_timeout)
        self._extra: list[Transport] = []

    def add_transport(self, transport: Transport) -> None:
        """Register an additional transport (consulted before the built-ins)."""
        self._extra.append(transport)

    def bind_local(self, authority: str, app: RestApp) -> str:
        """Expose an in-process app; returns its ``local://`` base URI."""
        return self.local.bind(authority, app)

    def unbind_local(self, authority: str) -> None:
        self.local.unbind(authority)

    def transport_for(self, url: str) -> Transport:
        """Pick the transport owning ``url``'s scheme.

        Raises :class:`TransportError` for unknown schemes.
        """
        for transport in (*self._extra, self.local, self.http):
            if transport.handles(url):
                return transport
        raise TransportError(f"no transport for URI {url!r}")

    def request(
        self,
        method: str,
        url: str,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
    ) -> Response:
        """Send one request to an absolute ``url`` via the owning transport."""
        return self.transport_for(url).request(method, url, headers=headers, body=body)
