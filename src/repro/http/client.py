"""A small JSON-aware REST client used throughout the platform.

:class:`RestClient` layers three conveniences over a transport registry:
URL joining against a base URI, JSON encoding/decoding, and converting
HTTP-level errors (4xx/5xx) into :class:`ClientError` exceptions carrying
the server's JSON error body.
"""

from __future__ import annotations

import json
import re
import time
import uuid
from typing import Any, Mapping
from urllib.parse import quote, urlencode

from repro.http.messages import JSON_CONTENT_TYPE, Response
from repro.http.registry import TransportRegistry

#: Header marking a POST as safely replayable (gateway retries, client
#: resubmissions). Idempotent methods never need it.
IDEMPOTENCY_KEY_HEADER = "Idempotency-Key"

#: Header reporting how the platform resolved a submission against the
#: content-addressed result cache: ``hit`` (served a completed job),
#: ``coalesced`` (attached to an identical in-flight job) or ``miss``.
X_CACHE_HEADER = "X-Cache"

#: Conditional-GET headers used by polling clients (RFC 9110 §13).
ETAG_HEADER = "ETag"
IF_NONE_MATCH_HEADER = "If-None-Match"

#: Methods that may be retried without an idempotency key.
_IDEMPOTENT_METHODS = frozenset({"GET", "HEAD", "PUT", "DELETE"})


def new_idempotency_key() -> str:
    return "ik-" + uuid.uuid4().hex[:16]


def parse_retry_after(value: "str | None") -> float | None:
    """The ``Retry-After`` header as seconds (seconds form only).

    HTTP-date form and malformed values return ``None`` — the caller then
    treats the response as non-retryable rather than guessing a delay.
    """
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


class ClientError(Exception):
    """An HTTP error response received from a service."""

    def __init__(self, status: int, message: str, details: Any = None, url: str = "",
                 retry_after: float | None = None):
        super().__init__(f"{status}: {message}" + (f" ({url})" if url else ""))
        self.status = status
        self.message = message
        self.details = details
        self.url = url
        #: The response's ``Retry-After`` in seconds, when it carried one —
        #: backoff loops (the workflow engine's submit retries) honour it.
        self.retry_after = retry_after


def join_url(base: str, path: str) -> str:
    """Join ``path`` onto ``base`` without collapsing the base path.

    Unlike ``urllib.parse.urljoin``, a relative path is always appended
    below the base URI — which is what resource hierarchies need::

        >>> join_url("http://h/services/add", "jobs/1")
        'http://h/services/add/jobs/1'
    """
    if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*://", path):
        return path
    if not path:
        return base
    return base.rstrip("/") + "/" + path.lstrip("/")


class RestClient:
    """JSON request helpers over a :class:`TransportRegistry`."""

    def __init__(
        self,
        registry: TransportRegistry | None = None,
        base: str = "",
        headers: Mapping[str, str] | None = None,
        retry_after_cap: float = 5.0,
    ):
        self.registry = registry or TransportRegistry()
        self.base = base
        #: Headers attached to every request (used for credentials).
        self.default_headers: dict[str, str] = dict(headers or {})
        #: Total seconds the client may spend honouring ``Retry-After``
        #: waits on one request; ``0`` disables retrying entirely.
        self.retry_after_cap = retry_after_cap

    def with_headers(self, headers: Mapping[str, str]) -> "RestClient":
        """A copy of this client with extra default headers."""
        merged = {**self.default_headers, **headers}
        return RestClient(
            self.registry, base=self.base, headers=merged, retry_after_cap=self.retry_after_cap
        )

    def url(self, path: str, query: Mapping[str, Any] | None = None) -> str:
        absolute = join_url(self.base, path)
        if query:
            absolute += "?" + urlencode({k: str(v) for k, v in query.items()})
        return absolute

    def request_raw(
        self,
        method: str,
        path: str,
        query: Mapping[str, Any] | None = None,
        body: bytes = b"",
        headers: Mapping[str, str] | None = None,
    ) -> Response:
        """Send a request and return the raw response, whatever its status.

        ``429``/``503`` responses advertising a seconds-form ``Retry-After``
        are retried after the advertised delay — but only for requests that
        are safe to replay (idempotent methods, or POSTs carrying an
        ``Idempotency-Key``). The total time spent waiting is bounded by
        :attr:`retry_after_cap` on a monotonic deadline.
        """
        merged = {**self.default_headers, **(headers or {})}
        url = self.url(path, query)
        response = self.registry.request(method, url, headers=merged, body=body)
        if self.retry_after_cap <= 0 or response.status not in (429, 503):
            return response
        if method.upper() not in _IDEMPOTENT_METHODS and IDEMPOTENCY_KEY_HEADER not in merged:
            return response
        deadline = time.monotonic() + self.retry_after_cap
        while response.status in (429, 503):
            delay = parse_retry_after(response.headers.get("Retry-After"))
            if delay is None:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0 or delay > remaining:
                # retrying before the server said it would be ready just
                # wastes the attempt — stop rather than truncate the wait
                break
            time.sleep(delay)
            response = self.registry.request(method, url, headers=merged, body=body)
        return response

    def request_json(
        self,
        method: str,
        path: str,
        query: Mapping[str, Any] | None = None,
        payload: Any = None,
        headers: Mapping[str, str] | None = None,
    ) -> Any:
        """Send a JSON request; return the parsed JSON body.

        Raises :class:`ClientError` for 4xx/5xx responses, extracting the
        service's JSON error envelope when present.
        """
        body = b""
        merged = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            merged.setdefault("Content-Type", JSON_CONTENT_TYPE)
        response = self.request_raw(method, path, query=query, body=body, headers=merged)
        return self._decode(response, self.url(path, query))

    def get(self, path: str = "", query: Mapping[str, Any] | None = None) -> Any:
        return self.request_json("GET", path, query=query)

    def post(self, path: str = "", payload: Any = None, query: Mapping[str, Any] | None = None) -> Any:
        return self.request_json("POST", path, query=query, payload=payload)

    def put(self, path: str = "", payload: Any = None) -> Any:
        return self.request_json("PUT", path, payload=payload)

    def delete(self, path: str = "") -> Any:
        return self.request_json("DELETE", path)

    def get_conditional(
        self,
        path: str = "",
        etag: "str | None" = None,
        query: Mapping[str, Any] | None = None,
    ) -> "tuple[Any, str | None, bool]":
        """A conditional JSON GET: ``(body, etag, not_modified)``.

        With ``etag`` the request carries ``If-None-Match``; a ``304``
        answer returns ``(None, etag, True)`` and the caller keeps its
        cached representation. Poll loops use this to stop re-shipping
        identical job documents on every tick.
        """
        headers: dict[str, str] = {}
        if etag:
            headers[IF_NONE_MATCH_HEADER] = etag
        response = self.request_raw("GET", path, query=query, headers=headers)
        fresh_etag = response.headers.get(ETAG_HEADER) or etag
        if response.status == 304:
            return None, fresh_etag, True
        return self._decode(response, self.url(path, query)), fresh_etag, False

    def get_bytes(
        self,
        path: str,
        headers: Mapping[str, str] | None = None,
        max_bytes: "int | None" = None,
    ) -> bytes:
        """Fetch a binary resource (file contents); raises on error statuses.

        ``max_bytes`` caps the accepted payload: a longer body raises
        :class:`ClientError` (413) instead of handing the caller an
        arbitrarily large buffer — the guard behind bounded file-reference
        resolution.
        """
        response = self.request_raw("GET", path, headers=headers)
        if not response.ok and response.status != 206:
            self._decode(response, self.url(path))  # raises ClientError
        if max_bytes is not None and len(response.body) > max_bytes:
            raise ClientError(
                413,
                f"response body of {len(response.body)} bytes exceeds the"
                f" caller's {max_bytes}-byte limit",
                url=self.url(path),
            )
        return response.body

    @staticmethod
    def _decode(response: Response, url: str) -> Any:
        if response.status == 304:
            # Not Modified carries no body by design; conditional callers
            # (JobHandle polls) reuse their cached representation
            return None
        if response.ok:
            if not response.body:
                return None
            content_type = response.headers.get("Content-Type", "") or ""
            if "json" in content_type:
                return response.json_body
            return response.text_body
        message, details = response.text_body or "error", None
        try:
            envelope = response.json_body
            if isinstance(envelope, dict):
                message = envelope.get("error", message)
                details = envelope.get("details")
        except (ValueError, UnicodeDecodeError):
            pass
        raise ClientError(
            response.status, message, details=details, url=url,
            retry_after=parse_retry_after(response.headers.get("Retry-After")),
        )


def quote_segment(segment: str) -> str:
    """Percent-encode one path segment for safe URI embedding."""
    return quote(segment, safe="")
