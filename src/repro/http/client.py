"""A small JSON-aware REST client used throughout the platform.

:class:`RestClient` layers three conveniences over a transport registry:
URL joining against a base URI, JSON encoding/decoding, and converting
HTTP-level errors (4xx/5xx) into :class:`ClientError` exceptions carrying
the server's JSON error body.
"""

from __future__ import annotations

import json
import re
from typing import Any, Mapping
from urllib.parse import quote, urlencode

from repro.http.messages import JSON_CONTENT_TYPE, Response
from repro.http.registry import TransportRegistry


class ClientError(Exception):
    """An HTTP error response received from a service."""

    def __init__(self, status: int, message: str, details: Any = None, url: str = ""):
        super().__init__(f"{status}: {message}" + (f" ({url})" if url else ""))
        self.status = status
        self.message = message
        self.details = details
        self.url = url


def join_url(base: str, path: str) -> str:
    """Join ``path`` onto ``base`` without collapsing the base path.

    Unlike ``urllib.parse.urljoin``, a relative path is always appended
    below the base URI — which is what resource hierarchies need::

        >>> join_url("http://h/services/add", "jobs/1")
        'http://h/services/add/jobs/1'
    """
    if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*://", path):
        return path
    if not path:
        return base
    return base.rstrip("/") + "/" + path.lstrip("/")


class RestClient:
    """JSON request helpers over a :class:`TransportRegistry`."""

    def __init__(
        self,
        registry: TransportRegistry | None = None,
        base: str = "",
        headers: Mapping[str, str] | None = None,
    ):
        self.registry = registry or TransportRegistry()
        self.base = base
        #: Headers attached to every request (used for credentials).
        self.default_headers: dict[str, str] = dict(headers or {})

    def with_headers(self, headers: Mapping[str, str]) -> "RestClient":
        """A copy of this client with extra default headers."""
        merged = {**self.default_headers, **headers}
        return RestClient(self.registry, base=self.base, headers=merged)

    def url(self, path: str, query: Mapping[str, Any] | None = None) -> str:
        absolute = join_url(self.base, path)
        if query:
            absolute += "?" + urlencode({k: str(v) for k, v in query.items()})
        return absolute

    def request_raw(
        self,
        method: str,
        path: str,
        query: Mapping[str, Any] | None = None,
        body: bytes = b"",
        headers: Mapping[str, str] | None = None,
    ) -> Response:
        """Send a request and return the raw response, whatever its status."""
        merged = {**self.default_headers, **(headers or {})}
        return self.registry.request(method, self.url(path, query), headers=merged, body=body)

    def request_json(
        self,
        method: str,
        path: str,
        query: Mapping[str, Any] | None = None,
        payload: Any = None,
        headers: Mapping[str, str] | None = None,
    ) -> Any:
        """Send a JSON request; return the parsed JSON body.

        Raises :class:`ClientError` for 4xx/5xx responses, extracting the
        service's JSON error envelope when present.
        """
        body = b""
        merged = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            merged.setdefault("Content-Type", JSON_CONTENT_TYPE)
        response = self.request_raw(method, path, query=query, body=body, headers=merged)
        return self._decode(response, self.url(path, query))

    def get(self, path: str = "", query: Mapping[str, Any] | None = None) -> Any:
        return self.request_json("GET", path, query=query)

    def post(self, path: str = "", payload: Any = None, query: Mapping[str, Any] | None = None) -> Any:
        return self.request_json("POST", path, query=query, payload=payload)

    def put(self, path: str = "", payload: Any = None) -> Any:
        return self.request_json("PUT", path, payload=payload)

    def delete(self, path: str = "") -> Any:
        return self.request_json("DELETE", path)

    def get_bytes(self, path: str, headers: Mapping[str, str] | None = None) -> bytes:
        """Fetch a binary resource (file contents); raises on error statuses."""
        response = self.request_raw("GET", path, headers=headers)
        if not response.ok and response.status != 206:
            self._decode(response, self.url(path))  # raises ClientError
        return response.body

    @staticmethod
    def _decode(response: Response, url: str) -> Any:
        if response.ok:
            if not response.body:
                return None
            content_type = response.headers.get("Content-Type", "") or ""
            if "json" in content_type:
                return response.json_body
            return response.text_body
        message, details = response.text_body or "error", None
        try:
            envelope = response.json_body
            if isinstance(envelope, dict):
                message = envelope.get("error", message)
                details = envelope.get("details")
        except (ValueError, UnicodeDecodeError):
            pass
        raise ClientError(response.status, message, details=details, url=url)


def quote_segment(segment: str) -> str:
    """Percent-encode one path segment for safe URI embedding."""
    return quote(segment, safe="")
