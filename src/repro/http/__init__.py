"""Minimal HTTP/REST substrate (stand-in for Jersey/Jetty).

This subpackage implements, from scratch on the standard library, everything
MathCloud's service container needs from its HTTP stack:

- an HTTP message model (:mod:`repro.http.messages`),
- a URI-template router (:mod:`repro.http.router`),
- a REST application kernel with middleware (:mod:`repro.http.app`),
- a threaded TCP server (:mod:`repro.http.server`),
- client transports — real sockets and in-process — behind one interface
  (:mod:`repro.http.transport`), resolved by URI through a registry
  (:mod:`repro.http.registry`),
- a small JSON-aware REST client (:mod:`repro.http.client`).

The same application object can be served over TCP or called in process;
the REST semantics are identical on both paths.
"""

from repro.http.app import RestApp
from repro.http.client import ClientError, RestClient
from repro.http.messages import HttpError, Request, Response
from repro.http.registry import TransportRegistry
from repro.http.router import Router
from repro.http.server import RestServer
from repro.http.transport import ConnectError, HttpTransport, LocalTransport, Transport, TransportError

__all__ = [
    "ClientError",
    "ConnectError",
    "TransportError",
    "HttpError",
    "HttpTransport",
    "LocalTransport",
    "Request",
    "Response",
    "RestApp",
    "RestClient",
    "RestServer",
    "Router",
    "Transport",
    "TransportRegistry",
]
