"""Minimal HTTP/REST substrate (stand-in for Jersey/Jetty).

This subpackage implements, from scratch on the standard library, everything
MathCloud's service container needs from its HTTP stack:

- an HTTP message model (:mod:`repro.http.messages`),
- a URI-template router (:mod:`repro.http.router`),
- a REST application kernel with middleware (:mod:`repro.http.app`),
- a TCP server facade (:mod:`repro.http.server`) over two cores: a
  selectors-based event loop (:mod:`repro.http.eventloop`, the default)
  and the original thread-per-connection core (:mod:`repro.http.threaded`),
- client transports — real sockets and in-process — behind one interface
  (:mod:`repro.http.transport`), resolved by URI through a registry
  (:mod:`repro.http.registry`),
- a small JSON-aware REST client (:mod:`repro.http.client`).

The same application object can be served over TCP or called in process;
the REST semantics are identical on both paths.
"""

from repro.http.app import DEFER_CAPABILITY, DeferredResponse, RestApp
from repro.http.client import ClientError, RestClient
from repro.http.messages import (
    DEFAULT_MAX_BODY_BYTES,
    HttpError,
    ProtocolError,
    Request,
    RequestParser,
    Response,
    serialize_response,
)
from repro.http.registry import TransportRegistry
from repro.http.router import Router
from repro.http.server import RestServer
from repro.http.transport import ConnectError, HttpTransport, LocalTransport, Transport, TransportError

__all__ = [
    "ClientError",
    "ConnectError",
    "TransportError",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFER_CAPABILITY",
    "DeferredResponse",
    "HttpError",
    "ProtocolError",
    "RequestParser",
    "serialize_response",
    "HttpTransport",
    "LocalTransport",
    "Request",
    "Response",
    "RestApp",
    "RestClient",
    "RestServer",
    "Router",
    "Transport",
    "TransportRegistry",
]
