"""Selectors-based event-loop HTTP core (the C10k server).

One (or a few) loop threads own every socket through non-blocking parse
and write state machines; request handling runs off-loop on a small
:class:`~repro.runtime.pool.ExecutorPool`, so only actual application/job
work consumes threads. An idle keep-alive connection costs a
:class:`_Connection` object and a selector registration — a few kilobytes
— instead of a thread stack, which is what lets one process hold tens of
thousands of waiting clients.

Connection state machine (see DESIGN.md for the full diagram)::

      accept ──► READING ──complete request──► HANDLING (off-loop worker)
                    ▲                             │
                    │        ┌─ DeferredResponse ─┤
                    │        ▼                    ▼
                    │     PARKED ──resume──► WRITING (direct send, loop
                    │        │                  │     flushes leftovers)
                    │      timer                │
                    └───────────────────────────┘ keep-alive / pipeline
                               (or CLOSED: Connection: close, EOF,
                                protocol error, idle timeout, fault drop)

The loop never blocks on a handler: a worker that wants to wait (the
``?wait=`` long-poll) raises :class:`~repro.http.app.DeferredResponse`
through the kernel; the connection parks on the job's transition
observers plus a timer-wheel deadline and is resumed with a completed
response later, pinning no thread in between.

Fault seam: the configured ``fault_hook`` runs on the worker (so seeded
``delay`` faults stall a worker, not the loop) and may answer ``"drop"``
(sever before any response byte) or ``"drop-mid-write"`` (sever after a
partial response) — the same chaos vocabulary the threaded core speaks.
"""

from __future__ import annotations

import contextlib
import errno
import logging
import selectors
import socket
import threading
import time
from collections import deque
from typing import Callable

from repro.http.app import DEFER_CAPABILITY, DeferredResponse, RestApp
from repro.http.messages import (
    DEFAULT_BODY_SPILL_BYTES,
    DEFAULT_MAX_BODY_BYTES,
    HttpError,
    ProtocolError,
    Request,
    RequestParser,
    Response,
    serialize_response,
)
from repro.runtime.pool import ExecutorPool

logger = logging.getLogger(__name__)

#: One ``recv`` worth of bytes; large enough that small requests arrive whole.
RECV_SIZE = 65536

#: Pipelined requests buffered per connection before the loop stops
#: reading from it (read resumes as responses drain) — bounds the memory
#: a single pipelining client can pin.
MAX_PIPELINE_DEPTH = 16


class _TimerEntry:
    __slots__ = ("deadline", "callback", "cancelled")

    def __init__(self, deadline: float, callback: Callable[[], None]):
        self.deadline = deadline
        self.callback = callback
        self.cancelled = False


class TimerWheel:
    """Hashed timer wheel with lazy cascade (single-thread use).

    Entries land in ``slot = (cursor + ticks) % slots``; an entry whose
    deadline lies beyond the wheel horizon is simply re-inserted when its
    slot comes around with time still left — O(1) schedule and amortized
    O(1) expiry, no sorted structure. Granularity is the firing slack:
    a timeout may fire up to one granularity late, never early.
    """

    def __init__(self, granularity: float = 0.05, slots: int = 1024):
        if granularity <= 0 or slots < 2:
            raise ValueError("granularity must be > 0 and slots >= 2")
        self.granularity = granularity
        self.slots = slots
        self._wheel: list[list[_TimerEntry]] = [[] for _ in range(slots)]
        self._cursor = 0
        self._cursor_time = time.monotonic()
        self._scheduled = 0

    def __len__(self) -> int:
        return self._scheduled

    def schedule(self, delay: float, callback: Callable[[], None]) -> _TimerEntry:
        entry = _TimerEntry(time.monotonic() + max(0.0, delay), callback)
        self._insert(entry)
        self._scheduled += 1
        return entry

    def _insert(self, entry: _TimerEntry) -> None:
        ticks = int((entry.deadline - self._cursor_time) / self.granularity) + 1
        self._wheel[(self._cursor + max(1, ticks)) % self.slots].append(entry)

    def advance(self, now: float) -> list[Callable[[], None]]:
        """Rotate up to ``now``; return the callbacks that came due."""
        fired: list[Callable[[], None]] = []
        while self._cursor_time + self.granularity <= now:
            self._cursor_time += self.granularity
            self._cursor = (self._cursor + 1) % self.slots
            bucket = self._wheel[self._cursor]
            if not bucket:
                continue
            self._wheel[self._cursor] = []
            for entry in bucket:
                if entry.cancelled:
                    self._scheduled -= 1
                elif entry.deadline <= now:
                    self._scheduled -= 1
                    fired.append(entry.callback)
                else:
                    self._insert(entry)  # beyond the horizon: cascade
        return fired


class _Connection:
    """Per-socket state: read buffer/parser, pipeline, pending writes."""

    __slots__ = (
        "sock",
        "loop",
        "parser",
        "pipeline",
        "outbuf",
        "out_offset",
        "stream",
        "lock",
        "busy",
        "close_after",
        "eof",
        "closed",
        "reading",
        "writing",
        "last_activity",
        "idle_entry",
    )

    def __init__(self, sock: socket.socket, loop: "_EventLoop", parser: RequestParser):
        self.sock = sock
        self.loop = loop
        self.parser = parser
        #: Parsed-but-unhandled ``(request, close_after)`` pairs, in order.
        self.pipeline: "deque[tuple[Request, bool]]" = deque()
        #: Bytes accepted for writing but not yet on the wire.
        self.outbuf = bytearray()
        self.out_offset = 0
        #: Chunk iterator of an in-flight streaming response; the write
        #: path refills ``outbuf`` from it one chunk at a time, so a
        #: multi-GB response never occupies more than a chunk of memory.
        self.stream = None
        #: Guards ``outbuf``/``closed`` against the off-loop writers.
        self.lock = threading.Lock()
        #: A request from this connection is being handled or is parked.
        self.busy = False
        self.close_after = False
        self.eof = False
        self.closed = False
        self.reading = True
        self.writing = False
        self.last_activity = time.monotonic()
        self.idle_entry: "_TimerEntry | None" = None


class _EventLoop:
    """One loop thread: a selector, a timer wheel, and its connections."""

    def __init__(self, core: "EventLoopCore", name: str):
        self.core = core
        self.name = name
        self.selector = selectors.DefaultSelector()
        self.wheel = TimerWheel(granularity=core.timer_granularity)
        self.connections: set[_Connection] = set()
        self.connections_timed_out = 0
        self._actions: "deque[Callable[[], None]]" = deque()
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self.selector.register(self._wake_recv, selectors.EVENT_READ, self._drain_wakeup)
        self._stop = False
        self.thread = threading.Thread(target=self.run, name=name, daemon=True)

    # ------------------------------------------------------- cross-thread API

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the loop thread as soon as possible (thread-safe)."""
        self._actions.append(fn)
        self.wake()

    def wake(self) -> None:
        with contextlib.suppress(OSError):
            self._wake_send.send(b"\0")

    def stop(self) -> None:
        self._stop = True
        self.wake()

    # --------------------------------------------------------------- the loop

    def run(self) -> None:
        granularity = self.wheel.granularity
        while not self._stop:
            for key, _mask in self.selector.select(granularity):
                key.data(key.fileobj)
            while self._actions:
                try:
                    self._actions.popleft()()
                except Exception:  # noqa: BLE001 - actions must not kill the loop
                    logger.exception("event-loop action failed")
            for callback in self.wheel.advance(time.monotonic()):
                try:
                    callback()
                except Exception:  # noqa: BLE001 - timers must not kill the loop
                    logger.exception("event-loop timer failed")
        for connection in list(self.connections):
            self._abort(connection)
        self.selector.unregister(self._wake_recv)
        self._wake_recv.close()
        self._wake_send.close()
        self.selector.close()

    def _drain_wakeup(self, sock: socket.socket) -> None:
        with contextlib.suppress(OSError):
            while sock.recv(4096):
                pass

    # ------------------------------------------------------------ connections

    def adopt(self, sock: socket.socket) -> None:
        """Take ownership of a freshly accepted socket (loop thread)."""
        sock.setblocking(False)
        with contextlib.suppress(OSError):
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        connection = _Connection(sock, self, self.core.new_parser())
        self.connections.add(connection)
        self.selector.register(
            sock, selectors.EVENT_READ, lambda _s, c=connection: self._on_readable(c)
        )
        self._arm_idle_timer(connection, self.core.idle_timeout)

    def _set_interest(self, connection: _Connection, reading: bool, writing: bool) -> None:
        if connection.closed or (reading, writing) == (connection.reading, connection.writing):
            return
        connection.reading, connection.writing = reading, writing
        events = (selectors.EVENT_READ if reading else 0) | (
            selectors.EVENT_WRITE if writing else 0
        )
        if events:
            self.selector.modify(
                connection.sock,
                events,
                lambda _s, c=connection: self._on_ready(c),
            )
        else:
            self.selector.unregister(connection.sock)

    def _on_ready(self, connection: _Connection) -> None:
        # one callback serves both directions; check actual readiness cheaply
        if connection.writing:
            self._flush(connection)
        if connection.reading and not connection.closed:
            self._on_readable(connection)

    def _on_readable(self, connection: _Connection) -> None:
        try:
            data = connection.sock.recv(RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._abort(connection)
            return
        if not data:
            connection.eof = True
            with connection.lock:
                pending = (
                    connection.busy or connection.pipeline or self._has_backlog(connection)
                )
            if not pending:
                self._abort(connection)
            return
        connection.last_activity = time.monotonic()
        try:
            parsed = connection.parser.feed(data)
        except ProtocolError as error:
            self._refuse(connection, error)
            return
        if parsed:
            connection.pipeline.extend(parsed)
            if len(connection.pipeline) >= MAX_PIPELINE_DEPTH:
                # stop reading until responses drain; resumes in _response_done
                self._set_interest(connection, reading=False, writing=connection.writing)
            self._pump(connection)

    def _pump(self, connection: _Connection) -> None:
        """Dispatch the next pipelined request unless one is in flight."""
        if connection.busy or connection.closed or not connection.pipeline:
            return
        request, close_after = connection.pipeline.popleft()
        connection.busy = True
        self.core.dispatch(connection, request, close_after)

    def _refuse(self, connection: _Connection, error: ProtocolError) -> None:
        """Answer a protocol error and close (the byte stream is unrecoverable)."""
        with connection.lock:
            streaming = connection.stream is not None
        if streaming:
            # a response is mid-stream; appending an error body would
            # interleave with its remaining chunks — just sever
            self._abort(connection)
            return
        response = HttpError(error.status, error.message).to_response()
        connection.close_after = True
        self._set_interest(connection, reading=False, writing=connection.writing)
        self.core.send_payload(connection, serialize_response(response, close=True))

    def _has_backlog(self, connection: _Connection) -> bool:
        return (
            len(connection.outbuf) - connection.out_offset > 0
            or connection.stream is not None
        )

    def _flush(self, connection: _Connection) -> None:
        """Write pending bytes (loop thread, write-ready socket)."""
        with connection.lock:
            if connection.closed:
                return
            done = self._send_backlog_locked(connection)
        if done:
            self._set_interest(connection, reading=connection.reading, writing=False)
            self._response_done(connection)

    def _send_backlog_locked(self, connection: _Connection) -> bool:
        """Push ``outbuf`` (refilled from any stream) into the socket;
        True when fully drained.

        Caller holds ``connection.lock``. A streaming response keeps its
        chunk iterator on the connection; whenever the buffered bytes
        drain, the next chunk is pulled and sent — so the response body
        transits the server at one chunk of memory regardless of size.
        On a dead socket the connection is marked closed and cleanup is
        scheduled on the loop.
        """
        while True:
            while connection.out_offset < len(connection.outbuf):
                try:
                    sent = connection.sock.send(
                        memoryview(connection.outbuf)[connection.out_offset :]
                    )
                except (BlockingIOError, InterruptedError):
                    return False
                except OSError:
                    connection.closed = True
                    self.call_soon(lambda: self._abort(connection, already_closed=True))
                    return False
                connection.out_offset += sent
            connection.outbuf = bytearray()
            connection.out_offset = 0
            if connection.stream is None:
                return True
            try:
                chunk = next(connection.stream, None)
            except Exception:  # noqa: BLE001 - a failing stream kills the connection
                logger.exception("response stream failed mid-body")
                connection.stream = None
                connection.closed = True
                self.call_soon(lambda: self._abort(connection, already_closed=True))
                return False
            if chunk is None:
                connection.stream = None
                return True
            connection.outbuf.extend(chunk)

    def _response_done(self, connection: _Connection) -> None:
        """Bookkeeping after a complete response hit the wire (loop thread)."""
        if connection.closed:
            return
        if connection.close_after or (
            connection.eof and not connection.pipeline
        ):
            self._abort(connection)
            return
        connection.busy = False
        connection.last_activity = time.monotonic()
        if not connection.reading and len(connection.pipeline) < MAX_PIPELINE_DEPTH:
            self._set_interest(connection, reading=True, writing=connection.writing)
        self._pump(connection)

    def _abort(self, connection: _Connection, already_closed: bool = False) -> None:
        """Close a connection and forget it (loop thread)."""
        if connection not in self.connections:
            return
        self.connections.discard(connection)
        with connection.lock:
            connection.closed = True
        if connection.idle_entry is not None:
            connection.idle_entry.cancelled = True
        with contextlib.suppress(KeyError, OSError, ValueError):
            self.selector.unregister(connection.sock)
        if not already_closed:
            with contextlib.suppress(OSError):
                connection.sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            connection.sock.close()

    # ------------------------------------------------------------ idle timing

    def _arm_idle_timer(self, connection: _Connection, delay: float) -> None:
        if self.core.idle_timeout <= 0:
            return
        connection.idle_entry = self.wheel.schedule(
            delay, lambda: self._idle_expired(connection)
        )

    def _idle_expired(self, connection: _Connection) -> None:
        if connection.closed or connection not in self.connections:
            return
        idle = time.monotonic() - connection.last_activity
        if connection.busy or idle < self.core.idle_timeout:
            # active, parked on a long-poll, or touched since scheduling:
            # re-arm for the remainder instead of churning per request
            remaining = self.core.idle_timeout - (0.0 if connection.busy else idle)
            self._arm_idle_timer(connection, max(remaining, self.wheel.granularity))
            return
        self.connections_timed_out += 1
        self._abort(connection)


class EventLoopCore:
    """The event-loop implementation behind the :class:`RestServer` facade.

    Owns the listening socket (bound at construction so ``port`` is known
    immediately), ``loop_threads`` event loops, and the off-loop handler
    pool. The public counters and semantics mirror the threaded core:
    ``connections_accepted``, ``fault_hook``, ``close_connections`` on
    stop — the entire REST conformance/chaos/durability surface runs
    unchanged over either.
    """

    def __init__(
        self,
        app: RestApp,
        host: str = "127.0.0.1",
        port: int = 0,
        fault_hook: "Callable[[Request], str | None] | None" = None,
        idle_timeout: float = 60.0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        body_spill_bytes: int = DEFAULT_BODY_SPILL_BYTES,
        handler_threads: int = 8,
        loop_threads: int = 1,
        timer_granularity: float = 0.05,
    ):
        if loop_threads < 1:
            raise ValueError("need at least one loop thread")
        self.app = app
        self.fault_hook = fault_hook
        self.idle_timeout = idle_timeout
        self.max_body_bytes = max_body_bytes
        self.body_spill_bytes = body_spill_bytes
        self.handler_threads = handler_threads
        self.timer_granularity = timer_granularity
        self.connections_accepted = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(512)
        self._listener.setblocking(False)
        self._loops = [
            _EventLoop(self, name=f"http-loop-{self.port}-{index}")
            for index in range(loop_threads)
        ]
        self._next_loop = 0
        self._pool: ExecutorPool | None = None
        self._started = False
        self._stopped = False

    # -------------------------------------------------------------- lifecycle

    @property
    def host(self) -> str:
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    @property
    def started(self) -> bool:
        return self._started

    @property
    def connections_timed_out(self) -> int:
        """Idle keep-alive sockets reaped by the timer wheel so far."""
        return sum(loop.connections_timed_out for loop in self._loops)

    @property
    def open_connections(self) -> int:
        return sum(len(loop.connections) for loop in self._loops)

    @property
    def timer_entries(self) -> int:
        """Live entries across every loop's timer wheel (idle + long-poll)."""
        return sum(len(loop.wheel) for loop in self._loops)

    def start(self) -> None:
        self._pool = ExecutorPool(workers=self.handler_threads, name=f"http-{self.port}")
        accept_loop = self._loops[0]
        accept_loop.selector.register(
            self._listener, selectors.EVENT_READ, lambda _s: self._accept()
        )
        for loop in self._loops:
            loop.thread.start()
        self._started = True

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        for loop in self._loops:
            loop.stop()
        if self._started:
            for loop in self._loops:
                loop.thread.join(timeout=5)
        else:
            # never started: the loop threads never ran, so release their
            # wakeup pipes and selectors here instead of at loop exit
            for loop in self._loops:
                with contextlib.suppress(OSError, KeyError, ValueError):
                    loop.selector.unregister(loop._wake_recv)
                loop._wake_recv.close()
                loop._wake_send.close()
                loop.selector.close()
        with contextlib.suppress(OSError):
            self._listener.close()
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    def close_connections(self) -> None:
        """Sever every live connection (used by stop; also callable alone)."""
        barriers = []
        for loop in self._loops:
            if not loop.thread.is_alive():
                continue
            done = threading.Event()

            def sever(loop: "_EventLoop" = loop, done: threading.Event = done) -> None:
                for connection in list(loop.connections):
                    loop._abort(connection)
                done.set()

            loop.call_soon(sever)
            barriers.append(done)
        for done in barriers:
            done.wait(timeout=2)

    # ------------------------------------------------------------- loop hooks

    def new_parser(self) -> RequestParser:
        return RequestParser(
            max_body_bytes=self.max_body_bytes, spill_threshold=self.body_spill_bytes
        )

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError as error:
                if error.errno in (errno.EMFILE, errno.ENFILE):
                    logger.error("accept failed: out of file descriptors")
                    return
                if not self._stopped:
                    logger.error("accept failed: %s", error)
                return
            self.connections_accepted += 1
            loop = self._loops[self._next_loop % len(self._loops)]
            self._next_loop += 1
            if loop is self._loops[0]:
                loop.adopt(sock)
            else:
                loop.call_soon(lambda s=sock, l=loop: l.adopt(s))

    def dispatch(self, connection: _Connection, request: Request, close_after: bool) -> None:
        """Hand a parsed request to the off-loop handler pool."""
        try:
            self._pool.submit(self._handle, connection, request, close_after)
        except RuntimeError:
            # pool already shut down mid-stop; the connection is going away
            connection.loop.call_soon(lambda: connection.loop._abort(connection))

    # -------------------------------------------------------- worker-side path

    def _handle(self, connection: _Connection, request: Request, close_after: bool) -> None:
        """Run one request on a pool worker and write (or park) its response."""
        try:
            decision = None
            hook = self.fault_hook
            if hook is not None:
                decision = hook(request)
            if decision == "drop":
                connection.loop.call_soon(lambda: connection.loop._abort(connection))
                return
            request.context[DEFER_CAPABILITY] = DeferredResponse
            head = request.method.upper() == "HEAD"
            try:
                response = self.app.handle(request)
            except DeferredResponse as deferred:
                self._park(connection, deferred, close_after, head)
                return
            if decision == "drop-mid-write":
                payload = serialize_response(
                    response.materialize(), head=head, close=close_after
                )
                self._sever_mid_write(connection, payload)
                return
            self.send_response(connection, response, head=head, close_after=close_after)
        except Exception:  # noqa: BLE001 - a handler bug must not leak the socket
            logger.exception("event-loop request handling failed")
            connection.loop.call_soon(lambda: connection.loop._abort(connection))

    def _park(
        self,
        connection: _Connection,
        deferred: DeferredResponse,
        close_after: bool,
        head: bool,
    ) -> None:
        """Park the connection; resume on the deferral's trigger or timeout.

        The connection stays ``busy`` (pipelined successors wait their
        turn) while its worker thread is released. ``resume`` is
        idempotent: whichever of the observer callback and the timer
        fires first wins, the other is a no-op.
        """
        state_lock = threading.Lock()
        state = {"fired": False, "timer": None}

        def resume() -> None:
            with state_lock:
                if state["fired"]:
                    return
                state["fired"] = True
                timer = state["timer"]
            if timer is not None:
                timer.cancelled = True
            if connection.closed:
                return
            try:
                self._pool.submit(self._finish_parked, connection, deferred.render, close_after, head)
            except RuntimeError:  # stopped while parked
                pass

        def arm_timer() -> None:
            with state_lock:
                if state["fired"]:
                    return
                state["timer"] = connection.loop.wheel.schedule(deferred.timeout, resume)

        connection.loop.call_soon(arm_timer)
        deferred.park(resume)

    def _finish_parked(
        self,
        connection: _Connection,
        render: Callable[[], object],
        close_after: bool,
        head: bool,
    ) -> None:
        if connection.closed:
            return
        try:
            response = render()
            self.send_response(connection, response, head=head, close_after=close_after)
        except Exception:  # noqa: BLE001 - render is kernel-wrapped; belt and braces
            logger.exception("deferred response rendering failed")
            connection.loop.call_soon(lambda: connection.loop._abort(connection))

    def _sever_mid_write(self, connection: _Connection, payload: bytes) -> None:
        """Write roughly half the response, then cut the socket (fault seam)."""
        half = payload[: max(1, len(payload) // 2)]
        with connection.lock:
            if not connection.closed and not connection.loop._has_backlog(connection):
                with contextlib.suppress(OSError):
                    connection.sock.send(half)
        connection.loop.call_soon(lambda: connection.loop._abort(connection))

    # ------------------------------------------------------------ write path

    def send_response(
        self,
        connection: _Connection,
        response: "Response",
        head: bool = False,
        close_after: bool = False,
    ) -> None:
        """Write one response, streaming its body when it carries a chunk
        iterator; callable from any thread.

        Buffered responses take the single-buffer :meth:`send_payload`
        path unchanged. A streaming response queues its serialized head
        and parks the iterator on the connection; the write path (direct
        drain here, then the loop as the socket accepts bytes) pulls one
        chunk at a time, so the body never materializes server-side.
        """
        if close_after:
            connection.close_after = True
        if response.stream is None or head:
            self.send_payload(
                connection, serialize_response(response, head=head, close=close_after)
            )
            return
        header = serialize_response(response, close=close_after)
        loop = connection.loop
        with connection.lock:
            if connection.closed:
                return
            connection.outbuf.extend(header)
            connection.stream = response.stream
            done = loop._send_backlog_locked(connection)
        if done:
            loop.call_soon(lambda: loop._response_done(connection))
        elif not connection.closed:
            loop.call_soon(
                lambda: loop._set_interest(
                    connection, reading=connection.reading, writing=True
                )
            )

    def send_payload(self, connection: _Connection, payload: bytes) -> None:
        """Write one complete response; callable from any thread.

        Fast path: when nothing is queued, send straight from the calling
        worker — the common small response reaches the wire without a
        loop round-trip, which is what keeps the event-loop's small-job
        latency at parity with thread-per-connection. Whatever does not
        fit in the socket buffer is queued for the loop to flush.
        """
        loop = connection.loop
        with connection.lock:
            if connection.closed:
                return
            direct_done = False
            if not loop._has_backlog(connection):
                try:
                    sent = connection.sock.send(payload)
                except (BlockingIOError, InterruptedError):
                    sent = 0
                except OSError:
                    connection.closed = True
                    loop.call_soon(lambda: loop._abort(connection, already_closed=True))
                    return
                if sent == len(payload):
                    direct_done = True
                else:
                    connection.outbuf.extend(payload[sent:])
            else:
                connection.outbuf.extend(payload)
        if direct_done:
            loop.call_soon(lambda: loop._response_done(connection))
        else:
            loop.call_soon(
                lambda: loop._set_interest(
                    connection, reading=connection.reading, writing=True
                )
            )
