"""URI-template routing.

Routes are declared with templates such as ``/services/{name}/jobs/{job_id}``.
Each ``{variable}`` segment matches one path segment; a trailing
``{variable...}`` matches the rest of the path (used for file resources whose
identifiers may contain slashes). Matching is exact otherwise.

The paper's REST API does not prescribe URI templates — only the hierarchy
service → job → file — so the router keeps templates fully configurable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from repro.http.messages import HttpError, Request, Response

Handler = Callable[..., Response]

_VARIABLE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)(\.\.\.)?\}")


def compile_template(template: str) -> re.Pattern[str]:
    """Compile a URI template into an anchored regular expression.

    >>> compile_template("/jobs/{id}").match("/jobs/42").groupdict()
    {'id': '42'}
    """
    if not template.startswith("/"):
        raise ValueError(f"URI template must start with '/': {template!r}")
    pattern = ""
    position = 0
    seen: set[str] = set()
    for match in _VARIABLE.finditer(template):
        literal = template[position : match.start()]
        pattern += re.escape(literal)
        name, greedy = match.group(1), match.group(2)
        if name in seen:
            raise ValueError(f"duplicate variable {name!r} in template {template!r}")
        seen.add(name)
        pattern += f"(?P<{name}>.+)" if greedy else f"(?P<{name}>[^/]+)"
        position = match.end()
    pattern += re.escape(template[position:])
    return re.compile("^" + pattern + "$")


@dataclass
class Route:
    """One (method, template) → handler binding."""

    method: str
    template: str
    handler: Handler
    pattern: re.Pattern[str] = field(init=False)

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        self.pattern = compile_template(self.template)


class Router:
    """Dispatches (method, path) pairs to handlers.

    ``resolve`` distinguishes *unknown path* (404) from *known path, wrong
    method* (405 with an ``Allow`` header), as a well-behaved REST service
    must.
    """

    def __init__(self) -> None:
        self._routes: list[Route] = []
        # dispatch indexes, maintained by _reindex: variable-free templates
        # resolve with one dict lookup; only templated routes are scanned
        self._static: dict[str, dict[str, Route]] = {}
        self._dynamic: list[Route] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` requests matching ``template``."""
        route = Route(method, template, handler)
        for existing in self._routes:
            if existing.method == route.method and existing.template == template:
                raise ValueError(f"route already registered: {method} {template}")
        self._routes.append(route)
        self._index(route)

    def remove_prefix(self, prefix: str) -> int:
        """Drop every route whose template starts with ``prefix``.

        Used when a service is undeployed from the container. Returns the
        number of routes removed.
        """
        before = len(self._routes)
        self._routes = [r for r in self._routes if not r.template.startswith(prefix)]
        self._static = {}
        self._dynamic = []
        for route in self._routes:
            self._index(route)
        return before - len(self._routes)

    def _index(self, route: Route) -> None:
        if _VARIABLE.search(route.template) is None:
            self._static.setdefault(route.template, {})[route.method] = route
        else:
            self._dynamic.append(route)

    def resolve(self, method: str, path: str) -> tuple[Handler, dict[str, str]]:
        """Find the handler and path variables for a request.

        ``HEAD`` requests fall back to the matching ``GET`` route when no
        explicit ``HEAD`` route exists (the application kernel strips the
        body), so every readable resource answers HEAD for free.

        Raises :class:`HttpError` 404 when no template matches the path and
        405 when a template matches but not with this method.
        """
        method = method.upper()
        by_method = self._static.get(path)
        if by_method is not None:
            route = by_method.get(method)
            if route is None and method == "HEAD":
                route = by_method.get("GET")
            if route is not None:
                return route.handler, {}
        allowed: set[str] = set(by_method or ())
        head_fallback: "tuple[Handler, dict[str, str]] | None" = None
        for route in self._dynamic:
            match = route.pattern.match(path)
            if match is None:
                continue
            if route.method == method:
                return route.handler, match.groupdict()
            if method == "HEAD" and route.method == "GET" and head_fallback is None:
                head_fallback = route.handler, match.groupdict()
            allowed.add(route.method)
        if head_fallback is not None:
            return head_fallback
        if "GET" in allowed:
            allowed.add("HEAD")
        if allowed:
            raise HttpError(
                405,
                f"method {method} not allowed for {path}",
                details={"allow": sorted(allowed)},
            )
        raise HttpError(404, f"no resource at {path}")

    def dispatch(self, request: Request) -> Response:
        """Resolve and invoke the handler for ``request``."""
        handler, variables = self.resolve(request.method, request.path)
        return handler(request, **variables)

    @property
    def routes(self) -> list[Route]:
        return list(self._routes)

    def __len__(self) -> int:
        return len(self._routes)
