"""TCP server facade exposing a :class:`~repro.http.app.RestApp`.

:class:`RestServer` is the single public entry point; the actual server
lives in one of two interchangeable cores:

- ``server_impl="eventloop"`` (default) — the selectors-based event-loop
  core (:mod:`repro.http.eventloop`): a couple of loop threads own every
  socket through non-blocking parse/write state machines, handlers run on
  a small worker pool, and ``?wait=`` long-polls park the connection
  instead of a thread. This is the C10k path.
- ``server_impl="threaded"`` — the original thread-per-connection core
  (:mod:`repro.http.threaded`), kept as an escape hatch and as the
  baseline the G2 benchmark measures against.

Both cores present identical REST semantics (the conformance suite runs
against each) and the same facade surface: ``base_url``,
``connections_accepted``, ``fault_hook``, ``start``/``stop``, context
manager. It binds to an ephemeral loopback port by default, which keeps
parallel test runs and multi-container benchmarks free of port clashes.
"""

from __future__ import annotations

from typing import Callable

from repro.http.app import RestApp
from repro.http.eventloop import EventLoopCore
from repro.http.messages import DEFAULT_BODY_SPILL_BYTES, DEFAULT_MAX_BODY_BYTES, Request
from repro.http.threaded import SUPPORTED_METHODS, ThreadedServerCore

__all__ = ["RestServer", "SUPPORTED_METHODS"]

#: Registered ``server_impl`` values → core factory.
SERVER_IMPLS = {
    "eventloop": EventLoopCore,
    "threaded": ThreadedServerCore,
}


class RestServer:
    """Serves a :class:`RestApp` over TCP on background threads.

    Usable as a context manager::

        with RestServer(app) as server:
            client = RestClient(HttpTransport(), base=server.base_url)

    Keyword knobs (all optional, shared by both cores):

    - ``server_impl`` — ``"eventloop"`` (default) or ``"threaded"``.
    - ``idle_timeout`` — seconds an idle keep-alive connection may sit
      before the server closes it (``connections_timed_out`` counts the
      reaped ones on the event-loop core).
    - ``max_body_bytes`` — request bodies above this answer 413 without
      being buffered (default 64 MB).
    - ``body_spill_bytes`` — request bodies above this are spilled to an
      anonymous temp file instead of memory (default 1 MB; ``-1`` keeps
      everything in memory).
    - ``handler_threads`` / ``loop_threads`` — event-loop core sizing;
      ignored by the threaded core.
    """

    def __init__(
        self,
        app: RestApp,
        host: str = "127.0.0.1",
        port: int = 0,
        fault_hook: "Callable[[Request], str | None] | None" = None,
        *,
        server_impl: str = "eventloop",
        idle_timeout: float = 60.0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        body_spill_bytes: int = DEFAULT_BODY_SPILL_BYTES,
        handler_threads: int = 8,
        loop_threads: int = 1,
    ):
        try:
            factory = SERVER_IMPLS[server_impl]
        except KeyError:
            raise ValueError(
                f"unknown server_impl {server_impl!r}; expected one of {sorted(SERVER_IMPLS)}"
            ) from None
        options: dict[str, object] = {
            "idle_timeout": idle_timeout,
            "max_body_bytes": max_body_bytes,
            "body_spill_bytes": body_spill_bytes,
        }
        if factory is EventLoopCore:
            options["handler_threads"] = handler_threads
            options["loop_threads"] = loop_threads
        self._core = factory(app, host, port, fault_hook, **options)
        self.app = app
        self.server_impl = server_impl

    @property
    def fault_hook(self) -> "Callable[[Request], str | None] | None":
        """Per-request fault-injection seam.

        The hook runs with the parsed request before handling and may
        return ``"drop"`` (sever without answering), ``"drop-mid-write"``
        (sever after a partial response), or ``None`` (serve normally).
        """
        return self._core.fault_hook

    @fault_hook.setter
    def fault_hook(self, hook: "Callable[[Request], str | None] | None") -> None:
        self._core.fault_hook = hook

    @property
    def host(self) -> str:
        return self._core.host

    @property
    def port(self) -> int:
        return self._core.port

    @property
    def base_url(self) -> str:
        """The ``http://host:port`` prefix under which the app is reachable."""
        return f"http://{self.host}:{self.port}"

    @property
    def connections_accepted(self) -> int:
        """How many TCP connections the server has accepted so far."""
        return self._core.connections_accepted

    @property
    def connections_timed_out(self) -> int:
        """Idle keep-alive connections closed by the idle-timeout reaper."""
        return self._core.connections_timed_out

    @property
    def open_connections(self) -> int:
        """TCP connections currently open (0 where the core can't say)."""
        return getattr(self._core, "open_connections", 0)

    @property
    def timer_entries(self) -> int:
        """Entries on the event-loop timer wheel (0 on the threaded core)."""
        return getattr(self._core, "timer_entries", 0)

    def stats(self) -> dict[str, int | str]:
        """A point-in-time snapshot of the server's connection counters."""
        return {
            "impl": self.server_impl,
            "connections_accepted": self.connections_accepted,
            "connections_timed_out": self.connections_timed_out,
            "open_connections": self.open_connections,
            "timer_entries": self.timer_entries,
        }

    def start(self) -> "RestServer":
        if self._core.started:
            raise RuntimeError("server already started")
        self._core.start()
        return self

    def close_connections(self) -> None:
        """Sever every live keep-alive connection without stopping the server."""
        self._core.close_connections()

    def stop(self) -> None:
        self._core.stop()

    def __enter__(self) -> "RestServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
