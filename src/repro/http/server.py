"""Threaded TCP server exposing a :class:`~repro.http.app.RestApp`.

This is the Jetty stand-in: a thread-per-connection HTTP/1.1 server built on
``http.server`` that forwards every request to the application kernel. It
binds to an ephemeral loopback port by default, which keeps parallel test
runs and multi-container benchmarks free of port clashes.
"""

from __future__ import annotations

import contextlib
import socket
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.http.app import RestApp
from repro.http.messages import Headers, Request, reason_phrase

#: Methods the unified REST API uses (Table 1 of the paper) plus PUT, which
#: the catalogue and WMS use for idempotent updates.
SUPPORTED_METHODS = ("GET", "POST", "DELETE", "PUT")


class _AppRequestHandler(BaseHTTPRequestHandler):
    """Adapts ``http.server`` parsing to the :class:`RestApp` interface.

    ``protocol_version = HTTP/1.1`` makes connections persistent by
    default: the base class keeps the socket open across requests unless
    the client asks ``Connection: close``, and every response here carries
    a ``Content-Length``, which is what persistent connections require.
    """

    protocol_version = "HTTP/1.1"
    server_version = "MathCloud/1.0"
    #: The response goes out as two writes (header block, then body) on an
    #: unbuffered socket; with Nagle on, the second write sits behind the
    #: client's delayed ACK (~40 ms on loopback) on every single response.
    disable_nagle_algorithm = True
    #: Idle keep-alive connections are dropped after this many seconds so
    #: abandoned sockets cannot pin handler threads forever.
    timeout = 60.0
    app: RestApp  # set on the generated subclass

    def _dispatch(self) -> None:
        length = int(self.headers.get("Content-Length", 0) or 0)
        body = self.rfile.read(length) if length else b""
        headers = Headers()
        for name, value in self.headers.items():
            headers.add(name, value)
        request = Request.from_target(self.command, self.path, headers=headers, body=body)
        hook = getattr(self.server, "fault_hook", None)
        if hook is not None and hook(request) == "drop":
            # fault injection: sever the connection without answering — the
            # client sees exactly what a server crash mid-request looks like
            self.close_connection = True
            return
        response = self.app.handle(request)
        self.send_response_only(response.status, reason_phrase(response.status))
        seen = {name.lower() for name, _ in response.headers.items()}
        for name, value in response.headers.items():
            self.send_header(name, value)
        if "content-length" not in seen:
            self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        if response.body and self.command != "HEAD":
            self.wfile.write(response.body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request stderr logging (tests and benchmarks are chatty)."""

    def do_GET(self) -> None:
        self._dispatch()

    def do_POST(self) -> None:
        self._dispatch()

    def do_DELETE(self) -> None:
        self._dispatch()

    def do_PUT(self) -> None:
        self._dispatch()


class _Server(ThreadingHTTPServer):
    """Bounded thread-per-connection server with a deep accept backlog.

    Counts accepted connections: with keep-alive clients many requests
    share one connection, and the keep-alive regression tests assert
    exactly that.
    """

    request_queue_size = 128
    daemon_threads = True

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self.connections_accepted = 0
        self._open_lock = threading.Lock()
        self._open_connections: set[socket.socket] = set()

    def get_request(self):  # noqa: ANN201 - socketserver signature
        request = super().get_request()
        # the accept loop is single-threaded, so a plain increment is safe
        self.connections_accepted += 1
        with self._open_lock:
            self._open_connections.add(request[0])
        return request

    def handle_error(self, request, client_address) -> None:  # noqa: ANN001
        # connection resets and broken pipes are routine — a client gave up
        # on a long-poll, or this server is being stopped and its sockets
        # severed; only genuinely unexpected errors deserve the traceback
        exception = sys.exc_info()[1]
        if isinstance(exception, (ConnectionError, TimeoutError)):
            return
        super().handle_error(request, client_address)

    def close_request(self, request) -> None:  # noqa: ANN001 - socketserver signature
        with self._open_lock:
            self._open_connections.discard(request)
        super().close_request(request)

    def close_connections(self) -> None:
        """Sever every live keep-alive connection.

        A persistent connection otherwise outlives the listener: its
        handler thread keeps answering requests after ``server_close``,
        so a "stopped" server would still serve pooled client sockets.
        """
        with self._open_lock:
            connections = list(self._open_connections)
            self._open_connections.clear()
        for connection in connections:
            with contextlib.suppress(OSError):
                connection.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                connection.close()


class RestServer:
    """Serves a :class:`RestApp` over TCP on a background thread.

    Usable as a context manager::

        with RestServer(app) as server:
            client = RestClient(HttpTransport(), base=server.base_url)
    """

    def __init__(
        self,
        app: RestApp,
        host: str = "127.0.0.1",
        port: int = 0,
        fault_hook: "Callable[[Request], str | None] | None" = None,
    ):
        handler = type("Handler", (_AppRequestHandler,), {"app": app})
        self._server = _Server((host, port), handler)
        self._server.daemon_threads = True
        self._server.fault_hook = fault_hook
        self._thread: threading.Thread | None = None
        self.app = app

    @property
    def fault_hook(self) -> "Callable[[Request], str | None] | None":
        """Per-request fault-injection seam (see ``_dispatch``)."""
        return self._server.fault_hook

    @fault_hook.setter
    def fault_hook(self, hook: "Callable[[Request], str | None] | None") -> None:
        self._server.fault_hook = hook

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def base_url(self) -> str:
        """The ``http://host:port`` prefix under which the app is reachable."""
        return f"http://{self.host}:{self.port}"

    @property
    def connections_accepted(self) -> int:
        """How many TCP connections the server has accepted so far."""
        return self._server.connections_accepted

    def start(self) -> "RestServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"rest-server-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.close_connections()
        self._server.server_close()
        self._thread.join(timeout=5)
        self._thread = None

    def __enter__(self) -> "RestServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
