"""REST application kernel.

A :class:`RestApp` owns a router and a middleware chain and turns a
:class:`~repro.http.messages.Request` into a
:class:`~repro.http.messages.Response`. It is transport-agnostic: the same
instance can be served over TCP by :class:`~repro.http.server.RestServer`
or called in process through
:class:`~repro.http.transport.LocalTransport`.
"""

from __future__ import annotations

import logging
import traceback
from typing import Callable, Protocol

from repro.http.messages import HttpError, Request, Response
from repro.http.router import Handler, Router
from repro.runtime.context import REQUEST_ID_HEADER, RequestContext, activate_context

logger = logging.getLogger(__name__)

#: ``request.context`` key under which a non-blocking server installs its
#: deferral capability. Present ⇒ the handler may park the request with
#: ``raise request.context[DEFER_CAPABILITY](render, park, timeout)``
#: instead of blocking its thread; absent (threaded server, local
#: transport) ⇒ handlers block as they always did.
DEFER_CAPABILITY = "http.defer"


class DeferredResponse(Exception):
    """Control-flow signal: the response will be produced later.

    A handler that would otherwise block a thread (the ``?wait=``
    long-poll) raises one of these through the middleware chain. The
    event-loop server catches it, parks the connection, and produces the
    response when the handler's ``park``-registered trigger fires or the
    timeout expires:

    - ``render`` — zero-argument callable building the final
      :class:`Response` from current state; invoked exactly once, off the
      event loop, at resume time.
    - ``park`` — called by the server with its (idempotent, thread-safe)
      ``resume`` trigger; the handler wires that trigger to whatever it is
      waiting on (a job's transition observers).
    - ``timeout`` — seconds after which the server resumes regardless.
    """

    def __init__(
        self,
        render: Callable[[], Response],
        park: Callable[[Callable[[], None]], None],
        timeout: float,
    ):
        super().__init__("response deferred")
        self.render = render
        self.park = park
        self.timeout = timeout


class Middleware(Protocol):
    """Wraps request handling; used for security and instrumentation.

    A middleware receives the request and a ``call_next`` continuation and
    must return a response — either by invoking the continuation (possibly
    after mutating ``request.context``) or by short-circuiting.
    """

    def __call__(self, request: Request, call_next: Callable[[Request], Response]) -> Response: ...


class RestApp:
    """A routed REST application with middleware and uniform error handling.

    Handler exceptions become JSON error responses: :class:`HttpError` keeps
    its status; anything else is logged and reported as a 500 without
    leaking the traceback to the client.
    """

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self.router = Router()
        self._middleware: list[Middleware] = []

    def route(self, method: str, template: str, handler: Handler) -> None:
        """Register a handler; see :meth:`repro.http.router.Router.add`."""
        self.router.add(method, template, handler)

    def add_middleware(self, middleware: Middleware) -> None:
        """Append ``middleware``; the first added runs outermost."""
        self._middleware.append(middleware)

    def handle(self, request: Request) -> Response:
        """Process one request through middleware, router and handler.

        Every request gets a correlation id — the client's ``X-Request-Id``
        when supplied, a generated one otherwise. The id is exposed as
        ``request.context["request_id"]``, activated as the thread's
        current :class:`~repro.runtime.context.RequestContext`, and echoed
        on the response (including error responses), so one id follows a
        request across every layer it touches.
        """
        context = RequestContext.from_header(request.headers.get(REQUEST_ID_HEADER))
        request.context.setdefault("request_id", context.request_id)
        with activate_context(context):
            try:
                response = self._call_chain(request, 0)
            except DeferredResponse as deferred:
                # the handler parked itself; wrap its render so the
                # resumed response still gets kernel error handling and
                # the correlation id, then let the server catch it
                deferred.render = self._finishing_render(
                    deferred.render, request, context.request_id
                )
                raise
            except HttpError as error:
                response = error.to_response()
            except Exception:  # noqa: BLE001 - the kernel must never propagate
                logger.error(
                    "unhandled error in %s %s %s [request %s]\n%s",
                    self.name,
                    request.method,
                    request.path,
                    context.request_id,
                    traceback.format_exc(),
                )
                response = HttpError(500, "internal server error").to_response()
        return self._finalize(response, request, context.request_id)

    def _finalize(self, response: Response, request: Request, request_id: str) -> Response:
        response.headers.set(REQUEST_ID_HEADER, request_id)
        if request.method == "HEAD" and (response.body or response.stream is not None):
            # the HEAD contract over every transport: GET's headers and
            # Content-Length, no body bytes
            if response.stream is not None:
                response.headers.set("Content-Length", str(response.content_length or 0))
                closer = getattr(response.stream, "close", None)
                if closer is not None:
                    closer()
                response.stream = None
                response.content_length = None
            else:
                response.headers.set("Content-Length", str(len(response.body)))
                response.body = b""
        return response

    def _finishing_render(
        self, render: Callable[[], Response], request: Request, request_id: str
    ) -> Callable[[], Response]:
        """Wrap a deferred render with the kernel's error/finalize steps."""

        def finished() -> Response:
            try:
                response = render()
            except HttpError as error:
                response = error.to_response()
            except Exception:  # noqa: BLE001 - the kernel must never propagate
                logger.error(
                    "unhandled error rendering deferred %s %s %s [request %s]\n%s",
                    self.name,
                    request.method,
                    request.path,
                    request_id,
                    traceback.format_exc(),
                )
                response = HttpError(500, "internal server error").to_response()
            return self._finalize(response, request, request_id)

        return finished

    def _call_chain(self, request: Request, index: int) -> Response:
        if index < len(self._middleware):
            middleware = self._middleware[index]
            return middleware(request, lambda req: self._call_chain(req, index + 1))
        return self.router.dispatch(request)

    def __repr__(self) -> str:
        return f"RestApp({self.name!r}, routes={len(self.router)})"
