"""Grid sites: computing elements backed by local batch systems.

A site publishes Glue-schema-style attributes (the names gLite brokers
match ``Requirements`` against) and executes forwarded jobs on its own
:class:`~repro.batch.Cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.batch import Cluster, ComputeNode


@dataclass
class GridSite:
    """One computing element in the simulated grid."""

    name: str
    supported_vos: set[str] = field(default_factory=set)
    #: Static Glue attributes advertised to the broker. Dynamic ones
    #: (free slots) are merged in by :meth:`attributes_now`.
    attributes: dict[str, Any] = field(default_factory=dict)
    cluster: Cluster | None = None
    slots: int = 4

    def __post_init__(self) -> None:
        if self.cluster is None:
            self.cluster = Cluster(
                nodes=[ComputeNode(f"{self.name}-n1", slots=self.slots)],
                name=self.name,
            )
        defaults = {
            "GlueCEName": self.name,
            "GlueCEInfoTotalCPUs": self.cluster.total_slots,
            "GlueCEStateEstimatedResponseTime": 0,
        }
        for key, value in defaults.items():
            self.attributes.setdefault(key, value)

    def attributes_now(self) -> dict[str, Any]:
        """Current attribute snapshot, including dynamic load figures."""
        running = sum(
            1 for job in self.cluster.jobs() if not job.state.terminal
        )
        snapshot = dict(self.attributes)
        snapshot["GlueCEStateFreeCPUs"] = self.cluster.free_slots
        snapshot["GlueCEStateRunningJobs"] = running
        # crude response-time estimate: queued work over capacity
        snapshot.setdefault("GlueCEStateWaitingJobs", max(0, running - self.cluster.total_slots))
        return snapshot

    def supports_vo(self, vo_name: str) -> bool:
        return vo_name in self.supported_vos

    def shutdown(self) -> None:
        self.cluster.shutdown()
