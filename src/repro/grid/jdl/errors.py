"""JDL error types, all carrying source positions where available."""

from __future__ import annotations


class JdlError(Exception):
    """Base class for every JDL processing failure."""


class JdlSyntaxError(JdlError):
    """Lexical or grammatical error in a JDL document."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class JdlEvalError(JdlError):
    """A JDL expression could not be evaluated (missing attribute, bad types).

    The broker treats an evaluation error in ``Requirements`` as
    "site does not match", mirroring ClassAd three-valued semantics.
    """
