"""JDL recursive-descent parser.

Grammar (precedence climbing, loosest first)::

    document    := '[' (binding ';')* ']' | (binding ';')*
    binding     := IDENT '=' expression
    expression  := or_expr
    or_expr     := and_expr ('||' and_expr)*
    and_expr    := cmp_expr ('&&' cmp_expr)*
    cmp_expr    := add_expr (('=='|'!='|'<='|'>='|'<'|'>') add_expr)?
    add_expr    := mul_expr (('+'|'-') mul_expr)*
    mul_expr    := unary (('*'|'/') unary)*
    unary       := ('-'|'!') unary | primary
    primary     := literal | list | reference | '(' expression ')'
    list        := '{' (expression (',' expression)*)? '}'
    reference   := IDENT ('.' IDENT)?

Comparisons are non-associative (as in ClassAds): ``a < b < c`` is a
syntax error rather than a surprise.
"""

from __future__ import annotations

from repro.grid.jdl.ast import Attribute, Binary, Expr, JobDescription, ListExpr, Literal, Unary
from repro.grid.jdl.errors import JdlSyntaxError
from repro.grid.jdl.lexer import Token, TokenKind, tokenize

_COMPARISONS = {
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
    TokenKind.LE: "<=",
    TokenKind.GE: ">=",
    TokenKind.LT: "<",
    TokenKind.GT: ">",
}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        if self.current.kind is not kind:
            raise JdlSyntaxError(
                f"expected {kind.value!r}, found {self.current.text or 'end of input'!r}",
                self.current.line,
                self.current.column,
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        if self.current.kind is kind:
            return self._advance()
        return None

    # ------------------------------------------------------------ document

    def document(self) -> JobDescription:
        bracketed = self._accept(TokenKind.LBRACKET) is not None
        description = JobDescription()
        closer = TokenKind.RBRACKET if bracketed else TokenKind.EOF
        while self.current.kind is not closer:
            if self.current.kind is TokenKind.EOF:
                raise JdlSyntaxError("unexpected end of input, missing ']'", self.current.line, self.current.column)
            name_token = self._expect(TokenKind.IDENT)
            name = name_token.text
            if any(existing.lower() == name.lower() for existing in description.attributes):
                raise JdlSyntaxError(
                    f"duplicate attribute {name!r}", name_token.line, name_token.column
                )
            self._expect(TokenKind.ASSIGN)
            description.attributes[name] = self.expression()
            self._expect(TokenKind.SEMICOLON)
        if bracketed:
            self._expect(TokenKind.RBRACKET)
            if self.current.kind is not TokenKind.EOF:
                raise JdlSyntaxError(
                    f"trailing input after ']': {self.current.text!r}",
                    self.current.line,
                    self.current.column,
                )
        return description

    # --------------------------------------------------------- expressions

    def expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept(TokenKind.OR):
            left = Binary("||", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._cmp_expr()
        while self._accept(TokenKind.AND):
            left = Binary("&&", left, self._cmp_expr())
        return left

    def _cmp_expr(self) -> Expr:
        left = self._add_expr()
        if self.current.kind in _COMPARISONS:
            op = _COMPARISONS[self._advance().kind]
            right = self._add_expr()
            if self.current.kind in _COMPARISONS:
                raise JdlSyntaxError(
                    "comparisons are non-associative; parenthesize",
                    self.current.line,
                    self.current.column,
                )
            return Binary(op, left, right)
        return left

    def _add_expr(self) -> Expr:
        left = self._mul_expr()
        while self.current.kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self._advance().text
            left = Binary(op, left, self._mul_expr())
        return left

    def _mul_expr(self) -> Expr:
        left = self._unary()
        while self.current.kind in (TokenKind.STAR, TokenKind.SLASH):
            op = self._advance().text
            left = Binary(op, left, self._unary())
        return left

    def _unary(self) -> Expr:
        if self.current.kind in (TokenKind.MINUS, TokenKind.NOT):
            op = self._advance().text
            return Unary(op, self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self.current
        if token.kind in (TokenKind.STRING, TokenKind.NUMBER, TokenKind.BOOLEAN):
            self._advance()
            return Literal(token.value)
        if token.kind is TokenKind.LBRACE:
            return self._list()
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self.expression()
            self._expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._accept(TokenKind.DOT):
                member = self._expect(TokenKind.IDENT)
                return Attribute(member.text, scope=token.text.lower())
            return Attribute(token.text)
        raise JdlSyntaxError(
            f"expected an expression, found {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )

    def _list(self) -> Expr:
        self._expect(TokenKind.LBRACE)
        items: list[Expr] = []
        if self.current.kind is not TokenKind.RBRACE:
            items.append(self.expression())
            while self._accept(TokenKind.COMMA):
                items.append(self.expression())
        self._expect(TokenKind.RBRACE)
        return ListExpr(tuple(items))


def parse_jdl(source: str) -> JobDescription:
    """Parse a JDL document into a :class:`JobDescription`."""
    return _Parser(tokenize(source)).document()


def parse_expression(source: str) -> Expr:
    """Parse a single JDL expression (useful for Requirements strings)."""
    parser = _Parser(tokenize(source))
    expr = parser.expression()
    if parser.current.kind is not TokenKind.EOF:
        raise JdlSyntaxError(
            f"trailing input after expression: {parser.current.text!r}",
            parser.current.line,
            parser.current.column,
        )
    return expr
