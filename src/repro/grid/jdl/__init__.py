"""The JDL (Job Description Language) implementation.

gLite describes grid jobs with ClassAd-style attribute lists::

    [
      Executable = "/usr/bin/python3";
      Arguments = "-c 'print(42)'";
      StdOutput = "out.txt";
      OutputSandbox = {"out.txt"};
      VirtualOrganisation = "mathcloud";
      Requirements = other.GlueCEInfoTotalCPUs >= 4 &&
                     other.GlueCEName != "retired-ce";
      Rank = -other.GlueCEStateEstimatedResponseTime;
    ]

The implementation is a conventional pipeline — lexer
(:mod:`~repro.grid.jdl.lexer`), recursive-descent parser
(:mod:`~repro.grid.jdl.parser`) producing a typed AST
(:mod:`~repro.grid.jdl.ast`), and an evaluator
(:mod:`~repro.grid.jdl.evaluator`) used by the broker to test
``Requirements`` and compute ``Rank`` against each site's attributes.
"""

from repro.grid.jdl.ast import (
    Attribute,
    Binary,
    JobDescription,
    Literal,
    ListExpr,
    Unary,
)
from repro.grid.jdl.errors import JdlError, JdlEvalError, JdlSyntaxError
from repro.grid.jdl.evaluator import evaluate
from repro.grid.jdl.lexer import Token, TokenKind, tokenize
from repro.grid.jdl.parser import parse_expression, parse_jdl

__all__ = [
    "Attribute",
    "Binary",
    "JdlError",
    "JdlEvalError",
    "JdlSyntaxError",
    "JobDescription",
    "ListExpr",
    "Literal",
    "Token",
    "TokenKind",
    "Unary",
    "evaluate",
    "parse_expression",
    "parse_jdl",
    "tokenize",
]
