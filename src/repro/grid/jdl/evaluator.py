"""JDL expression evaluator.

Evaluates an expression against two attribute environments: the job's own
attributes (unscoped references) and the candidate site's attributes
(``other.*`` references), both looked up case-insensitively.

Semantics follow ClassAds where it matters to a broker:

- ``&&`` and ``||`` short-circuit;
- type mismatches and unknown attributes raise :class:`JdlEvalError`,
  which the broker interprets as "this site does not match";
- comparison of string with string is lexicographic, number with number is
  numeric; cross-type ``==``/``!=`` are allowed (always unequal), other
  cross-type comparisons are errors;
- arithmetic requires numbers; ``+`` also concatenates strings.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.grid.jdl.ast import Attribute, Binary, Expr, ListExpr, Literal, Unary
from repro.grid.jdl.errors import JdlEvalError


def _lookup(environment: Mapping[str, Any], name: str, where: str) -> Any:
    lowered = name.lower()
    for key, value in environment.items():
        if key.lower() == lowered:
            return value
    raise JdlEvalError(f"unknown attribute {name!r} in {where}")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _truthy(value: Any, context: str) -> bool:
    if isinstance(value, bool):
        return value
    raise JdlEvalError(f"{context} requires a boolean, got {value!r}")


def evaluate(
    expr: Expr,
    site: Mapping[str, Any] | None = None,
    job: Mapping[str, Any] | None = None,
) -> Any:
    """Evaluate ``expr``; see the module docstring for semantics."""
    site = site or {}
    job = job or {}

    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ListExpr):
        return [evaluate(item, site, job) for item in expr.items]
    if isinstance(expr, Attribute):
        if expr.scope == "other":
            return _lookup(site, expr.name, "site attributes")
        if expr.scope in ("", "self"):
            value = _lookup(job, expr.name, "job attributes")
            # Job attributes are stored as unevaluated expressions when they
            # come from a parsed document; chase them.
            if isinstance(value, (Literal, ListExpr, Attribute, Unary, Binary)):
                return evaluate(value, site, job)
            return value
        raise JdlEvalError(f"unknown scope {expr.scope!r} (only 'other' and 'self')")
    if isinstance(expr, Unary):
        operand = evaluate(expr.operand, site, job)
        if expr.op == "-":
            if not _is_number(operand):
                raise JdlEvalError(f"unary '-' requires a number, got {operand!r}")
            return -operand
        if expr.op == "!":
            return not _truthy(operand, "'!'")
        raise JdlEvalError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Binary):
        return _binary(expr, site, job)
    raise JdlEvalError(f"cannot evaluate {expr!r}")


def _binary(expr: Binary, site: Mapping[str, Any], job: Mapping[str, Any]) -> Any:
    op = expr.op
    if op == "&&":
        if not _truthy(evaluate(expr.left, site, job), "'&&'"):
            return False
        return _truthy(evaluate(expr.right, site, job), "'&&'")
    if op == "||":
        if _truthy(evaluate(expr.left, site, job), "'||'"):
            return True
        return _truthy(evaluate(expr.right, site, job), "'||'")

    left = evaluate(expr.left, site, job)
    right = evaluate(expr.right, site, job)

    if op in ("==", "!="):
        if _is_number(left) and _is_number(right):
            equal = left == right
        elif type(left) is type(right):
            equal = left == right
        else:
            equal = False
        return equal if op == "==" else not equal

    if op in ("<", "<=", ">", ">="):
        comparable = (_is_number(left) and _is_number(right)) or (
            isinstance(left, str) and isinstance(right, str)
        )
        if not comparable:
            raise JdlEvalError(f"cannot compare {left!r} {op} {right!r}")
        return {
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
        }[op]

    if op == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right
    if op in ("+", "-", "*", "/"):
        if not (_is_number(left) and _is_number(right)):
            raise JdlEvalError(f"arithmetic {op!r} requires numbers, got {left!r} and {right!r}")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            raise JdlEvalError("division by zero")
        result = left / right
        return int(result) if isinstance(left, int) and isinstance(right, int) and left % right == 0 else result

    raise JdlEvalError(f"unknown operator {op!r}")
