"""JDL abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

Expr = Union["Literal", "ListExpr", "Attribute", "Unary", "Binary"]


@dataclass(frozen=True)
class Literal:
    """A string, number or boolean constant."""

    value: Any

    def unparse(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return repr(self.value)


@dataclass(frozen=True)
class ListExpr:
    """A ``{e1, e2, ...}`` list (sandboxes, environment)."""

    items: tuple[Expr, ...]

    def unparse(self) -> str:
        return "{" + ", ".join(item.unparse() for item in self.items) + "}"


@dataclass(frozen=True)
class Attribute:
    """A dotted attribute reference: ``Executable`` or ``other.GlueCEName``.

    ``scope`` is empty for the job's own attributes and ``"other"`` for the
    matched machine's (the grid site's) attributes, per ClassAd convention.
    """

    name: str
    scope: str = ""

    def unparse(self) -> str:
        return f"{self.scope}.{self.name}" if self.scope else self.name


@dataclass(frozen=True)
class Unary:
    """``-expr`` or ``!expr``."""

    op: str
    operand: Expr

    def unparse(self) -> str:
        return f"{self.op}({self.operand.unparse()})"


@dataclass(frozen=True)
class Binary:
    """A binary operation; ``op`` is the source-level operator text."""

    op: str
    left: Expr
    right: Expr

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass
class JobDescription:
    """A parsed JDL document: ordered attribute → expression bindings.

    Attribute names are stored as given but looked up case-insensitively
    (``get``), matching gLite behaviour.
    """

    attributes: dict[str, Expr] = field(default_factory=dict)

    def get(self, name: str) -> Expr | None:
        lowered = name.lower()
        for key, expr in self.attributes.items():
            if key.lower() == lowered:
                return expr
        return None

    def get_value(self, name: str, default: Any = None) -> Any:
        """Shortcut: the literal/simple value of an attribute, if evaluable
        without a site context (used for Executable, sandboxes, VO...)."""
        from repro.grid.jdl.evaluator import evaluate

        expr = self.get(name)
        if expr is None:
            return default
        return evaluate(expr, job={k.lower(): v for k, v in self.attributes.items()})

    def unparse(self) -> str:
        lines = [f"  {name} = {expr.unparse()};" for name, expr in self.attributes.items()]
        return "[\n" + "\n".join(lines) + "\n]"
