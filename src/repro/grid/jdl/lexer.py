"""JDL lexer.

Produces a flat token stream with line/column positions. JDL is
case-insensitive for keywords (``true``/``FALSE``) and identifiers keep
their original spelling (attribute names are matched case-insensitively by
the evaluator, as in ClassAds).

Comments: ``//`` and ``#`` to end of line, ``/* ... */`` block comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.grid.jdl.errors import JdlSyntaxError


class TokenKind(Enum):
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    SEMICOLON = ";"
    COMMA = ","
    DOT = "."
    ASSIGN = "="
    # operators
    OR = "||"
    AND = "&&"
    EQ = "=="
    NE = "!="
    LE = "<="
    GE = ">="
    LT = "<"
    GT = ">"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    NOT = "!"
    # literals and names
    STRING = "string"
    NUMBER = "number"
    BOOLEAN = "boolean"
    IDENT = "ident"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: object = None
    line: int = 0
    column: int = 0

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}@{self.line}:{self.column})"


_PUNCTUATION = {
    "||": TokenKind.OR,
    "&&": TokenKind.AND,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMICOLON,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "=": TokenKind.ASSIGN,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "!": TokenKind.NOT,
}

_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}


class _Lexer:
    def __init__(self, source: str):
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> JdlSyntaxError:
        return JdlSyntaxError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.position < len(self.source):
                if self.source[self.position] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.position += 1

    def _skip_trivia(self) -> None:
        while self.position < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "#" or (char == "/" and self._peek(1) == "/"):
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        raise JdlSyntaxError("unterminated block comment", start_line, start_col)
                    self._advance()
                self._advance(2)
            else:
                return

    def _lex_string(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            char = self._peek()
            if not char or char == "\n":
                raise JdlSyntaxError("unterminated string literal", line, column)
            if char == '"':
                self._advance()
                return Token(TokenKind.STRING, "".join(chars), "".join(chars), line, column)
            if char == "\\":
                escape = self._peek(1)
                if escape not in _ESCAPES:
                    raise JdlSyntaxError(f"bad escape \\{escape}", self.line, self.column)
                chars.append(_ESCAPES[escape])
                self._advance(2)
            else:
                chars.append(char)
                self._advance()

    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        start = self.position
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (self._peek(1).isdigit() or (self._peek(1) in "+-" and self._peek(2).isdigit())):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.position]
        value: object = float(text) if is_float else int(text)
        return Token(TokenKind.NUMBER, text, value, line, column)

    def _lex_word(self) -> Token:
        line, column = self.line, self.column
        start = self.position
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.position]
        lowered = text.lower()
        if lowered in ("true", "false"):
            return Token(TokenKind.BOOLEAN, text, lowered == "true", line, column)
        return Token(TokenKind.IDENT, text, text, line, column)

    def tokens(self) -> list[Token]:
        result: list[Token] = []
        while True:
            self._skip_trivia()
            if self.position >= len(self.source):
                result.append(Token(TokenKind.EOF, "", None, self.line, self.column))
                return result
            char = self._peek()
            if char == '"':
                result.append(self._lex_string())
            elif char.isdigit():
                result.append(self._lex_number())
            elif char.isalpha() or char == "_":
                result.append(self._lex_word())
            else:
                two = char + self._peek(1)
                if two in _PUNCTUATION:
                    result.append(Token(_PUNCTUATION[two], two, None, self.line, self.column))
                    self._advance(2)
                elif char in _PUNCTUATION:
                    result.append(Token(_PUNCTUATION[char], char, None, self.line, self.column))
                    self._advance()
                else:
                    raise self.error(f"unexpected character {char!r}")


def tokenize(source: str) -> list[Token]:
    """Tokenize a JDL document (the EOF token is always last)."""
    return _Lexer(source).tokens()
