"""The resource broker: JDL in, matched-and-executed grid job out.

The broker mirrors the gLite WMS pipeline at laptop scale:

1. parse the JDL document;
2. authorize the submitter against the job's ``VirtualOrganisation``;
3. *match*: evaluate ``Requirements`` against every site that supports the
   VO (evaluation errors mean "no match", as in ClassAds);
4. *rank*: evaluate ``Rank`` (default: free CPUs) and pick the best site;
5. forward the job to the site's batch system with staged sandboxes;
6. track it through the gLite state ladder
   (``SUBMITTED → WAITING → READY → SCHEDULED → RUNNING → DONE``).
"""

from __future__ import annotations

import shlex
import threading
import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.batch import BatchJob, BatchJobState, JobResources
from repro.grid.jdl import evaluate, parse_jdl
from repro.grid.jdl.ast import JobDescription
from repro.grid.jdl.errors import JdlEvalError
from repro.grid.site import GridSite
from repro.grid.vo import VirtualOrganization, VoError


class GridError(Exception):
    """Submission-time failure (bad JDL, no VO, no matching site)."""


class GridJobState(str, Enum):
    """The gLite job state ladder (abridged to the states jobs visit here)."""

    SUBMITTED = "SUBMITTED"
    WAITING = "WAITING"
    READY = "READY"
    SCHEDULED = "SCHEDULED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    ABORTED = "ABORTED"
    CANCELLED = "CANCELLED"

    @property
    def terminal(self) -> bool:
        return self in (GridJobState.DONE, GridJobState.ABORTED, GridJobState.CANCELLED)


#: Map the backing batch job's state onto the grid ladder.
_BATCH_TO_GRID = {
    BatchJobState.QUEUED: GridJobState.SCHEDULED,
    BatchJobState.RUNNING: GridJobState.RUNNING,
    BatchJobState.COMPLETED: GridJobState.DONE,
    BatchJobState.FAILED: GridJobState.ABORTED,
    BatchJobState.CANCELLED: GridJobState.CANCELLED,
}


@dataclass(eq=False)
class GridJob:
    """One brokered job and its trace."""

    id: str
    description: JobDescription
    vo: str
    owner: str
    site_name: str = ""
    batch_job: BatchJob | None = None
    #: (state, note) pairs — the job's event trace, like ``glite-wms-job-status``.
    history: list[tuple[GridJobState, str]] = field(default_factory=list)

    @property
    def state(self) -> GridJobState:
        if self.batch_job is not None:
            return _BATCH_TO_GRID[self.batch_job.state]
        return self.history[-1][0] if self.history else GridJobState.SUBMITTED

    def record(self, state: GridJobState, note: str = "") -> None:
        self.history.append((state, note))

    @property
    def done_success(self) -> bool:
        return self.state is GridJobState.DONE

    def output_sandbox(self) -> dict[str, bytes]:
        """Collected output files (plus captured std streams), once terminal."""
        if self.batch_job is None or not self.batch_job.state.terminal:
            return {}
        sandbox = dict(self.batch_job.output_files)
        std_out_name = self.description.get_value("StdOutput", "")
        std_err_name = self.description.get_value("StdError", "")
        if std_out_name and std_out_name not in sandbox:
            sandbox[std_out_name] = self.batch_job.stdout.encode()
        if std_err_name and std_err_name not in sandbox:
            sandbox[std_err_name] = self.batch_job.stderr.encode()
        return sandbox

    @property
    def failure_reason(self) -> str:
        return self.batch_job.failure_reason if self.batch_job else ""

    def wait(self, timeout: float | None = None) -> "GridJob":
        if self.batch_job is not None:
            self.batch_job.wait(timeout)
        return self


class GridBroker:
    """Matchmaking front door of the simulated grid."""

    def __init__(self, sites: list[GridSite] | None = None):
        self._sites: dict[str, GridSite] = {}
        self._vos: dict[str, VirtualOrganization] = {}
        self._jobs: dict[str, GridJob] = {}
        self._lock = threading.Lock()
        for site in sites or []:
            self.add_site(site)

    # ------------------------------------------------------------- setup

    def add_site(self, site: GridSite) -> None:
        with self._lock:
            if site.name in self._sites:
                raise ValueError(f"duplicate site {site.name!r}")
            self._sites[site.name] = site

    def add_vo(self, vo: VirtualOrganization) -> None:
        with self._lock:
            self._vos[vo.name] = vo

    @property
    def sites(self) -> list[GridSite]:
        with self._lock:
            return list(self._sites.values())

    def shutdown(self) -> None:
        for site in self.sites:
            site.shutdown()

    # ------------------------------------------------------- submission

    def submit(
        self,
        jdl: str | JobDescription,
        owner: str,
        input_sandbox: dict[str, bytes] | None = None,
        walltime: float = 600.0,
    ) -> GridJob:
        """Broker and launch one job; returns immediately with the handle.

        ``input_sandbox`` maps sandbox file names (which must be declared in
        the JDL ``InputSandbox`` list) to their contents — the client-side
        files gLite would upload.
        """
        description = parse_jdl(jdl) if isinstance(jdl, str) else jdl
        job = GridJob(
            id="g-" + uuid.uuid4().hex[:12],
            description=description,
            vo=str(description.get_value("VirtualOrganisation", "") or ""),
            owner=owner,
        )
        job.record(GridJobState.SUBMITTED, "accepted by broker")
        if not job.vo:
            raise GridError("JDL must declare a VirtualOrganisation")
        vo = self._vos.get(job.vo)
        if vo is None:
            raise GridError(f"unknown virtual organisation {job.vo!r}")
        try:
            vo.authorize(owner)
        except VoError as exc:
            raise GridError(str(exc)) from exc

        job.record(GridJobState.WAITING, "matchmaking")
        site = self._match(description, job.vo)
        if site is None:
            raise GridError(f"no site matches the job requirements for VO {job.vo!r}")
        job.site_name = site.name
        job.record(GridJobState.READY, f"matched site {site.name}")

        batch_job = self._to_batch_job(description, input_sandbox or {}, walltime)
        site.cluster.qsub(batch_job)
        job.batch_job = batch_job
        job.record(GridJobState.SCHEDULED, f"forwarded to {site.name} as {batch_job.id}")
        with self._lock:
            self._jobs[job.id] = job
        return job

    def status(self, job_id: str) -> GridJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise GridError(f"unknown grid job {job_id!r}")
        return job

    def cancel(self, job_id: str) -> None:
        job = self.status(job_id)
        if job.batch_job is not None and not job.batch_job.state.terminal:
            site = self._sites[job.site_name]
            site.cluster.qdel(job.batch_job.id)
        job.record(GridJobState.CANCELLED, "cancelled by user")

    # --------------------------------------------------------- internals

    def _match(self, description: JobDescription, vo_name: str) -> GridSite | None:
        requirements = description.get("Requirements")
        rank_expr = description.get("Rank")
        job_env = {name.lower(): expr for name, expr in description.attributes.items()}
        best: tuple[float, GridSite] | None = None
        for site in self.sites:
            if not site.supports_vo(vo_name):
                continue
            attributes = site.attributes_now()
            if requirements is not None:
                try:
                    if evaluate(requirements, site=attributes, job=job_env) is not True:
                        continue
                except JdlEvalError:
                    continue
            if rank_expr is not None:
                try:
                    rank = float(evaluate(rank_expr, site=attributes, job=job_env))
                except (JdlEvalError, TypeError, ValueError):
                    rank = float("-inf")
            else:
                rank = float(attributes.get("GlueCEStateFreeCPUs", 0))
            if best is None or rank > best[0]:
                best = (rank, site)
        return best[1] if best else None

    @staticmethod
    def _to_batch_job(
        description: JobDescription,
        input_sandbox: dict[str, bytes],
        walltime: float,
    ) -> BatchJob:
        executable = description.get_value("Executable")
        if not executable:
            raise GridError("JDL must declare an Executable")
        arguments = str(description.get_value("Arguments", "") or "")
        declared_inputs = description.get_value("InputSandbox", []) or []
        declared_outputs = description.get_value("OutputSandbox", []) or []
        for name in input_sandbox:
            if name not in declared_inputs:
                raise GridError(f"sandbox file {name!r} not declared in InputSandbox")
        missing = [name for name in declared_inputs if name not in input_sandbox]
        if missing:
            raise GridError(f"InputSandbox files not provided: {missing}")
        std_out = description.get_value("StdOutput", "")
        std_err = description.get_value("StdError", "")
        stage_out = [
            name
            for name in declared_outputs
            if name not in (std_out, std_err)  # std streams are captured anyway
        ]
        try:
            cpus = int(description.get_value("CpuNumber", 1) or 1)
        except (TypeError, ValueError) as exc:
            raise GridError(f"bad CpuNumber: {exc}") from exc
        return BatchJob(
            name=str(description.get_value("JobName", "grid-job") or "grid-job"),
            command=[str(executable), *shlex.split(arguments)],
            stage_in=dict(input_sandbox),
            stage_out=stage_out,
            resources=JobResources(ppn=max(1, cpus), walltime=walltime),
        )
