"""Virtual organizations: the grid's access-control grouping.

A grid job carries a ``VirtualOrganisation`` attribute; only sites that
support that VO are candidates, and only credentials belonging to a member
of the VO may submit. Membership is by identity string (a certificate
distinguished name or an OpenID identifier — see :mod:`repro.security`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class VoError(Exception):
    """VO authorization failure."""


@dataclass
class VirtualOrganization:
    """A named community of users allowed to use a set of grid resources."""

    name: str
    members: set[str] = field(default_factory=set)

    def add_member(self, identity: str) -> None:
        self.members.add(identity)

    def remove_member(self, identity: str) -> None:
        self.members.discard(identity)

    def is_member(self, identity: str) -> bool:
        return identity in self.members

    def authorize(self, identity: str) -> None:
        """Raise :class:`VoError` unless ``identity`` belongs to this VO."""
        if not self.is_member(identity):
            raise VoError(f"identity {identity!r} is not a member of VO {self.name!r}")
