"""A gLite-like grid infrastructure (substrate).

The paper's Grid adapter submits jobs "to the European Grid Infrastructure,
which is based on gLite middleware". This subpackage is the offline
stand-in: several grid *sites* (each backed by a
:class:`~repro.batch.Cluster`), *virtual organizations* gating access, and
a *resource broker* that parses ClassAd-style JDL job descriptions —
implemented as a proper little language (lexer, recursive-descent parser,
AST, evaluator) in :mod:`repro.grid.jdl` — evaluates each job's
``Requirements`` expression against site attributes, ranks the matches and
forwards the job to the chosen site's batch system.
"""

from repro.grid.broker import GridBroker, GridJob, GridJobState
from repro.grid.jdl import JdlError, evaluate, parse_jdl
from repro.grid.site import GridSite
from repro.grid.vo import VirtualOrganization

__all__ = [
    "GridBroker",
    "GridJob",
    "GridJobState",
    "GridSite",
    "JdlError",
    "VirtualOrganization",
    "evaluate",
    "parse_jdl",
]
