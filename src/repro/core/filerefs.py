"""File references: passing large parameter values by URI.

The unified interface lets any input or output value "contain identifiers
of file resources" (paper §2). The platform's convention for such an
identifier is a small JSON envelope::

    {"$file": "<absolute URI of the file resource>",
     "name": "matrix.json",          # optional display name
     "size": 1048576,                 # optional content length
     "contentType": "application/json"}

Adapters resolve references by fetching the URI through the transport
registry, so a file may live on any service in the federation — including
a job of another service, which is exactly how workflow data flows.
"""

from __future__ import annotations

from typing import Any

#: JSON Schema describing the reference envelope itself. Services whose
#: parameters are inherently file-valued can use this as the parameter
#: schema; validation of a reference then needs no special-casing.
FILE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["$file"],
    "properties": {
        "$file": {"type": "string", "minLength": 1},
        "name": {"type": "string"},
        "size": {"type": "integer", "minimum": 0},
        "contentType": {"type": "string"},
    },
    "format": "file",
}


def is_file_ref(value: Any) -> bool:
    """Whether ``value`` is a file-reference envelope."""
    return isinstance(value, dict) and isinstance(value.get("$file"), str)


def make_file_ref(
    uri: str,
    name: str = "",
    size: int | None = None,
    content_type: str = "",
) -> dict[str, Any]:
    """Build a file-reference envelope for ``uri``."""
    reference: dict[str, Any] = {"$file": uri}
    if name:
        reference["name"] = name
    if size is not None:
        reference["size"] = size
    if content_type:
        reference["contentType"] = content_type
    return reference


def file_uri(reference: dict[str, Any]) -> str:
    """Extract the URI from a reference envelope."""
    if not is_file_ref(reference):
        raise ValueError(f"not a file reference: {reference!r}")
    return reference["$file"]
