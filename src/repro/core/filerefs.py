"""File references: passing large parameter values by URI.

The unified interface lets any input or output value "contain identifiers
of file resources" (paper §2). The platform's convention for such an
identifier is a small JSON envelope::

    {"$file": "<absolute URI of the file resource>",
     "name": "matrix.json",          # optional display name
     "size": 1048576,                 # optional content length
     "contentType": "application/json"}

Adapters resolve references by fetching the URI through the transport
registry, so a file may live on any service in the federation — including
a job of another service, which is exactly how workflow data flows.

Blob references are file references with a content address: the envelope
additionally carries the blob's manifest digest under ``$blob``::

    {"$blob": "<sha256 of the content>",
     "$file": "<URI of the blob resource on its owning container>",
     "size": 104857600,
     "contentType": "application/octet-stream"}

The ``$file`` URI keeps blob refs backward compatible (any consumer that
only understands file refs just fetches the URI), while the digest lets
fingerprinting resolve the value *without fetching* and lets consumers
stage the content chunk-wise from the owning container's blob store.
"""

from __future__ import annotations

from typing import Any, Iterator

#: JSON Schema describing the reference envelope itself. Services whose
#: parameters are inherently file-valued can use this as the parameter
#: schema; validation of a reference then needs no special-casing.
FILE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["$file"],
    "properties": {
        "$file": {"type": "string", "minLength": 1},
        "name": {"type": "string"},
        "size": {"type": "integer", "minimum": 0},
        "contentType": {"type": "string"},
    },
    "format": "file",
}


def is_file_ref(value: Any) -> bool:
    """Whether ``value`` is a file-reference envelope."""
    return isinstance(value, dict) and isinstance(value.get("$file"), str)


def make_file_ref(
    uri: str,
    name: str = "",
    size: int | None = None,
    content_type: str = "",
) -> dict[str, Any]:
    """Build a file-reference envelope for ``uri``."""
    reference: dict[str, Any] = {"$file": uri}
    if name:
        reference["name"] = name
    if size is not None:
        reference["size"] = size
    if content_type:
        reference["contentType"] = content_type
    return reference


def file_uri(reference: dict[str, Any]) -> str:
    """Extract the URI from a reference envelope."""
    if not is_file_ref(reference):
        raise ValueError(f"not a file reference: {reference!r}")
    return reference["$file"]


def is_blob_ref(value: Any) -> bool:
    """Whether ``value`` is a content-addressed blob reference."""
    return isinstance(value, dict) and isinstance(value.get("$blob"), str) and bool(value["$blob"])


def blob_digest(reference: dict[str, Any]) -> str:
    """Extract the content digest from a blob-reference envelope."""
    if not is_blob_ref(reference):
        raise ValueError(f"not a blob reference: {reference!r}")
    return reference["$blob"]


def make_blob_ref(
    digest: str,
    uri: str,
    name: str = "",
    size: int | None = None,
    content_type: str = "",
) -> dict[str, Any]:
    """Build a blob-reference envelope (a file ref carrying its digest)."""
    reference = make_file_ref(uri, name=name, size=size, content_type=content_type)
    reference["$blob"] = digest
    return reference


def iter_blob_digests(value: Any) -> Iterator[str]:
    """Yield every blob digest referenced anywhere inside ``value``.

    Used for pin bookkeeping: a job pins the blobs its inputs and results
    reference for as long as the job exists.
    """
    if is_blob_ref(value):
        yield value["$blob"]
        return
    if isinstance(value, dict):
        for item in value.values():
            yield from iter_blob_digests(item)
    elif isinstance(value, list):
        for item in value:
            yield from iter_blob_digests(item)
