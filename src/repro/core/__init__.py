"""The unified REST API of a computational web service (paper §2, Table 1).

This is MathCloud's primary contribution: one fixed remote interface that
every computational service implements, regardless of what runs behind it.

- :mod:`repro.core.description` — service descriptions: named input/output
  parameters, each described by JSON Schema (introspection support).
- :mod:`repro.core.jobs` — asynchronous jobs with the paper's state machine
  (``WAITING``/``RUNNING``/``DONE`` plus failure states) and a thread-safe
  store.
- :mod:`repro.core.files` — file resources subordinate to jobs; large
  parameter values travel by reference (:mod:`repro.core.filerefs`).
- :mod:`repro.core.api` — mounts the Table 1 resource/method matrix onto a
  :class:`~repro.http.app.RestApp` for any object implementing the
  :class:`~repro.core.api.ServiceBackend` protocol.
"""

from repro.core.api import ServiceBackend, mount_service
from repro.core.description import Parameter, ServiceDescription
from repro.core.errors import BadInputError, JobNotFoundError, ServiceError
from repro.core.filerefs import FILE_SCHEMA, file_uri, is_file_ref, make_file_ref
from repro.core.files import FileEntry, FileStore
from repro.core.jobs import Job, JobState, JobStore

__all__ = [
    "BadInputError",
    "FILE_SCHEMA",
    "FileEntry",
    "FileStore",
    "Job",
    "JobNotFoundError",
    "JobState",
    "JobStore",
    "Parameter",
    "ServiceBackend",
    "ServiceDescription",
    "ServiceError",
    "file_uri",
    "is_file_ref",
    "make_file_ref",
    "mount_service",
]
