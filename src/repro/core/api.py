"""Mounting the Table 1 resource/method matrix onto a REST application.

=========  =======================  ===========================  =====================
Resource   GET                      POST                         DELETE
=========  =======================  ===========================  =====================
Service    service description      submit request (create job)  —
Job        job status and results   —                            cancel job / delete data
File       file data (ranged)       —                            —
=========  =======================  ===========================  =====================

Any object implementing :class:`ServiceBackend` — the container's deployed
services, the workflow management service's composite services — gets the
exact same wire interface from :func:`mount_service`. That uniformity is
what makes MathCloud services interoperable and composable.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Protocol

from repro.core.errors import ServiceError
from repro.core.files import FileEntry
from repro.core.jobs import Job, job_document
from repro.http.app import DEFER_CAPABILITY, RestApp
from repro.http.client import IDEMPOTENCY_KEY_HEADER, X_CACHE_HEADER
from repro.http.messages import HttpError, Request, Response
from repro.runtime.trace import build_trace_tree


class ServiceBackend(Protocol):
    """What a computational service must provide to be mounted."""

    def describe(self) -> dict[str, Any]:
        """The JSON service description (``GET`` on the service resource)."""
        ...

    def submit(self, inputs: dict[str, Any], request: Request) -> Job:
        """Create a job for ``inputs``; may complete it synchronously."""
        ...

    def get_job(self, job_id: str) -> Job: ...

    def delete_job(self, job_id: str) -> None:
        """Cancel a live job, or delete a finished job and its files."""
        ...

    def get_file(self, job_id: str, file_id: str) -> FileEntry: ...


#: Upper bound on one long-poll block. Kept below the default client-side
#: socket timeout (30 s) so a ``?wait=`` request can never look like a dead
#: connection; clients needing longer waits chain requests.
MAX_LONG_POLL = 25.0


def parse_wait(raw: "str | None") -> float:
    """The ``?wait=`` query parameter as a bounded number of seconds.

    ``0`` (or absence) means an immediate snapshot, preserving the
    paper's plain polling semantics; invalid values are a client error.
    """
    if raw is None or raw == "":
        return 0.0
    try:
        seconds = float(raw)
    except ValueError as exc:
        raise HttpError(400, f"invalid wait parameter {raw!r}: expected seconds") from exc
    if seconds < 0:
        raise HttpError(400, f"invalid wait parameter {raw!r}: must be >= 0")
    return min(seconds, MAX_LONG_POLL)


class SubmitLedger:
    """Single-flight Idempotency-Key → job-id map for one mounted service.

    A POST that carries an ``Idempotency-Key`` creates at most one job per
    key *on this backend*: a repeat of an already-accepted key answers
    with the original job, and a duplicate racing an in-flight first
    attempt waits for its outcome instead of creating a second job. This
    is the backend half of the end-to-end at-most-once story — it is what
    makes a gateway's (or a client's) replay of an ambiguous POST safe.

    Entries are a bounded LRU; a key whose job has since been deleted is
    forgotten, so deliberate resubmission after cleanup still works.
    """

    def __init__(self, capacity: int = 1024, pending_timeout: float = 30.0):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.pending_timeout = pending_timeout
        self._cond = threading.Condition(threading.Lock())
        self._pending: set[str] = set()
        self._jobs: "OrderedDict[str, str]" = OrderedDict()

    def claim(self, key: str) -> "tuple[str | None, bool]":
        """Returns ``(job_id, owner)``: a recorded job id to replay, or
        ownership of the key (the caller must finish with :meth:`store` or
        :meth:`release`). ``(None, False)`` means an in-flight first
        attempt held the key past ``pending_timeout``."""
        deadline = time.monotonic() + self.pending_timeout
        with self._cond:
            while True:
                job_id = self._jobs.get(key)
                if job_id is not None:
                    self._jobs.move_to_end(key)
                    return job_id, False
                if key not in self._pending:
                    self._pending.add(key)
                    return None, True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None, False
                self._cond.wait(remaining)

    def store(self, key: str, job_id: str) -> None:
        with self._cond:
            self._jobs[key] = job_id
            self._jobs.move_to_end(key)
            while len(self._jobs) > self.capacity:
                self._jobs.popitem(last=False)
            self._pending.discard(key)
            self._cond.notify_all()

    def release(self, key: str) -> None:
        """Abandon a claim whose submit failed; a waiter inherits the key."""
        with self._cond:
            if key in self._pending:
                self._pending.discard(key)
                self._cond.notify_all()

    def forget(self, key: str) -> None:
        """Drop a recorded key (its job was deleted)."""
        with self._cond:
            self._jobs.pop(key, None)

    @property
    def pending_count(self) -> int:
        with self._cond:
            return len(self._pending)

    def __len__(self) -> int:
        with self._cond:
            return len(self._jobs)


def representation_etag(representation: dict[str, Any]) -> str:
    """A strong validator over a JSON representation: the hash of its
    canonical serialization, so any observable change changes the tag.

    (Hashed inline rather than via :mod:`repro.cache` — the core layer
    must not depend on the caching layer, which builds on it.)
    """
    canonical = json.dumps(
        representation, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )
    return '"' + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32] + '"'


def etag_matches(if_none_match: str, etag: str) -> bool:
    """RFC 9110 ``If-None-Match`` evaluation (weak comparison)."""
    candidates = [candidate.strip() for candidate in if_none_match.split(",")]
    stripped = etag[2:] if etag.startswith("W/") else etag
    for candidate in candidates:
        if candidate == "*":
            return True
        if (candidate[2:] if candidate.startswith("W/") else candidate) == stripped:
            return True
    return False


def job_uri(base_uri: str, job_id: str) -> str:
    return f"{base_uri}/jobs/{job_id}"


def file_uri_for(base_uri: str, job_id: str, file_id: str) -> str:
    return f"{job_uri(base_uri, job_id)}/files/{file_id}"


def _to_http_error(error: ServiceError) -> HttpError:
    return HttpError(error.http_status, error.message, details=error.details,
                     retry_after=getattr(error, "retry_after", None))


def mount_service(
    app: RestApp,
    base_path: str,
    backend: ServiceBackend,
    base_uri: "str | Callable[[], str]" = "",
    ledger: "SubmitLedger | None" = None,
    tracer: Any = None,
) -> None:
    """Wire the unified REST API for ``backend`` under ``base_path``.

    ``base_uri`` is the absolute URI prefix advertised in representations
    (job/file links); it defaults to the relative ``base_path``. A callable
    may be passed when the public address is not fixed yet (a container's
    advertised URI switches from ``local://`` to ``http://`` once served).
    ``ledger`` lets the mounter supply a pre-seeded submit ledger — after
    a cold restart the recovered ``Idempotency-Key`` → job bindings go in
    here, so a client replaying an acknowledged POST still gets its
    original job instead of creating a duplicate. ``tracer`` (the
    process's span buffer) additionally mounts ``GET …/jobs/{id}/trace``,
    the job's timing tree.
    """

    ledger = ledger if ledger is not None else SubmitLedger()

    def _advertised() -> str:
        current = base_uri() if callable(base_uri) else base_uri
        return (current or base_path).rstrip("/")

    def describe(request: Request) -> Response:
        document = dict(backend.describe())
        document["uri"] = _advertised()
        return Response.json(document)

    def _created(job: Job, replayed: bool = False, cache_status: "str | None" = None) -> Response:
        location = job_uri(_advertised(), job.id)
        response = Response.created(location, job.representation(uri=location))
        if replayed:
            response.headers.set("Idempotent-Replay", "true")
        if cache_status:
            response.headers.set(X_CACHE_HEADER, cache_status)
        return response

    def submit(request: Request) -> Response:
        inputs = request.json if request.body else {}
        key = request.headers.get(IDEMPOTENCY_KEY_HEADER)
        if not key:
            try:
                job = backend.submit(inputs, request)
            except ServiceError as error:
                raise _to_http_error(error) from error
            return _created(job, cache_status=request.context.get("cache_status"))
        while True:
            job_id, owner = ledger.claim(key)
            if job_id is None:
                break
            try:
                return _created(backend.get_job(job_id), replayed=True)
            except ServiceError:
                # the recorded job was deleted since; treat the key as new
                ledger.forget(key)
        if not owner:
            return HttpError(
                503, f"a request with Idempotency-Key {key!r} is still in flight",
                retry_after=1.0,
            ).to_response()
        try:
            job = backend.submit(inputs, request)
        except ServiceError as error:
            ledger.release(key)
            raise _to_http_error(error) from error
        except BaseException:
            ledger.release(key)
            raise
        ledger.store(key, job.id)
        return _created(job, cache_status=request.context.get("cache_status"))

    def get_job(request: Request, job_id: str) -> Response:
        """Job status; ``?wait=<seconds>`` turns the GET into a long-poll.

        On a blocking transport (threaded server, local transport) the
        handler blocks on the job's condition variable until the first
        terminal transition (answering in the same round-trip) or until
        the wait expires (answering with the current representation). On
        the event-loop server the same wait costs no thread: the handler
        raises the transport's deferral, parking the connection on the
        job's transition observers, and the representation is rendered
        when the job settles or the wait expires. The wire behaviour is
        identical either way.
        """
        try:
            job = backend.get_job(job_id)
        except ServiceError as error:
            raise _to_http_error(error) from error

        def render() -> Response:
            representation = job.representation(uri=job_uri(_advertised(), job_id))
            etag = representation_etag(representation)
            if_none_match = request.headers.get("If-None-Match")
            if if_none_match and etag_matches(if_none_match, etag):
                # the poller already holds this exact representation: spare
                # the body (304s answer identically over every transport)
                response = Response(status=304, body=b"")
            else:
                response = Response.json(representation)
            response.headers.set("ETag", etag)
            return response

        wait_seconds = parse_wait(request.query.get("wait"))
        if wait_seconds > 0 and not job.state.terminal:
            deferral = request.context.get(DEFER_CAPABILITY)
            if deferral is not None:

                def park(resume: Callable[[], None]) -> None:
                    # fires immediately (on this thread) if the job went
                    # terminal since the check above — resume is idempotent
                    job.subscribe(
                        lambda _job, state: resume() if state.terminal else None
                    )

                raise deferral(render=render, park=park, timeout=wait_seconds)
            job.wait(timeout=wait_seconds)
        return render()

    def delete_job(request: Request, job_id: str) -> Response:
        try:
            backend.delete_job(job_id)
        except ServiceError as error:
            raise _to_http_error(error) from error
        return Response.no_content()

    def get_file(request: Request, job_id: str, file_id: str) -> Response:
        try:
            entry = backend.get_file(job_id, file_id)
        except ServiceError as error:
            raise _to_http_error(error) from error
        span = request.byte_range(entry.size)
        response = Response(status=200, body=entry.content)
        response.headers.set("Content-Type", entry.content_type)
        response.headers.set("Accept-Ranges", "bytes")
        if entry.name:
            response.headers.set("Content-Disposition", f'attachment; filename="{entry.name}"')
        if span is not None:
            start, end = span
            response.status = 206
            response.body = entry.content[start : end + 1]
            response.headers.set("Content-Range", f"bytes {start}-{end}/{entry.size}")
        return response

    def list_jobs(request: Request) -> Response:
        """The service's job index in journal form (the drain protocol's
        source side: a gateway enumerates a retiring replica's jobs here
        before handing them to the ring successor)."""
        lister = getattr(backend, "list_jobs", None)
        if lister is None:
            raise HttpError(404, "this service does not expose a job index")
        documents = [job_document(job) for job in lister()]
        return Response.json({"service": backend.describe().get("name"),
                              "count": len(documents), "jobs": documents})

    def import_job(request: Request, job_id: str) -> Response:
        """Adopt a handed-off job document under its original id.

        An action subresource rather than a PUT on the job itself, so
        the public job resource keeps its Table 1 method matrix.
        Idempotent: re-importing an id that already exists answers 200
        with the existing job; a first import answers 201. The imported
        ``Idempotency-Key`` binding is seeded into the submit ledger, so
        a client replay of the original POST binds to the migrated job on
        this backend exactly as it would have on the retired one.
        """
        importer = getattr(backend, "import_job", None)
        if importer is None:
            raise HttpError(404, "this service does not accept job imports")
        document = request.json if request.body else {}
        if not isinstance(document, dict):
            raise HttpError(400, "job import body must be a JSON object")
        declared = document.get("id")
        if declared is not None and declared != job_id:
            raise HttpError(409, f"document id {declared!r} does not match URI id {job_id!r}")
        document = dict(document, id=job_id)
        try:
            job, created = importer(document)
        except ServiceError as error:
            raise _to_http_error(error) from error
        if job.idempotency_key:
            ledger.store(job.idempotency_key, job.id)
        location = job_uri(_advertised(), job.id)
        response = Response.json(
            job.representation(uri=location), status=201 if created else 200
        )
        response.headers.set("Location", location)
        return response

    def get_trace(request: Request, job_id: str) -> Response:
        """The job's recorded trace spans, flat and as a nested tree.

        404 when the job exists but carries no trace (created before
        observability was enabled, or through an untraced path); the
        flat ``spans`` list is what a fronting gateway merges with its
        own spans before rebuilding the tree.
        """
        try:
            job = backend.get_job(job_id)
        except ServiceError as error:
            raise _to_http_error(error) from error
        trace_id = getattr(job, "trace_id", None)
        if tracer is None or trace_id is None:
            raise HttpError(404, f"no trace recorded for job {job_id!r}")
        spans = tracer.spans(trace_id)
        return Response.json(
            {"trace_id": trace_id, "spans": spans, "tree": build_trace_tree(spans)}
        )

    app.route("GET", base_path, describe)
    app.route("POST", base_path, submit)
    app.route("GET", f"{base_path}/jobs", list_jobs)
    app.route("GET", f"{base_path}/jobs/{{job_id}}", get_job)
    app.route("POST", f"{base_path}/jobs/{{job_id}}/import", import_job)
    app.route("DELETE", f"{base_path}/jobs/{{job_id}}", delete_job)
    app.route("GET", f"{base_path}/jobs/{{job_id}}/trace", get_trace)
    app.route("GET", f"{base_path}/jobs/{{job_id}}/files/{{file_id}}", get_file)


def unmount_service(app: RestApp, base_path: str) -> int:
    """Remove every route mounted under ``base_path``."""
    return app.router.remove_prefix(base_path)
