"""Service descriptions: the introspection half of the unified interface.

A computational service advertises its problem contract — named input and
output parameters, each described by JSON Schema — through ``GET`` on the
service resource. Clients, the catalogue and the workflow editor all build
on this description (the editor, for instance, generates a block's ports
from it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.errors import BadInputError, ConfigurationError
from repro.core.filerefs import is_file_ref
from repro.jsonschema import SchemaError, ValidationError, check_schema, validate

#: Service names become URI path segments, so keep them URL-safe.
_NAME_ALPHABET = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.")


def check_service_name(name: str) -> str:
    """Validate a service name; returns it unchanged for chaining."""
    if not name or not set(name) <= _NAME_ALPHABET:
        raise ConfigurationError(
            f"invalid service name {name!r}: use letters, digits, '-', '_' and '.'"
        )
    return name


@dataclass
class Parameter:
    """One named input or output parameter of a computational service."""

    name: str
    schema: dict[str, Any] | bool = True
    title: str = ""
    required: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("parameter name must be non-empty")
        try:
            check_schema(self.schema)
        except SchemaError as exc:
            raise ConfigurationError(f"parameter {self.name!r}: {exc}") from exc

    def to_json(self) -> dict[str, Any]:
        document: dict[str, Any] = {"schema": self.schema}
        if self.title:
            document["title"] = self.title
        if not self.required:
            document["required"] = False
        if self.default is not None:
            document["default"] = self.default
        return document

    @classmethod
    def from_json(cls, name: str, document: dict[str, Any]) -> "Parameter":
        if not isinstance(document, dict):
            raise ConfigurationError(f"parameter {name!r} description must be an object")
        return cls(
            name=name,
            schema=document.get("schema", True),
            title=document.get("title", ""),
            required=document.get("required", True),
            default=document.get("default"),
        )


@dataclass
class ServiceDescription:
    """The public description served at the service resource (``GET``)."""

    name: str
    title: str = ""
    description: str = ""
    inputs: list[Parameter] = field(default_factory=list)
    outputs: list[Parameter] = field(default_factory=list)
    tags: list[str] = field(default_factory=list)
    version: str = ""

    def __post_init__(self) -> None:
        check_service_name(self.name)
        for group_name, group in (("inputs", self.inputs), ("outputs", self.outputs)):
            seen: set[str] = set()
            for parameter in group:
                if parameter.name in seen:
                    raise ConfigurationError(
                        f"duplicate {group_name} parameter {parameter.name!r} in service {self.name!r}"
                    )
                seen.add(parameter.name)

    def input(self, name: str) -> Parameter:
        return self._find(self.inputs, name, "input")

    def output(self, name: str) -> Parameter:
        return self._find(self.outputs, name, "output")

    @staticmethod
    def _find(group: Iterable[Parameter], name: str, kind: str) -> Parameter:
        for parameter in group:
            if parameter.name == name:
                return parameter
        raise KeyError(f"no {kind} parameter {name!r}")

    def validate_inputs(self, values: dict[str, Any]) -> dict[str, Any]:
        """Check a request's input values against this description.

        Returns a normalized copy: defaults applied for absent optional
        parameters. Raises :class:`BadInputError` listing every problem at
        once — clients get one actionable message rather than a drip.

        File references are structural values (``{"$file": uri}``); they are
        accepted for any parameter since the referenced content, not the
        reference envelope, is what the parameter schema describes.
        """
        if not isinstance(values, dict):
            raise BadInputError("input parameters must be a JSON object")
        problems: list[str] = []
        known = {parameter.name for parameter in self.inputs}
        for name in values:
            if name not in known:
                problems.append(f"unknown input parameter {name!r}")
        normalized: dict[str, Any] = {}
        for parameter in self.inputs:
            if parameter.name in values:
                value = values[parameter.name]
                if not is_file_ref(value):
                    try:
                        validate(value, parameter.schema)
                    except ValidationError as exc:
                        problems.append(f"input {parameter.name!r}: {exc}")
                normalized[parameter.name] = value
            elif parameter.default is not None:
                normalized[parameter.name] = parameter.default
            elif parameter.required:
                problems.append(f"missing required input parameter {parameter.name!r}")
        if problems:
            raise BadInputError(
                f"invalid request to service {self.name!r}", details=problems
            )
        return normalized

    def to_json(self) -> dict[str, Any]:
        document: dict[str, Any] = {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "inputs": {p.name: p.to_json() for p in self.inputs},
            "outputs": {p.name: p.to_json() for p in self.outputs},
        }
        if self.tags:
            document["tags"] = list(self.tags)
        if self.version:
            document["version"] = self.version
        return document

    @classmethod
    def from_json(cls, document: dict[str, Any]) -> "ServiceDescription":
        if not isinstance(document, dict) or "name" not in document:
            raise ConfigurationError("service description must be an object with a 'name'")
        return cls(
            name=document["name"],
            title=document.get("title", ""),
            description=document.get("description", ""),
            inputs=[
                Parameter.from_json(name, spec)
                for name, spec in document.get("inputs", {}).items()
            ],
            outputs=[
                Parameter.from_json(name, spec)
                for name, spec in document.get("outputs", {}).items()
            ],
            tags=list(document.get("tags", [])),
            version=document.get("version", ""),
        )
