"""File resources: the third resource type of the unified interface.

A file resource represents "a part of client request or job result provided
as a remote file" (paper §2). Files are subordinate to jobs — deleting a
job destroys its files — and their content is retrievable fully or
partially via ``GET`` (byte ranges).

The store keeps content in memory; the platform's files are job-scoped and
transient, and an in-memory store keeps single-process federations (tests,
benchmarks) hermetic.
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass, field

from repro.core.errors import FileNotFoundError_


def new_file_id() -> str:
    return "f-" + uuid.uuid4().hex[:12]


@dataclass
class FileEntry:
    """One stored file: content plus the metadata served with it."""

    content: bytes
    name: str = ""
    content_type: str = "application/octet-stream"
    job_id: str = ""
    id: str = field(default_factory=new_file_id)

    @property
    def size(self) -> int:
        return len(self.content)


class FileStore:
    """Thread-safe file storage for one service, indexed by job."""

    def __init__(self) -> None:
        self._files: dict[str, FileEntry] = {}
        self._by_job: dict[str, list[str]] = {}
        self._lock = threading.Lock()

    def put(
        self,
        content: bytes,
        job_id: str,
        name: str = "",
        content_type: str = "application/octet-stream",
    ) -> FileEntry:
        """Store ``content`` as a new file subordinate to ``job_id``."""
        entry = FileEntry(content=content, name=name, content_type=content_type, job_id=job_id)
        with self._lock:
            self._files[entry.id] = entry
            self._by_job.setdefault(job_id, []).append(entry.id)
        return entry

    def get(self, file_id: str, job_id: str | None = None) -> FileEntry:
        """Fetch a file; with ``job_id``, enforce the subordination check."""
        with self._lock:
            entry = self._files.get(file_id)
        if entry is None or (job_id is not None and entry.job_id != job_id):
            raise FileNotFoundError_(f"no file {file_id!r}" + (f" under job {job_id!r}" if job_id else ""))
        return entry

    def delete_job_files(self, job_id: str) -> int:
        """Destroy every file subordinate to ``job_id``; returns the count."""
        with self._lock:
            ids = self._by_job.pop(job_id, [])
            for file_id in ids:
                self._files.pop(file_id, None)
        return len(ids)

    def job_files(self, job_id: str) -> list[FileEntry]:
        with self._lock:
            return [self._files[i] for i in self._by_job.get(job_id, []) if i in self._files]

    def __len__(self) -> int:
        with self._lock:
            return len(self._files)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(entry.size for entry in self._files.values())
