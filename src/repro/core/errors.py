"""Error types shared across the platform's service-side components."""

from __future__ import annotations

from typing import Any


class ServiceError(Exception):
    """Base class for errors raised while operating a computational service."""

    http_status = 500

    def __init__(self, message: str, details: Any = None):
        super().__init__(message)
        self.message = message
        self.details = details


class BadInputError(ServiceError):
    """A request's input parameters are missing or fail schema validation."""

    http_status = 422


class JobNotFoundError(ServiceError):
    """A job (or one of its subordinate files) does not exist."""

    http_status = 404


class FileNotFoundError_(ServiceError):
    """A file resource does not exist under the addressed job."""

    http_status = 404


class JobStateError(ServiceError):
    """An operation is incompatible with the job's current state."""

    http_status = 409


class ConfigurationError(ServiceError):
    """A service configuration is malformed or inconsistent."""

    http_status = 400


class AdapterError(ServiceError):
    """Request processing failed inside an adapter or its backend."""

    http_status = 500


class QuotaExceededError(ServiceError):
    """The billing tenant has exhausted a CPU or disk quota."""

    http_status = 429
    retry_after = 5.0


class BacklogFullError(ServiceError):
    """The billing tenant's fair-share backlog is at its bound."""

    http_status = 429
    retry_after = 1.0
