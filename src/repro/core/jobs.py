"""Jobs: asynchronous request processing with the paper's state machine.

A client's ``POST`` to the service resource creates a subordinate *job*
resource. The job advances ``WAITING → RUNNING → DONE`` (the three states
named in the paper), or ends in ``FAILED``/``CANCELLED``. The
representation returned by ``GET`` carries status, inputs and — once the
job is ``DONE`` — the output parameter values.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from repro.core.errors import JobNotFoundError, JobStateError


class JobState(str, Enum):
    """Lifecycle of a job resource (paper §2)."""

    WAITING = "WAITING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: Legal state transitions; anything else is a programming error.
_TRANSITIONS: dict[JobState, set[JobState]] = {
    JobState.WAITING: {JobState.RUNNING, JobState.CANCELLED, JobState.FAILED},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED, JobState.CANCELLED},
    JobState.DONE: set(),
    JobState.FAILED: set(),
    JobState.CANCELLED: set(),
}


def new_job_id() -> str:
    return "j-" + uuid.uuid4().hex[:12]


#: Observer signature: called with (job, new_state) after each transition.
TransitionObserver = Callable[["Job", JobState], None]


@dataclass(eq=False)
class Job:
    """One request being processed by a computational service.

    Jobs have identity semantics (a job equals only itself), matching their
    nature as mutable, stateful resources.

    Mutations go through the transition methods, which enforce the state
    machine and are safe to call from handler threads; readers use
    :meth:`representation` to get a consistent snapshot. Completion is
    observable two ways without polling: :meth:`wait` blocks on a
    condition variable until the job is terminal (the substrate of the
    REST layer's ``?wait=`` long-poll), and :meth:`subscribe` registers a
    callback fired on every transition.
    """

    service: str
    inputs: dict[str, Any]
    id: str = field(default_factory=new_job_id)
    state: JobState = JobState.WAITING
    results: dict[str, Any] | None = None
    error: str | None = None
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    #: Correlation id of the request that created the job (``X-Request-Id``).
    request_id: str | None = None
    #: The ``Idempotency-Key`` the creating POST carried, if any. Journaled
    #: with the job so key→job bindings survive a cold restart (a replayed
    #: POST after recovery still answers with this job, not a duplicate).
    idempotency_key: str | None = None
    #: Trace correlation (``X-Trace``): the trace the creating request
    #: belonged to and the span the job's own spans attach under. Process-
    #: local and best-effort — never journaled, never in representations.
    trace_id: str | None = None
    trace_parent: str | None = None
    #: Extra representation fields (e.g. per-block workflow states).
    extra: dict[str, Any] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)
    #: Set when a cancel arrives; adapters poll it for cooperative abort.
    cancel_event: threading.Event = field(default_factory=threading.Event, repr=False, compare=False)

    def __post_init__(self) -> None:
        # the condition shares the job lock: transitions notify the exact
        # waiters that guard their predicates on the same mutex
        self._cond = threading.Condition(self._lock)
        self._observers: list[TransitionObserver] = []

    def _transition(self, target: JobState) -> None:
        if target not in _TRANSITIONS[self.state]:
            raise JobStateError(f"job {self.id}: cannot go {self.state.value} → {target.value}")
        self.state = target

    def _notify_observers(self, state: JobState) -> None:
        """Fire observers outside the lock so callbacks may read the job."""
        with self._lock:
            observers = list(self._observers)
        for observer in observers:
            observer(self, state)

    def subscribe(self, observer: TransitionObserver) -> None:
        """Register ``observer`` for subsequent transitions.

        If the job is already terminal the observer fires immediately (on
        the caller's thread), so subscribers cannot miss the final state.
        """
        with self._lock:
            self._observers.append(observer)
            already_terminal = self.state.terminal
            state = self.state
        if already_terminal:
            observer(self, state)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; True unless the wait timed out.

        Waiters are released by the transition itself — no polling. Any
        number of threads may wait concurrently; a single terminal
        transition releases them all.
        """
        with self._cond:
            if timeout is None:
                while not self.state.terminal:
                    self._cond.wait()
                return True
            deadline = time.monotonic() + timeout
            while not self.state.terminal:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def mark_running(self) -> None:
        with self._cond:
            self._transition(JobState.RUNNING)
            self.started = time.time()
            self._cond.notify_all()
        self._notify_observers(JobState.RUNNING)

    def mark_done(self, results: dict[str, Any]) -> None:
        with self._cond:
            self._transition(JobState.DONE)
            self.results = results
            self.finished = time.time()
            self._cond.notify_all()
        self._notify_observers(JobState.DONE)

    def mark_failed(self, error: str) -> None:
        with self._cond:
            self._transition(JobState.FAILED)
            self.error = error
            self.finished = time.time()
            self._cond.notify_all()
        self._notify_observers(JobState.FAILED)

    def mark_cancelled(self) -> None:
        with self._cond:
            self._transition(JobState.CANCELLED)
            self.finished = time.time()
            self._cond.notify_all()
        self.cancel_event.set()
        self._notify_observers(JobState.CANCELLED)

    def try_interrupt(self, error: str) -> bool:
        """Mark a still-queued job ``FAILED (recoverable=interrupted)``.

        Used when the process stops (or restarts) before a handler picked
        the job up: the job must not silently vanish in ``WAITING``, but a
        job that is already running (or terminal) is left alone. Returns
        True when the interruption was applied.
        """
        with self._cond:
            if self.state is not JobState.WAITING:
                return False
            self._transition(JobState.FAILED)
            self.error = error
            self.extra["recoverable"] = "interrupted"
            self.finished = time.time()
            self._cond.notify_all()
        self._notify_observers(JobState.FAILED)
        return True

    def try_finish(self, outcome: Callable[[], tuple[JobState, Any]]) -> bool:
        """Finish the job unless it was cancelled concurrently.

        ``outcome`` runs under the job lock and returns ``(DONE, results)``
        or ``(FAILED, error_message)``. Returns False when the job is
        already terminal (e.g. a cancel won the race).
        """
        with self._cond:
            if self.state.terminal:
                return False
            target, value = outcome()
            self._transition(target)
            if target is JobState.DONE:
                self.results = value
            else:
                self.error = str(value)
            self.finished = time.time()
            self._cond.notify_all()
        self._notify_observers(target)
        return True

    def representation(self, uri: str = "") -> dict[str, Any]:
        """The JSON representation served by ``GET`` on the job resource."""
        with self._lock:
            document: dict[str, Any] = {
                "id": self.id,
                "service": self.service,
                "state": self.state.value,
                "created": self.created,
                "inputs": self.inputs,
            }
            if uri:
                document["uri"] = uri
            if self.request_id is not None:
                document["request_id"] = self.request_id
            if self.started is not None:
                document["started"] = self.started
            if self.finished is not None:
                document["finished"] = self.finished
            if self.state is JobState.DONE:
                document["results"] = self.results
            if self.error is not None:
                document["error"] = self.error
            document.update(self.extra)
            return document


def job_document(job: Job) -> dict[str, Any]:
    """The journal/snapshot form of one job's externally promised state."""
    document: dict[str, Any] = {
        "id": job.id,
        "state": job.state.value,
        "inputs": job.inputs,
        "created": job.created,
    }
    if job.request_id is not None:
        document["request_id"] = job.request_id
    if job.idempotency_key is not None:
        document["key"] = job.idempotency_key
    if job.extra:
        document["extra"] = dict(job.extra)
    if job.started is not None:
        document["started"] = job.started
    if job.finished is not None:
        document["finished"] = job.finished
    if job.results is not None:
        document["results"] = job.results
    if job.error is not None:
        document["error"] = job.error
    return document


def restore_job(service: str, document: dict[str, Any]) -> Job:
    """Build a :class:`Job` from its recovered document.

    Terminal jobs come back terminal (results, error and timestamps
    intact); in-flight jobs (``WAITING``/``RUNNING`` at crash time) come
    back ``WAITING`` — the caller decides whether to re-enqueue them or
    interrupt them, based on whether re-execution is safe.
    """
    job = Job(
        service=service,
        inputs=dict(document.get("inputs") or {}),
        id=document["id"],
        request_id=document.get("request_id"),
        extra=dict(document.get("extra") or {}),
    )
    job.idempotency_key = document.get("key")
    job.created = document.get("created", job.created)
    job.started = document.get("started")
    state = JobState(document.get("state", JobState.WAITING.value))
    if state.terminal:
        # direct restoration: the transitions already happened, pre-crash
        job.state = state
        job.results = document.get("results")
        job.error = document.get("error")
        job.finished = document.get("finished", job.created)
        if state is JobState.CANCELLED:
            job.cancel_event.set()
    return job


class JobStore:
    """Thread-safe registry of a service's jobs."""

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()

    def add(self, job: Job) -> Job:
        with self._lock:
            self._jobs[job.id] = job
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no job {job_id!r}")
        return job

    def remove(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.pop(job_id, None)
        if job is None:
            raise JobNotFoundError(f"no job {job_id!r}")
        return job

    def list(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def __contains__(self, job_id: object) -> bool:
        with self._lock:
            return job_id in self._jobs
