"""Multi-commodity transportation: instances, models, formulations.

The validation problem of the paper's optimization work: several
commodities share arc capacities between origins and destinations. The
monolithic LP couples the commodities only through the capacity rows —
exactly the structure Dantzig–Wolfe decomposition exploits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.apps.optimization.lp import Constraint, LinearProgram


@dataclass
class MultiCommodityInstance:
    """One instance: origins × destinations arcs shared by commodities."""

    origins: list[str]
    destinations: list[str]
    commodities: list[str]
    #: supply[k][i], demand[k][j], cost[k][i][j], capacity[i][j]
    supply: dict[str, dict[str, float]]
    demand: dict[str, dict[str, float]]
    cost: dict[str, dict[str, dict[str, float]]]
    capacity: dict[str, dict[str, float]] = field(default_factory=dict)

    def arcs(self) -> list[tuple[str, str]]:
        return [(i, j) for i in self.origins for j in self.destinations]

    def total_demand(self, commodity: str) -> float:
        return sum(self.demand[commodity].values())


def generate_instance(
    n_origins: int = 3,
    n_destinations: int = 4,
    n_commodities: int = 3,
    seed: int = 7,
    tightness: float = 0.75,
) -> MultiCommodityInstance:
    """A random feasible instance.

    The instance is feasible *by construction*: a random base flow routing
    every commodity's demand is built first, and arc capacities are set
    just above the base flow's arc totals. ``tightness`` in (0, 1] controls
    how close capacities sit to that flow — near 1.0 the coupling
    constraints bind hard, which is what makes the decomposition
    interesting.
    """
    if not 0.0 < tightness <= 1.0:
        raise ValueError("tightness must be in (0, 1]")
    rng = random.Random(seed)
    origins = [f"o{i}" for i in range(n_origins)]
    destinations = [f"d{j}" for j in range(n_destinations)]
    commodities = [f"k{k}" for k in range(n_commodities)]

    demand = {
        k: {j: float(rng.randint(10, 40)) for j in destinations} for k in commodities
    }
    supply: dict[str, dict[str, float]] = {}
    for k in commodities:
        total = sum(demand[k].values())
        shares = [rng.random() + 0.2 for _ in origins]
        scale = total * 1.3 / sum(shares)
        supply[k] = {i: round(share * scale, 1) for i, share in zip(origins, shares)}
    cost = {
        k: {i: {j: float(rng.randint(2, 30)) for j in destinations} for i in origins}
        for k in commodities
    }

    # base flow: greedily route each commodity's demand through the supplies
    base_flow = {i: {j: 0.0 for j in destinations} for i in origins}
    for k in commodities:
        remaining = dict(supply[k])
        for j in destinations:
            needed = demand[k][j]
            for i in sorted(origins, key=lambda _: rng.random()):
                if needed <= 0:
                    break
                take = min(needed, remaining[i])
                base_flow[i][j] += take
                remaining[i] -= take
                needed -= take

    slack = (1.0 - tightness) + 0.05  # capacities sit ≥5% above the base flow
    capacity = {
        i: {
            j: round(base_flow[i][j] * (1.0 + slack * (0.5 + rng.random())) + 1.0, 1)
            for j in destinations
        }
        for i in origins
    }
    return MultiCommodityInstance(
        origins=origins,
        destinations=destinations,
        commodities=commodities,
        supply=supply,
        demand=demand,
        cost=cost,
        capacity=capacity,
    )


def _x(k: str, i: str, j: str) -> str:
    return f"x[{k},{i},{j}]"


def full_lp(instance: MultiCommodityInstance) -> LinearProgram:
    """The monolithic formulation (the Dantzig–Wolfe reference optimum)."""
    lp = LinearProgram(sense="min", name="multicommodity")
    for k in instance.commodities:
        for i in instance.origins:
            for j in instance.destinations:
                lp.objective[_x(k, i, j)] = instance.cost[k][i][j]
    for k in instance.commodities:
        for i in instance.origins:
            lp.constraints.append(
                Constraint(
                    name=f"supply[{k},{i}]",
                    coefs={_x(k, i, j): 1.0 for j in instance.destinations},
                    relop="<=",
                    rhs=instance.supply[k][i],
                )
            )
        for j in instance.destinations:
            lp.constraints.append(
                Constraint(
                    name=f"demand[{k},{j}]",
                    coefs={_x(k, i, j): 1.0 for i in instance.origins},
                    relop=">=",
                    rhs=instance.demand[k][j],
                )
            )
    for i in instance.origins:
        for j in instance.destinations:
            lp.constraints.append(
                Constraint(
                    name=f"capacity[{i},{j}]",
                    coefs={_x(k, i, j): 1.0 for k in instance.commodities},
                    relop="<=",
                    rhs=instance.capacity[i][j],
                )
            )
    lp.validate()
    return lp


def commodity_subproblem(
    instance: MultiCommodityInstance,
    commodity: str,
    arc_prices: dict[tuple[str, str], float] | None = None,
) -> LinearProgram:
    """Commodity ``commodity``'s transportation problem with reduced costs
    ``c[i][j] − price[i, j]`` (the Dantzig–Wolfe pricing subproblem)."""
    arc_prices = arc_prices or {}
    lp = LinearProgram(sense="min", name=f"sub[{commodity}]")
    for i in instance.origins:
        for j in instance.destinations:
            lp.objective[f"x[{i},{j}]"] = instance.cost[commodity][i][j] - arc_prices.get(
                (i, j), 0.0
            )
    for i in instance.origins:
        lp.constraints.append(
            Constraint(
                name=f"supply[{i}]",
                coefs={f"x[{i},{j}]": 1.0 for j in instance.destinations},
                relop="<=",
                rhs=instance.supply[commodity][i],
            )
        )
    for j in instance.destinations:
        lp.constraints.append(
            Constraint(
                name=f"demand[{j}]",
                coefs={f"x[{i},{j}]": 1.0 for i in instance.origins},
                relop=">=",
                rhs=instance.demand[commodity][j],
            )
        )
    lp.validate()
    return lp


AMPL_MODEL = """
set ORIG; set DEST; set PROD;
param supply {PROD, ORIG} >= 0;
param demand {PROD, DEST} >= 0;
param cost {PROD, ORIG, DEST} >= 0;
param capacity {ORIG, DEST} >= 0;
var Trans {p in PROD, i in ORIG, j in DEST} >= 0;
minimize total_cost:
    sum {p in PROD, i in ORIG, j in DEST} cost[p, i, j] * Trans[p, i, j];
subject to Supply {p in PROD, i in ORIG}:
    sum {j in DEST} Trans[p, i, j] <= supply[p, i];
subject to Demand {p in PROD, j in DEST}:
    sum {i in ORIG} Trans[p, i, j] >= demand[p, j];
subject to Capacity {i in ORIG, j in DEST}:
    sum {p in PROD} Trans[p, i, j] <= capacity[i, j];
"""


def ampl_data(instance: MultiCommodityInstance) -> dict[str, Any]:
    """The instance in the grounder's JSON data form for :data:`AMPL_MODEL`."""
    return {
        "sets": {
            "ORIG": list(instance.origins),
            "DEST": list(instance.destinations),
            "PROD": list(instance.commodities),
        },
        "params": {
            "supply": {k: dict(v) for k, v in instance.supply.items()},
            "demand": {k: dict(v) for k, v in instance.demand.items()},
            "cost": {
                k: {i: dict(js) for i, js in per_origin.items()}
                for k, per_origin in instance.cost.items()
            },
            "capacity": {i: dict(js) for i, js in instance.capacity.items()},
        },
    }
