"""Command-line optimization tools (the solver as an external process).

::

    python -m repro.apps.optimization.cli translate --model m.mod --data d.dat --out lp.json
    python -m repro.apps.optimization.cli solve --lp lp.json --solver simplex --out r.json

The subprocess packaging of solver services launches ``solve``; it is also
a usable standalone tool.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.apps.optimization.ampl import AmplError, translate
from repro.apps.optimization.lp import LinearProgram, LpError
from repro.apps.optimization.solvers import SOLVERS, solve_lp


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="optimize")
    commands = parser.add_subparsers(dest="command", required=True)

    translate_cmd = commands.add_parser("translate", help="AMPL model+data to LP JSON")
    translate_cmd.add_argument("--model", required=True)
    translate_cmd.add_argument("--data")
    translate_cmd.add_argument("--out", required=True)

    solve_cmd = commands.add_parser("solve", help="solve an LP JSON file")
    solve_cmd.add_argument("--lp", required=True)
    solve_cmd.add_argument("--solver", default="simplex", choices=sorted(SOLVERS))
    solve_cmd.add_argument("--out", required=True)
    return parser


def main(argv: list[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    try:
        if options.command == "translate":
            model_text = Path(options.model).read_text()
            data_text = Path(options.data).read_text() if options.data else None
            lp = translate(model_text, data_text)
            Path(options.out).write_text(json.dumps(lp.to_json()))
        else:
            lp = LinearProgram.from_json(json.loads(Path(options.lp).read_text()))
            result = solve_lp(lp, solver=options.solver)
            Path(options.out).write_text(json.dumps(result.to_json()))
    except (AmplError, LpError, OSError, ValueError) as error:
        print(f"optimize error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
