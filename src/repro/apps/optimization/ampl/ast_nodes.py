"""AMPL abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Expr = Union["Num", "SymRef", "Sum", "Bin", "Neg"]


@dataclass(frozen=True)
class Num:
    value: float


@dataclass(frozen=True)
class SymRef:
    """A reference to a parameter, variable or index symbol, possibly
    subscripted: ``cost[i, j]`` or bare ``supply`` / ``i``."""

    name: str
    subscripts: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Sum:
    """``sum {i in A, j in B} body``."""

    bindings: tuple[tuple[str, str], ...]  # (index var, set name)
    body: Expr


@dataclass(frozen=True)
class Bin:
    op: str  # + - * /
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Neg:
    operand: Expr


@dataclass
class Indexing:
    """``{i in ORIG, j in DEST}`` — or positional ``{ORIG, DEST}``."""

    bindings: list[tuple[str, str]]  # (index var or "", set name)

    @property
    def set_names(self) -> list[str]:
        return [set_name for _, set_name in self.bindings]

    @property
    def dimensions(self) -> int:
        return len(self.bindings)


@dataclass
class SetDecl:
    name: str


@dataclass
class ParamDecl:
    name: str
    indexing: Indexing | None = None
    default: float | None = None
    #: declared restrictions, kept for validation: list of (relop, value)
    restrictions: list[tuple[str, float]] = field(default_factory=list)


@dataclass
class VarDecl:
    name: str
    indexing: Indexing | None = None
    lower: Expr | None = None
    upper: Expr | None = None
    integer: bool = False
    binary: bool = False


@dataclass
class Objective:
    name: str
    sense: str  # "min" | "max"
    expr: Expr


@dataclass
class ConstraintDecl:
    name: str
    indexing: Indexing | None
    left: Expr
    relop: str  # <= >= =
    right: Expr


@dataclass
class Model:
    sets: dict[str, SetDecl] = field(default_factory=dict)
    params: dict[str, ParamDecl] = field(default_factory=dict)
    variables: dict[str, VarDecl] = field(default_factory=dict)
    objective: Objective | None = None
    constraints: list[ConstraintDecl] = field(default_factory=list)
