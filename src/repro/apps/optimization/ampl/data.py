"""The AMPL ``data`` section.

Supported statements::

    set ORIG := GARY CLEV PITT;
    param supply := GARY 1400  CLEV 2600  PITT 2900;
    param cost := GARY FRA 39  GARY DET 14  CLEV FRA 27;   # tuple keys
    param demand default 0 := FRA 900;
    param T := 4;                                           # scalar

The result is the JSON data form the grounder consumes::

    {"sets": {"ORIG": ["GARY", ...]},
     "params": {"supply": {"GARY": 1400, ...},
                "cost": {"GARY": {"FRA": 39, ...}, ...},
                "T": 4},
     "defaults": {"demand": 0}}

Key dimensionality is inferred from the value stream: tokens before each
number are the key tuple, and every entry of one parameter must use the
same number of key tokens.
"""

from __future__ import annotations

from typing import Any

from repro.apps.optimization.ampl.errors import AmplSyntaxError
from repro.apps.optimization.ampl.lexer import Token, TokenKind, tokenize


def _key_token(token: Token) -> str:
    if token.kind in (TokenKind.IDENT, TokenKind.STRING, TokenKind.KEYWORD):
        return str(token.value)
    if token.kind is TokenKind.NUMBER:
        value = float(token.value)
        return str(int(value)) if value.is_integer() else str(value)
    raise AmplSyntaxError(f"bad data key {token.text!r}", token.line, token.column)


def _store(target: dict[str, Any], keys: list[str], value: float) -> None:
    node = target
    for key in keys[:-1]:
        node = node.setdefault(key, {})
        if not isinstance(node, dict):
            raise AmplSyntaxError(f"inconsistent key depth at {key!r}")
    node[keys[-1]] = value


def parse_data(source: str) -> dict[str, Any]:
    """Parse an AMPL data section into the JSON data form."""
    tokens = tokenize(source)
    position = 0
    sets: dict[str, list[str]] = {}
    params: dict[str, Any] = {}
    defaults: dict[str, float] = {}

    def current() -> Token:
        return tokens[position]

    def advance() -> Token:
        nonlocal position
        token = tokens[position]
        if token.kind is not TokenKind.EOF:
            position += 1
        return token

    def expect(kind: TokenKind) -> Token:
        if current().kind is not kind:
            raise AmplSyntaxError(
                f"expected {kind.value!r}, found {current().text!r}",
                current().line,
                current().column,
            )
        return advance()

    # an optional leading "data;" marker, as in AMPL files
    if current().is_keyword("data"):
        advance()
        expect(TokenKind.SEMICOLON)

    while current().kind is not TokenKind.EOF:
        token = advance()
        if token.is_keyword("set"):
            name = expect(TokenKind.IDENT).text
            expect(TokenKind.ASSIGN)
            elements: list[str] = []
            while current().kind is not TokenKind.SEMICOLON:
                elements.append(_key_token(advance()))
            expect(TokenKind.SEMICOLON)
            sets[name] = elements
        elif token.is_keyword("param"):
            name = expect(TokenKind.IDENT).text
            if current().is_keyword("default"):
                advance()
                negative = current().kind is TokenKind.MINUS
                if negative:
                    advance()
                value_token = expect(TokenKind.NUMBER)
                defaults[name] = -float(value_token.value) if negative else float(value_token.value)
                if current().kind is TokenKind.SEMICOLON:
                    advance()
                    continue
            expect(TokenKind.ASSIGN)
            entries: list[tuple[list[str], float]] = []
            pending: list[Token] = []
            while current().kind is not TokenKind.SEMICOLON:
                pending.append(advance())
                # a NUMBER terminates an entry iff the next token starts a new
                # key run or the statement ends — detected by uniform width
            expect(TokenKind.SEMICOLON)
            entries = _split_entries(name, pending)
            if len(entries) == 1 and not entries[0][0]:
                params[name] = entries[0][1]  # scalar
            else:
                table: dict[str, Any] = {}
                for keys, value in entries:
                    _store(table, keys, value)
                params[name] = table
        else:
            raise AmplSyntaxError(
                f"expected 'set' or 'param', found {token.text!r}", token.line, token.column
            )
    return {"sets": sets, "params": params, "defaults": defaults}


def _split_entries(name: str, stream: list[Token]) -> list[tuple[list[str], float]]:
    """Split a flat token stream into (key-tuple, value) entries.

    The value is always the last NUMBER of each entry; the key width is
    inferred from the position of the first number and must be uniform.
    """
    if not stream:
        raise AmplSyntaxError(f"param {name!r} has no data")
    width = next(
        (i for i, token in enumerate(stream) if token.kind is TokenKind.NUMBER), None
    )
    if width is None:
        raise AmplSyntaxError(f"param {name!r} has keys but no values")
    entry_size = width + 1
    if len(stream) % entry_size != 0:
        raise AmplSyntaxError(
            f"param {name!r}: data stream does not split into uniform "
            f"{width}-key entries"
        )
    entries: list[tuple[list[str], float]] = []
    for start in range(0, len(stream), entry_size):
        chunk = stream[start : start + entry_size]
        value_token = chunk[-1]
        if value_token.kind is not TokenKind.NUMBER:
            raise AmplSyntaxError(
                f"param {name!r}: expected a value, found {value_token.text!r}",
                value_token.line,
                value_token.column,
            )
        keys = [_key_token(token) for token in chunk[:-1]]
        entries.append((keys, float(value_token.value)))
    return entries
