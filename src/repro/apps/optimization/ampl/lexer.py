"""AMPL lexer.

Keywords are recognized case-sensitively (as in AMPL). ``#`` and
``/* */`` comments are skipped. ``subject to`` arrives as two IDENT-like
keyword tokens; the parser assembles them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.apps.optimization.ampl.errors import AmplSyntaxError

KEYWORDS = frozenset(
    "set param var minimize maximize subject to sum in integer binary default data".split()
)


class TokenKind(Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    ASSIGN = ":="
    LE = "<="
    GE = ">="
    EQ = "="
    EQEQ = "=="
    LT = "<"
    GT = ">"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: object = None
    line: int = 0
    column: int = 0

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word


_PUNCTUATION = {
    ":=": TokenKind.ASSIGN,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "==": TokenKind.EQEQ,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    ":": TokenKind.COLON,
    "=": TokenKind.EQ,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
}


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    position, line, column = 0, 1, 1

    def advance(count: int = 1) -> None:
        nonlocal position, line, column
        for _ in range(count):
            if position < len(source):
                if source[position] == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
                position += 1

    def peek(offset: int = 0) -> str:
        index = position + offset
        return source[index] if index < len(source) else ""

    while position < len(source):
        char = peek()
        if char in " \t\r\n":
            advance()
        elif char == "#":
            while peek() and peek() != "\n":
                advance()
        elif char == "/" and peek(1) == "*":
            start_line, start_column = line, column
            advance(2)
            while not (peek() == "*" and peek(1) == "/"):
                if not peek():
                    raise AmplSyntaxError("unterminated comment", start_line, start_column)
                advance()
            advance(2)
        elif char in "'\"":
            quote, start_line, start_column = char, line, column
            advance()
            chars: list[str] = []
            while peek() != quote:
                if not peek() or peek() == "\n":
                    raise AmplSyntaxError("unterminated string", start_line, start_column)
                chars.append(peek())
                advance()
            advance()
            text = "".join(chars)
            tokens.append(Token(TokenKind.STRING, text, text, start_line, start_column))
        elif char.isdigit() or (char == "." and peek(1).isdigit()):
            start, start_line, start_column = position, line, column
            while peek().isdigit():
                advance()
            if peek() == "." and peek(1).isdigit():
                advance()
                while peek().isdigit():
                    advance()
            if peek() in "eE" and (peek(1).isdigit() or (peek(1) in "+-" and peek(2).isdigit())):
                advance()
                if peek() in "+-":
                    advance()
                while peek().isdigit():
                    advance()
            text = source[start:position]
            tokens.append(Token(TokenKind.NUMBER, text, float(text), start_line, start_column))
        elif char.isalpha() or char == "_":
            start, start_line, start_column = position, line, column
            while peek().isalnum() or peek() == "_":
                advance()
            text = source[start:position]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, text, start_line, start_column))
        else:
            two = char + peek(1)
            if two in _PUNCTUATION:
                tokens.append(Token(_PUNCTUATION[two], two, None, line, column))
                advance(2)
            elif char in _PUNCTUATION:
                tokens.append(Token(_PUNCTUATION[char], char, None, line, column))
                advance()
            else:
                raise AmplSyntaxError(f"unexpected character {char!r}", line, column)
    tokens.append(Token(TokenKind.EOF, "", None, line, column))
    return tokens
