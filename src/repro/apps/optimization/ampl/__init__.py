"""An AMPL-subset modeling-language translator.

The paper's optimization services are built around "translators of AMPL
optimization modeling language"; this subpackage implements the subset
those services need, as a conventional compiler pipeline:

- :mod:`~repro.apps.optimization.ampl.lexer` — tokens with positions;
- :mod:`~repro.apps.optimization.ampl.parser` — recursive descent into a
  typed AST (:mod:`~repro.apps.optimization.ampl.ast_nodes`);
- :mod:`~repro.apps.optimization.ampl.data` — the AMPL ``data`` section
  (set lists and indexed parameter tables);
- :mod:`~repro.apps.optimization.ampl.grounder` — instantiates indexed
  constraints over their sets and emits a
  :class:`~repro.apps.optimization.lp.LinearProgram`.

Supported language::

    set ORIG;  set DEST;
    param supply {ORIG} >= 0;
    param cost {ORIG, DEST};
    var Trans {i in ORIG, j in DEST} >= 0, <= capacity[i, j];
    minimize total_cost: sum {i in ORIG, j in DEST} cost[i, j] * Trans[i, j];
    subject to Supply {i in ORIG}:
        sum {j in DEST} Trans[i, j] <= supply[i];

:func:`translate` runs the whole pipeline: model text (+ data text or
JSON) in, LP out.
"""

from __future__ import annotations

from typing import Any

from repro.apps.optimization.ampl.data import parse_data
from repro.apps.optimization.ampl.errors import AmplError, AmplSyntaxError
from repro.apps.optimization.ampl.grounder import ground
from repro.apps.optimization.ampl.parser import parse_model
from repro.apps.optimization.lp import LinearProgram


def translate(model_text: str, data: "str | dict[str, Any] | None" = None) -> LinearProgram:
    """Model text plus data (AMPL data section text, or the JSON form
    ``{"sets": ..., "params": ...}``) → a ground :class:`LinearProgram`."""
    model = parse_model(model_text)
    if isinstance(data, str):
        data = parse_data(data)
    return ground(model, data or {})


__all__ = ["AmplError", "AmplSyntaxError", "ground", "parse_data", "parse_model", "translate"]
