"""The grounder: model AST + data → ground :class:`LinearProgram`.

Instantiates every indexed variable and constraint over the cross product
of its index sets, folding each expression into an affine form
``(coefficients over variables, constant)``. Nonlinearities (a product of
two variables) are rejected with a precise message.

Ground variable names follow AMPL display syntax: ``Trans['GARY','FRA']``
becomes ``Trans[GARY,FRA]``.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from repro.apps.optimization.ampl.ast_nodes import (
    Bin,
    ConstraintDecl,
    Expr,
    Indexing,
    Model,
    Neg,
    Num,
    Sum,
    SymRef,
    VarDecl,
)
from repro.apps.optimization.ampl.errors import AmplGroundingError
from repro.apps.optimization.lp import Constraint, LinearProgram


class _Affine:
    """coefs·x + constant, the folding target for expressions."""

    __slots__ = ("coefs", "constant")

    def __init__(self, coefs: dict[str, float] | None = None, constant: float = 0.0):
        self.coefs = coefs or {}
        self.constant = constant

    @property
    def is_constant(self) -> bool:
        return not self.coefs

    def __add__(self, other: "_Affine") -> "_Affine":
        coefs = dict(self.coefs)
        for name, coef in other.coefs.items():
            coefs[name] = coefs.get(name, 0.0) + coef
        return _Affine(coefs, self.constant + other.constant)

    def __sub__(self, other: "_Affine") -> "_Affine":
        coefs = dict(self.coefs)
        for name, coef in other.coefs.items():
            coefs[name] = coefs.get(name, 0.0) - coef
        return _Affine(coefs, self.constant - other.constant)

    def scaled(self, factor: float) -> "_Affine":
        return _Affine({n: c * factor for n, c in self.coefs.items()}, self.constant * factor)


def _var_key(name: str, elements: tuple[str, ...]) -> str:
    return f"{name}[{','.join(elements)}]" if elements else name


class _Grounder:
    def __init__(self, model: Model, data: dict[str, Any]):
        self.model = model
        self.sets: dict[str, list[str]] = {
            name: list(elements) for name, elements in data.get("sets", {}).items()
        }
        self.params: dict[str, Any] = dict(data.get("params", {}))
        self.defaults: dict[str, float] = dict(data.get("defaults", {}))
        for name in model.sets:
            if name not in self.sets:
                raise AmplGroundingError(f"no data for set {name!r}")

    # --------------------------------------------------------- param/set

    def set_elements(self, name: str) -> list[str]:
        if name not in self.model.sets:
            raise AmplGroundingError(f"unknown set {name!r}")
        return self.sets[name]

    def param_value(self, name: str, keys: tuple[str, ...]) -> float:
        declaration = self.model.params[name]
        expected = declaration.indexing.dimensions if declaration.indexing else 0
        if len(keys) != expected:
            raise AmplGroundingError(
                f"param {name!r} expects {expected} subscript(s), got {len(keys)}"
            )
        node: Any = self.params.get(name)
        for key in keys:
            if isinstance(node, dict):
                node = node.get(key)
            else:
                node = None
            if node is None:
                break
        if node is None:
            if name in self.defaults:
                return self.defaults[name]
            if declaration.default is not None:
                return declaration.default
            subscript = f"[{','.join(keys)}]" if keys else ""
            raise AmplGroundingError(f"no data for param {name}{subscript}")
        if not isinstance(node, (int, float)) or isinstance(node, bool):
            raise AmplGroundingError(f"param {name!r}: data at {keys} is not a number")
        value = float(node)
        for relop, limit in declaration.restrictions:
            satisfied = {
                ">=": value >= limit,
                "<=": value <= limit,
                ">": value > limit,
                "<": value < limit,
                "=": value == limit,
            }.get(relop, True)
            if not satisfied:
                raise AmplGroundingError(
                    f"param {name}{list(keys)} = {value} violates declared {relop} {limit}"
                )
        return value

    # -------------------------------------------------------- expressions

    def _subscript_values(
        self, subscripts: tuple[Expr, ...], env: dict[str, str]
    ) -> tuple[str, ...]:
        values: list[str] = []
        for expression in subscripts:
            if isinstance(expression, SymRef) and not expression.subscripts:
                if expression.name in env:
                    values.append(env[expression.name])
                    continue
                values.append(expression.name)  # a literal member name
                continue
            if isinstance(expression, Num):
                value = expression.value
                values.append(str(int(value)) if value.is_integer() else str(value))
                continue
            raise AmplGroundingError(
                f"unsupported subscript expression {expression!r} (use index vars or literals)"
            )
        return tuple(values)

    def fold(self, expression: Expr, env: dict[str, str]) -> _Affine:
        """Fold an expression into affine form under index bindings ``env``."""
        if isinstance(expression, Num):
            return _Affine(constant=expression.value)
        if isinstance(expression, Neg):
            return self.fold(expression.operand, env).scaled(-1.0)
        if isinstance(expression, SymRef):
            name = expression.name
            if name in self.model.variables:
                keys = self._subscript_values(expression.subscripts, env)
                self._check_var_subscripts(name, keys)
                return _Affine({_var_key(name, keys): 1.0})
            if name in self.model.params:
                keys = self._subscript_values(expression.subscripts, env)
                return _Affine(constant=self.param_value(name, keys))
            if name in env and not expression.subscripts:
                # a bare index variable used as a number (rare); reject —
                # set members are symbolic here
                raise AmplGroundingError(f"index {name!r} cannot be used as a number")
            raise AmplGroundingError(f"unknown symbol {name!r}")
        if isinstance(expression, Sum):
            total = _Affine()
            for combination in self._bindings_product(expression.bindings):
                inner = dict(env)
                inner.update(combination)
                total = total + self.fold(expression.body, inner)
            return total
        if isinstance(expression, Bin):
            left = self.fold(expression.left, env)
            right = self.fold(expression.right, env)
            if expression.op == "+":
                return left + right
            if expression.op == "-":
                return left - right
            if expression.op == "*":
                if left.is_constant:
                    return right.scaled(left.constant)
                if right.is_constant:
                    return left.scaled(right.constant)
                raise AmplGroundingError("nonlinear term: product of two variable expressions")
            if expression.op == "/":
                if not right.is_constant:
                    raise AmplGroundingError("nonlinear term: division by a variable expression")
                if right.constant == 0:
                    raise AmplGroundingError("division by zero in model expression")
                return left.scaled(1.0 / right.constant)
        raise AmplGroundingError(f"cannot fold expression {expression!r}")

    def _check_var_subscripts(self, name: str, keys: tuple[str, ...]) -> None:
        declaration = self.model.variables[name]
        expected = declaration.indexing.dimensions if declaration.indexing else 0
        if len(keys) != expected:
            raise AmplGroundingError(
                f"variable {name!r} expects {expected} subscript(s), got {len(keys)}"
            )

    def _bindings_product(
        self, bindings: tuple[tuple[str, str], ...] | list[tuple[str, str]]
    ) -> Iterator[dict[str, str]]:
        names = [index_name for index_name, _ in bindings]
        element_lists = [self.set_elements(set_name) for _, set_name in bindings]
        for combination in itertools.product(*element_lists):
            yield {n: e for n, e in zip(names, combination) if n}

    # ------------------------------------------------------------- ground

    def _indexing_tuples(self, indexing: Indexing | None) -> Iterator[tuple[dict[str, str], tuple[str, ...]]]:
        if indexing is None:
            yield {}, ()
            return
        element_lists = [self.set_elements(set_name) for set_name in indexing.set_names]
        names = [index_name for index_name, _ in indexing.bindings]
        for combination in itertools.product(*element_lists):
            env = {n: e for n, e in zip(names, combination) if n}
            yield env, tuple(combination)

    def _ground_variable_bounds(self, lp: LinearProgram, declaration: VarDecl) -> None:
        for env, elements in self._indexing_tuples(declaration.indexing):
            key = _var_key(declaration.name, elements)
            low: float | None = None
            high: float | None = None
            if declaration.binary:
                low, high = 0.0, 1.0
                lp.integers.add(key)
            if declaration.integer:
                lp.integers.add(key)
            if declaration.lower is not None:
                folded = self.fold(declaration.lower, env)
                if not folded.is_constant:
                    raise AmplGroundingError(f"variable {key}: lower bound is not constant")
                low = folded.constant
            if declaration.upper is not None:
                folded = self.fold(declaration.upper, env)
                if not folded.is_constant:
                    raise AmplGroundingError(f"variable {key}: upper bound is not constant")
                high = folded.constant
            lp.bounds[key] = (low, high)

    def ground(self) -> LinearProgram:
        objective = self.model.objective
        lp = LinearProgram(sense=objective.sense, name=objective.name)
        for declaration in self.model.variables.values():
            self._ground_variable_bounds(lp, declaration)
        folded_objective = self.fold(objective.expr, {})
        lp.objective = {n: c for n, c in folded_objective.coefs.items() if c != 0.0}
        lp.objective_constant = folded_objective.constant
        for declaration in self.model.constraints:
            for env, elements in self._indexing_tuples(declaration.indexing):
                left = self.fold(declaration.left, env)
                right = self.fold(declaration.right, env)
                combined = left - right
                name = _var_key(declaration.name, elements)
                coefs = {n: c for n, c in combined.coefs.items() if c != 0.0}
                if not coefs:
                    # constant row: verify it holds, then drop it
                    holds = {
                        "<=": combined.constant <= 0,
                        ">=": combined.constant >= 0,
                        "=": combined.constant == 0,
                    }[declaration.relop]
                    if not holds:
                        raise AmplGroundingError(
                            f"constraint {name} is constant and violated"
                        )
                    continue
                lp.constraints.append(
                    Constraint(name=name, coefs=coefs, relop=declaration.relop, rhs=-combined.constant)
                )
        lp.validate()
        return lp


def ground(model: Model, data: dict[str, Any]) -> LinearProgram:
    """Instantiate ``model`` over ``data``; returns the ground LP."""
    return _Grounder(model, data).ground()
