"""AMPL translator errors."""

from __future__ import annotations


class AmplError(Exception):
    """Base class for modeling-language failures."""


class AmplSyntaxError(AmplError):
    """Lexical or grammatical error, with source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class AmplGroundingError(AmplError):
    """Semantic error while instantiating the model over its data."""
