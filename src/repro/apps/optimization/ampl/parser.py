"""AMPL recursive-descent parser.

Grammar (the supported subset)::

    model       := (declaration ';')*
    declaration := 'set' IDENT
                 | 'param' IDENT [indexing] param_attr*
                 | 'var' IDENT [indexing] var_attr (',' var_attr)*
                 | ('minimize'|'maximize') IDENT ':' expr
                 | 'subject' 'to' IDENT [indexing] ':' expr relop expr
    indexing    := '{' index_binding (',' index_binding)* '}'
    index_binding := IDENT 'in' IDENT | IDENT          # named or positional
    param_attr  := relop NUMBER | 'default' NUMBER
    var_attr    := '>=' expr | '<=' expr | 'integer' | 'binary'
    expr        := term (('+'|'-') term)*
    term        := unary (('*'|'/') unary)*
    unary       := '-' unary | primary
    primary     := NUMBER | ref | sum | '(' expr ')'
    sum         := 'sum' '{' named_binding (',' named_binding)* '}' term
    ref         := IDENT ['[' expr (',' expr)* ']']
    relop       := '<=' | '>=' | '=' | '=='
"""

from __future__ import annotations

from repro.apps.optimization.ampl.ast_nodes import (
    Bin,
    ConstraintDecl,
    Expr,
    Indexing,
    Model,
    Neg,
    Num,
    Objective,
    ParamDecl,
    SetDecl,
    Sum,
    SymRef,
    VarDecl,
)
from repro.apps.optimization.ampl.errors import AmplSyntaxError
from repro.apps.optimization.ampl.lexer import Token, TokenKind, tokenize

_RELOPS = {TokenKind.LE: "<=", TokenKind.GE: ">=", TokenKind.EQ: "=", TokenKind.EQEQ: "="}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def _error(self, message: str) -> AmplSyntaxError:
        token = self.current
        found = token.text or "end of input"
        return AmplSyntaxError(f"{message}, found {found!r}", token.line, token.column)

    def _expect(self, kind: TokenKind) -> Token:
        if self.current.kind is not kind:
            raise self._error(f"expected {kind.value!r}")
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        if self.current.kind is kind:
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self._error(f"expected keyword {word!r}")
        return self._advance()

    def _ident(self) -> str:
        return self._expect(TokenKind.IDENT).text

    # -------------------------------------------------------------- model

    def model(self) -> Model:
        model = Model()
        while self.current.kind is not TokenKind.EOF:
            self._declaration(model)
            self._expect(TokenKind.SEMICOLON)
        if model.objective is None:
            raise AmplSyntaxError("model has no objective (minimize/maximize)")
        return model

    def _declare(self, table: dict, name: str, value, what: str) -> None:
        if name in table:
            raise self._error(f"duplicate {what} {name!r}")
        table[name] = value

    def _declaration(self, model: Model) -> None:
        token = self.current
        if token.is_keyword("set"):
            self._advance()
            name = self._ident()
            self._declare(model.sets, name, SetDecl(name), "set")
        elif token.is_keyword("param"):
            self._advance()
            model_param = self._param_decl()
            self._declare(model.params, model_param.name, model_param, "param")
        elif token.is_keyword("var"):
            self._advance()
            variable = self._var_decl()
            self._declare(model.variables, variable.name, variable, "var")
        elif token.is_keyword("minimize") or token.is_keyword("maximize"):
            sense = "min" if token.text == "minimize" else "max"
            self._advance()
            name = self._ident()
            self._expect(TokenKind.COLON)
            if model.objective is not None:
                raise self._error("model already has an objective")
            model.objective = Objective(name, sense, self.expr())
        elif token.is_keyword("subject"):
            self._advance()
            self._expect_keyword("to")
            model.constraints.append(self._constraint_decl())
        else:
            raise self._error("expected a declaration (set/param/var/minimize/subject to)")

    def _indexing(self, require_names: bool = False) -> Indexing:
        self._expect(TokenKind.LBRACE)
        bindings: list[tuple[str, str]] = []
        while True:
            first = self._ident()
            if self.current.is_keyword("in"):
                self._advance()
                bindings.append((first, self._ident()))
            else:
                if require_names:
                    raise self._error(f"binding {first!r} needs 'in <SET>'")
                bindings.append(("", first))
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.RBRACE)
        return Indexing(bindings)

    def _param_decl(self) -> ParamDecl:
        name = self._ident()
        indexing = self._indexing() if self.current.kind is TokenKind.LBRACE else None
        declaration = ParamDecl(name, indexing)
        while True:
            if self.current.kind in _RELOPS or self.current.kind in (TokenKind.LT, TokenKind.GT):
                relop_token = self._advance()
                value = self._signed_number()
                declaration.restrictions.append((relop_token.text, value))
            elif self.current.is_keyword("default"):
                self._advance()
                declaration.default = self._signed_number()
            else:
                return declaration

    def _signed_number(self) -> float:
        negative = self._accept(TokenKind.MINUS) is not None
        value = float(self._expect(TokenKind.NUMBER).value)
        return -value if negative else value

    def _var_decl(self) -> VarDecl:
        name = self._ident()
        indexing = self._indexing() if self.current.kind is TokenKind.LBRACE else None
        declaration = VarDecl(name, indexing)
        while True:
            if self._accept(TokenKind.GE):
                declaration.lower = self.expr()
            elif self._accept(TokenKind.LE):
                declaration.upper = self.expr()
            elif self.current.is_keyword("integer"):
                self._advance()
                declaration.integer = True
            elif self.current.is_keyword("binary"):
                self._advance()
                declaration.binary = True
            elif self._accept(TokenKind.COMMA):
                continue
            else:
                return declaration

    def _constraint_decl(self) -> ConstraintDecl:
        name = self._ident()
        indexing = (
            self._indexing(require_names=True) if self.current.kind is TokenKind.LBRACE else None
        )
        self._expect(TokenKind.COLON)
        left = self.expr()
        if self.current.kind not in _RELOPS:
            raise self._error("expected a constraint relation (<=, >=, =)")
        relop = _RELOPS[self._advance().kind]
        right = self.expr()
        return ConstraintDecl(name, indexing, left, relop, right)

    # --------------------------------------------------------- expressions

    def expr(self) -> Expr:
        left = self._term()
        while self.current.kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self._advance().text
            left = Bin(op, left, self._term())
        return left

    def _term(self) -> Expr:
        left = self._unary()
        while self.current.kind in (TokenKind.STAR, TokenKind.SLASH):
            op = self._advance().text
            left = Bin(op, left, self._unary())
        return left

    def _unary(self) -> Expr:
        if self._accept(TokenKind.MINUS):
            return Neg(self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return Num(float(token.value))
        if token.is_keyword("sum"):
            self._advance()
            indexing = self._indexing(require_names=True)
            body = self._term()  # sum binds tighter than +/- (AMPL semantics)
            return Sum(tuple(indexing.bindings), body)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self.expr()
            self._expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.STRING:
            # a quoted set member, used as a subscript: x['GARY']
            self._advance()
            return SymRef(str(token.value))
        if token.kind is TokenKind.IDENT:
            name = self._advance().text
            if self._accept(TokenKind.LBRACKET):
                subscripts = [self.expr()]
                while self._accept(TokenKind.COMMA):
                    subscripts.append(self.expr())
                self._expect(TokenKind.RBRACKET)
                return SymRef(name, tuple(subscripts))
            return SymRef(name)
        raise self._error("expected an expression")


def parse_model(source: str) -> Model:
    """Parse AMPL model text into a :class:`Model`."""
    return _Parser(tokenize(source)).model()
