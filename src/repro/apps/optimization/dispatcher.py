"""The solver-pool dispatcher.

"A special service has been developed that implements dispatching of
optimization tasks to a pool of solver services ... Independent problems
are solved in parallel thus increasing overall performance in accordance
with the number of available services." (paper §4)

:class:`SolverPool` is the client-side dispatcher used by algorithms
(Dantzig–Wolfe); :func:`dispatcher_service_config` wraps it as a service
so an entire batch of subproblems can be shipped in one request.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.apps.optimization.lp import LinearProgram, SolverResult
from repro.client.client import JobHandle, ServiceProxy
from repro.core.errors import AdapterError
from repro.http.registry import TransportRegistry


class SolverPool:
    """Dispatches LP solves over a pool of solver services, round-robin.

    Submission is asynchronous: all jobs are created before any result is
    awaited, so independent problems overlap across the pool — the paper's
    parallel-subproblem mode.
    """

    def __init__(self, service_uris: list[str], registry: TransportRegistry | None = None):
        if not service_uris:
            raise ValueError("solver pool needs at least one service URI")
        registry = registry or TransportRegistry()
        self._proxies = [ServiceProxy(uri, registry) for uri in service_uris]
        self._next = 0
        self._lock = threading.Lock()
        #: solves completed, per service index (for tests/telemetry)
        self.dispatch_counts = [0] * len(self._proxies)

    @property
    def size(self) -> int:
        return len(self._proxies)

    def _next_proxy(self) -> tuple[int, ServiceProxy]:
        with self._lock:
            index = self._next % len(self._proxies)
            self._next += 1
            self.dispatch_counts[index] += 1
        return index, self._proxies[index]

    def submit(self, lp: LinearProgram) -> JobHandle:
        _, proxy = self._next_proxy()
        return proxy.submit(lp=lp.to_json())

    def solve(self, lp: LinearProgram, timeout: float | None = None) -> SolverResult:
        results = self.solve_all([lp], timeout=timeout)
        return results[0]

    def solve_all(
        self, programs: list[LinearProgram], timeout: float | None = None
    ) -> list[SolverResult]:
        """Solve a batch; all jobs are in flight before the first wait."""
        handles = [self.submit(lp) for lp in programs]
        results = []
        for handle in handles:
            outputs = handle.result(timeout=timeout, poll=0.005)
            results.append(SolverResult.from_json(outputs["result"]))
        return results


def dispatcher_service_config(
    name: str,
    pool_uris: list[str],
    registry: TransportRegistry,
) -> dict[str, Any]:
    """The dispatcher as a service: a batch of LPs in, a batch of results out."""
    pool = SolverPool(pool_uris, registry)

    def dispatch(lps: list[dict[str, Any]]) -> dict[str, Any]:
        try:
            programs = [LinearProgram.from_json(document) for document in lps]
        except Exception as exc:  # noqa: BLE001 - malformed client payloads
            raise AdapterError(f"bad LP batch: {exc}") from exc
        results = pool.solve_all(programs)
        return {"results": [result.to_json() for result in results]}

    return {
        "description": {
            "name": name,
            "title": "Solver-pool dispatcher",
            "description": f"Dispatches batches of LPs across {len(pool_uris)} solver services.",
            "inputs": {"lps": {"schema": {"type": "array", "items": {"type": "object"}}}},
            "outputs": {"results": {"schema": {"type": "array"}}},
            "tags": ["optimization", "dispatcher"],
        },
        "adapter": "python",
        "config": {"callable": dispatch},
    }
