"""The linear-program interchange form.

Every producer (the AMPL grounder, the multi-commodity builder, the
Dantzig–Wolfe master) and every consumer (simplex, branch & bound, the
scipy wrapper, solver services) speaks this one representation, and it has
a stable JSON form so LPs travel through the unified REST API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

RELOPS = ("<=", ">=", "=")


class LpError(Exception):
    """Malformed linear program."""


@dataclass
class Constraint:
    """One linear constraint ``coefs · x  relop  rhs``."""

    name: str
    coefs: dict[str, float]
    relop: str
    rhs: float

    def __post_init__(self) -> None:
        if self.relop not in RELOPS:
            raise LpError(f"constraint {self.name!r}: bad relation {self.relop!r}")


@dataclass
class LinearProgram:
    """A (mixed-integer) linear program.

    Variable bounds default to ``(0, None)`` — the natural domain for the
    application models here; free variables are declared explicitly.
    """

    sense: str = "min"
    objective: dict[str, float] = field(default_factory=dict)
    objective_constant: float = 0.0
    constraints: list[Constraint] = field(default_factory=list)
    bounds: dict[str, tuple[float | None, float | None]] = field(default_factory=dict)
    integers: set[str] = field(default_factory=set)
    name: str = "lp"

    def __post_init__(self) -> None:
        if self.sense not in ("min", "max"):
            raise LpError(f"sense must be 'min' or 'max', got {self.sense!r}")

    @property
    def variables(self) -> list[str]:
        """All variables, in first-mention order (objective, constraints,
        bounds, integers)."""
        seen: dict[str, None] = {}
        for name in self.objective:
            seen.setdefault(name)
        for constraint in self.constraints:
            for name in constraint.coefs:
                seen.setdefault(name)
        for name in self.bounds:
            seen.setdefault(name)
        for name in sorted(self.integers):
            seen.setdefault(name)
        return list(seen)

    def bound(self, variable: str) -> tuple[float | None, float | None]:
        return self.bounds.get(variable, (0.0, None))

    def validate(self) -> None:
        for variable, (low, high) in self.bounds.items():
            if low is not None and high is not None and low > high:
                raise LpError(f"variable {variable!r}: bounds [{low}, {high}] are empty")
        names = set()
        for constraint in self.constraints:
            if constraint.name in names:
                raise LpError(f"duplicate constraint name {constraint.name!r}")
            names.add(constraint.name)

    # ------------------------------------------------------- serialization

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "sense": self.sense,
            "objective": dict(self.objective),
            "objective_constant": self.objective_constant,
            "constraints": [
                {"name": c.name, "coefs": dict(c.coefs), "relop": c.relop, "rhs": c.rhs}
                for c in self.constraints
            ],
            "bounds": {v: list(b) for v, b in self.bounds.items()},
            "integers": sorted(self.integers),
        }

    @classmethod
    def from_json(cls, document: dict[str, Any]) -> "LinearProgram":
        if not isinstance(document, dict):
            raise LpError("LP document must be an object")
        try:
            lp = cls(
                name=document.get("name", "lp"),
                sense=document.get("sense", "min"),
                objective={k: float(v) for k, v in document.get("objective", {}).items()},
                objective_constant=float(document.get("objective_constant", 0.0)),
                constraints=[
                    Constraint(
                        name=c["name"],
                        coefs={k: float(v) for k, v in c["coefs"].items()},
                        relop=c["relop"],
                        rhs=float(c["rhs"]),
                    )
                    for c in document.get("constraints", [])
                ],
                bounds={
                    v: (None if b[0] is None else float(b[0]), None if b[1] is None else float(b[1]))
                    for v, b in document.get("bounds", {}).items()
                },
                integers=set(document.get("integers", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LpError(f"malformed LP document: {exc}") from exc
        lp.validate()
        return lp


@dataclass
class SolverResult:
    """The outcome of a solve."""

    status: str  # "optimal" | "infeasible" | "unbounded"
    objective: float | None = None
    values: dict[str, float] = field(default_factory=dict)
    #: Dual value per constraint name (LPs only, when the solver provides them).
    duals: dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    solver: str = ""

    @property
    def optimal(self) -> bool:
        return self.status == "optimal"

    def to_json(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "objective": self.objective,
            "values": dict(self.values),
            "duals": dict(self.duals),
            "iterations": self.iterations,
            "solver": self.solver,
        }

    @classmethod
    def from_json(cls, document: dict[str, Any]) -> "SolverResult":
        return cls(
            status=document["status"],
            objective=document.get("objective"),
            values=dict(document.get("values", {})),
            duals=dict(document.get("duals", {})),
            iterations=int(document.get("iterations", 0)),
            solver=document.get("solver", ""),
        )
