"""Dantzig–Wolfe decomposition for multi-commodity transportation.

"The proposed approach has been validated by the example of Dantzig–Wolfe
decomposition algorithm for multi-commodity transportation problem."
(paper §4)

The coupling capacity rows stay in the *restricted master problem*; each
commodity's transportation polytope is represented by convex combinations
of its extreme points, generated on demand: at every iteration the master
duals price the arcs and the per-commodity *pricing subproblems* — which
are independent — are solved either locally or **in parallel on a pool of
remote solver services** via :class:`~repro.apps.optimization.dispatcher.SolverPool`.
That remote mode is the paper's "any optimization algorithm written as an
AMPL script ... run in distributed mode".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.optimization.dispatcher import SolverPool
from repro.apps.optimization.lp import Constraint, LinearProgram, SolverResult
from repro.apps.optimization.multicommodity import (
    MultiCommodityInstance,
    commodity_subproblem,
)
from repro.apps.optimization.solvers import solve_lp

_TOL = 1e-7
#: Penalty cost for capacity overflow in the master; keeps the restricted
#: master feasible before enough columns exist.
_OVERFLOW_COST = 1e6


class DantzigWolfeError(Exception):
    """Decomposition failure (infeasible subproblem, no convergence)."""


@dataclass
class DwColumn:
    """One extreme point of a commodity's transportation polytope."""

    commodity: str
    flows: dict[tuple[str, str], float]
    cost: float  # true cost c_k · x


@dataclass
class DwIterationStats:
    iteration: int
    master_objective: float
    new_columns: int
    min_reduced_cost: float


@dataclass
class DwResult:
    objective: float
    flows: dict[str, dict[tuple[str, str], float]]
    iterations: int
    columns: int
    history: list[DwIterationStats] = field(default_factory=list)

    def to_summary(self) -> dict[str, Any]:
        return {
            "objective": self.objective,
            "iterations": self.iterations,
            "columns": self.columns,
        }


SubproblemSolver = Callable[[list[LinearProgram]], list[SolverResult]]


def _local_subproblem_solver(solver: str) -> SubproblemSolver:
    def solve_batch(programs: list[LinearProgram]) -> list[SolverResult]:
        return [solve_lp(lp, solver=solver) for lp in programs]

    return solve_batch


class DantzigWolfe:
    """The column-generation driver."""

    def __init__(
        self,
        instance: MultiCommodityInstance,
        master_solver: str = "scipy",
        subproblem_solver: SubproblemSolver | None = None,
        pool: SolverPool | None = None,
        max_iterations: int = 100,
    ):
        self.instance = instance
        self.master_solver = master_solver
        if pool is not None:
            self.solve_subproblems: SubproblemSolver = pool.solve_all
        else:
            self.solve_subproblems = subproblem_solver or _local_subproblem_solver("scipy")
        self.max_iterations = max_iterations
        self.columns: dict[str, list[DwColumn]] = {k: [] for k in instance.commodities}

    # ------------------------------------------------------------- master

    def _build_master(self) -> LinearProgram:
        instance = self.instance
        lp = LinearProgram(sense="min", name="dw-master")
        for k, columns in self.columns.items():
            for p, column in enumerate(columns):
                lp.objective[f"lambda[{k},{p}]"] = column.cost
        for i, j in instance.arcs():
            coefs: dict[str, float] = {}
            for k, columns in self.columns.items():
                for p, column in enumerate(columns):
                    flow = column.flows.get((i, j), 0.0)
                    if flow:
                        coefs[f"lambda[{k},{p}]"] = flow
            overflow = f"overflow[{i},{j}]"
            coefs[overflow] = -1.0
            lp.objective[overflow] = _OVERFLOW_COST
            lp.constraints.append(
                Constraint(
                    name=f"capacity[{i},{j}]",
                    coefs=coefs,
                    relop="<=",
                    rhs=instance.capacity[i][j],
                )
            )
        for k, columns in self.columns.items():
            lp.constraints.append(
                Constraint(
                    name=f"convexity[{k}]",
                    coefs={f"lambda[{k},{p}]": 1.0 for p in range(len(columns))},
                    relop="=",
                    rhs=1.0,
                )
            )
        return lp

    # ------------------------------------------------------------ pricing

    def _extract_column(self, commodity: str, result: SolverResult) -> DwColumn:
        if not result.optimal:
            raise DantzigWolfeError(
                f"subproblem for {commodity!r} is {result.status}: instance infeasible?"
            )
        flows: dict[tuple[str, str], float] = {}
        for i in self.instance.origins:
            for j in self.instance.destinations:
                value = result.values.get(f"x[{i},{j}]", 0.0)
                if abs(value) > _TOL:
                    flows[(i, j)] = value
        true_cost = sum(
            self.instance.cost[commodity][i][j] * flow for (i, j), flow in flows.items()
        )
        return DwColumn(commodity=commodity, flows=flows, cost=true_cost)

    def _price(self, arc_prices: dict[tuple[str, str], float]) -> list[SolverResult]:
        programs = [
            commodity_subproblem(self.instance, k, arc_prices)
            for k in self.instance.commodities
        ]
        return self.solve_subproblems(programs)

    # -------------------------------------------------------------- solve

    def solve(self) -> DwResult:
        """Run column generation to optimality."""
        # initial columns: each commodity's uncapacitated optimum
        for commodity, result in zip(self.instance.commodities, self._price({})):
            self.columns[commodity].append(self._extract_column(commodity, result))

        history: list[DwIterationStats] = []
        master_result: SolverResult | None = None
        for iteration in range(1, self.max_iterations + 1):
            master = self._build_master()
            master_result = solve_lp(master, solver=self.master_solver)
            if not master_result.optimal:
                raise DantzigWolfeError(f"master LP is {master_result.status}")
            arc_prices = {
                (i, j): master_result.duals.get(f"capacity[{i},{j}]", 0.0)
                for i, j in self.instance.arcs()
            }
            sigma = {
                k: master_result.duals.get(f"convexity[{k}]", 0.0)
                for k in self.instance.commodities
            }
            new_columns = 0
            min_reduced = 0.0
            for commodity, result in zip(self.instance.commodities, self._price(arc_prices)):
                column = self._extract_column(commodity, result)
                reduced_cost = result.objective - sigma[commodity]
                min_reduced = min(min_reduced, reduced_cost)
                if reduced_cost < -_TOL:
                    self.columns[commodity].append(column)
                    new_columns += 1
            history.append(
                DwIterationStats(
                    iteration=iteration,
                    master_objective=master_result.objective,
                    new_columns=new_columns,
                    min_reduced_cost=min_reduced,
                )
            )
            if new_columns == 0:
                return self._finish(master_result, history)
        raise DantzigWolfeError(
            f"no convergence after {self.max_iterations} iterations"
        )

    def _finish(self, master_result: SolverResult, history: list[DwIterationStats]) -> DwResult:
        overflow = sum(
            value
            for name, value in master_result.values.items()
            if name.startswith("overflow[") and value > _TOL
        )
        if overflow > 1e-5:
            raise DantzigWolfeError(
                f"master still uses {overflow:.4g} units of capacity overflow: "
                "the instance is infeasible under its arc capacities"
            )
        flows: dict[str, dict[tuple[str, str], float]] = {
            k: {} for k in self.instance.commodities
        }
        objective = 0.0
        for k, columns in self.columns.items():
            for p, column in enumerate(columns):
                weight = master_result.values.get(f"lambda[{k},{p}]", 0.0)
                if weight <= _TOL:
                    continue
                objective += weight * column.cost
                for arc, flow in column.flows.items():
                    flows[k][arc] = flows[k].get(arc, 0.0) + weight * flow
        return DwResult(
            objective=objective,
            flows=flows,
            iterations=len(history),
            columns=sum(len(c) for c in self.columns.values()),
            history=history,
        )
