"""Optimization services: translator and solvers behind the unified API.

The paper's stack (§4, [12-13]) covers "all basic phases of optimization
modeling": translating model+data into a solver-ready problem, solving it,
and post-processing. Here:

- the *translator service* turns AMPL model/data text into the LP
  interchange JSON;
- a *solver service* solves LP JSON with one configured solver backend —
  deploy several (simplex, scipy) to form the heterogeneous pool;
- a *solve service* chains both (model text in, solution out).
"""

from __future__ import annotations

from typing import Any

from repro.apps.optimization.ampl import AmplError, translate
from repro.apps.optimization.lp import LinearProgram, LpError
from repro.apps.optimization.solvers import SOLVERS, solve_lp
from repro.core.errors import AdapterError

LP_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["objective", "constraints"],
    "properties": {
        "name": {"type": "string"},
        "sense": {"enum": ["min", "max"]},
        "objective": {"type": "object"},
        "constraints": {"type": "array"},
        "bounds": {"type": "object"},
        "integers": {"type": "array"},
    },
}

RESULT_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["status"],
    "properties": {
        "status": {"enum": ["optimal", "infeasible", "unbounded"]},
        "objective": {"type": ["number", "null"]},
        "values": {"type": "object"},
        "duals": {"type": "object"},
    },
}


def _translate(model: str, data: Any = None) -> dict[str, Any]:
    try:
        return {"lp": translate(model, data).to_json()}
    except AmplError as exc:
        raise AdapterError(f"translation failed: {exc}") from exc


def translator_service_config(name: str = "ampl-translate") -> dict[str, Any]:
    """AMPL model/data → LP JSON."""
    return {
        "description": {
            "name": name,
            "title": "AMPL translator",
            "description": "Translates AMPL model and data text into linear-program JSON.",
            "inputs": {
                "model": {"schema": {"type": "string", "minLength": 1}},
                "data": {"schema": {"type": ["string", "object"]}, "required": False},
            },
            "outputs": {"lp": {"schema": LP_SCHEMA}},
            "tags": ["optimization", "ampl", "translator"],
        },
        "adapter": "python",
        "config": {"callable": _translate},
    }


def _make_solver_callable(solver: str):
    def solve(lp: dict[str, Any]) -> dict[str, Any]:
        try:
            program = LinearProgram.from_json(lp)
            result = solve_lp(program, solver=solver)
        except LpError as exc:
            raise AdapterError(f"bad LP document: {exc}") from exc
        return {"result": result.to_json()}

    return solve


def _make_subprocess_solver_callable(solver: str):
    """One solver process per job — genuine parallelism across a pool."""
    import json
    import subprocess
    import sys
    import tempfile
    from pathlib import Path

    def solve(lp: dict[str, Any]) -> dict[str, Any]:
        with tempfile.TemporaryDirectory(prefix="lp-solve-") as scratch_name:
            scratch = Path(scratch_name)
            (scratch / "lp.json").write_text(json.dumps(lp))
            argv = [
                sys.executable,
                "-m",
                "repro.apps.optimization.cli",
                "solve",
                "--lp",
                str(scratch / "lp.json"),
                "--solver",
                solver,
                "--out",
                str(scratch / "result.json"),
            ]
            completed = subprocess.run(argv, capture_output=True, text=True)
            if completed.returncode != 0:
                raise AdapterError(
                    f"solver process failed (exit {completed.returncode}): "
                    f"{completed.stderr.strip()}"
                )
            return {"result": json.loads((scratch / "result.json").read_text())}

    return solve


def _with_simulated_latency(callable_fn, latency: float):
    """Wrap a service callable with a modeled remote-execution delay.

    Stands in for the paper's distributed testbed: the solver pool there
    ran on *other machines*, so a subproblem's wall time at the dispatcher
    is mostly remote compute + queueing, not local CPU. On a laptop — and
    especially a single-core CI box — that remote time is modeled as a
    calibrated sleep so pool-scaling behaviour stays measurable; the real
    solve still runs and its answer is still exact.
    """
    import time

    def with_latency(**kwargs):
        time.sleep(latency)
        return callable_fn(**kwargs)

    return with_latency


def solver_service_config(
    name: str,
    solver: str = "simplex",
    packaging: str = "python",
    simulated_latency: float = 0.0,
) -> dict[str, Any]:
    """LP JSON → solution, using one configured backend.

    ``packaging="subprocess"`` runs each solve in its own OS process (the
    paper's external-solver setup; real parallelism on multi-core hosts).
    ``simulated_latency`` adds a modeled remote-machine delay per job (see
    :func:`_with_simulated_latency`).
    """
    if solver not in SOLVERS:
        raise ValueError(f"unknown solver {solver!r}; available: {sorted(SOLVERS)}")
    if packaging not in ("python", "subprocess"):
        raise ValueError(f"unknown packaging {packaging!r} (use 'python' or 'subprocess')")
    callable_fn = (
        _make_solver_callable(solver)
        if packaging == "python"
        else _make_subprocess_solver_callable(solver)
    )
    if simulated_latency > 0:
        callable_fn = _with_simulated_latency(callable_fn, simulated_latency)
    return {
        "description": {
            "name": name,
            "title": f"LP solver ({solver})",
            "description": f"Solves linear programs with the {solver} backend "
            "(integer variables via branch & bound).",
            "inputs": {"lp": {"schema": LP_SCHEMA}},
            "outputs": {"result": {"schema": RESULT_SCHEMA}},
            "tags": ["optimization", "solver", solver],
        },
        "adapter": "python",
        "config": {"callable": callable_fn},
    }


def _make_solve_callable(solver: str):
    def run(model: str, data: Any = None) -> dict[str, Any]:
        try:
            program = translate(model, data)
        except AmplError as exc:
            raise AdapterError(f"translation failed: {exc}") from exc
        return {"result": solve_lp(program, solver=solver).to_json(), "lp": program.to_json()}

    return run


def solve_service_config(name: str = "ampl-solve", solver: str = "simplex") -> dict[str, Any]:
    """AMPL model/data → solution in one call (translate + solve)."""
    return {
        "description": {
            "name": name,
            "title": "AMPL solve",
            "description": "Translates an AMPL model and solves it.",
            "inputs": {
                "model": {"schema": {"type": "string", "minLength": 1}},
                "data": {"schema": {"type": ["string", "object"]}, "required": False},
            },
            "outputs": {"result": {"schema": RESULT_SCHEMA}, "lp": {"schema": LP_SCHEMA}},
            "tags": ["optimization", "ampl", "solver"],
        },
        "adapter": "python",
        "config": {"callable": _make_solve_callable(solver)},
    }
