"""Optimization modeling as computational web services (paper §4, [12-13]).

The paper integrates "various optimization solvers intended for basic
classes of mathematical programming problems and translators of AMPL
optimization modeling language", with a dispatcher service that runs AMPL
scripts in distributed mode against a pool of solver services, validated
on Dantzig–Wolfe decomposition of multi-commodity transportation.

This subpackage builds that stack from scratch:

- :mod:`repro.apps.optimization.lp` — the linear-program interchange form;
- :mod:`repro.apps.optimization.ampl` — an AMPL-subset translator
  (lexer → parser → AST → grounder → LP);
- :mod:`repro.apps.optimization.solvers` — a two-phase primal simplex with
  dual extraction, branch & bound for integers, and a scipy/HiGHS wrapper
  (the "different solvers" of the paper);
- :mod:`repro.apps.optimization.services` — translator and solver service
  configurations;
- :mod:`repro.apps.optimization.dispatcher` — the solver-pool dispatcher;
- :mod:`repro.apps.optimization.multicommodity` — instance generation and
  models for the multi-commodity transportation problem;
- :mod:`repro.apps.optimization.dantzig_wolfe` — Dantzig–Wolfe column
  generation with subproblems solved in parallel by remote services.
"""

from repro.apps.optimization.ampl import AmplError, translate
from repro.apps.optimization.lp import Constraint, LinearProgram, SolverResult
from repro.apps.optimization.solvers import solve_lp

__all__ = [
    "AmplError",
    "Constraint",
    "LinearProgram",
    "SolverResult",
    "solve_lp",
    "translate",
]
