"""A dense two-phase primal simplex with dual extraction.

The solver works on a *standardized* copy of the program:

1. maximization becomes minimization of the negated objective;
2. every variable is shifted/mirrored/split so the working variables are
   all nonnegative (upper bounds become extra rows);
3. every constraint becomes an equality with a slack or surplus column,
   rows are sign-normalized so the right-hand side is nonnegative;
4. phase 1 minimizes the sum of one artificial per row; phase 2 minimizes
   the true cost with artificials barred from entering.

Bland's rule keeps it cycle-free. After phase 2, constraint duals come
from solving ``Bᵀ y = c_B`` against the original row order — the piece
Dantzig–Wolfe needs for column pricing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.optimization.lp import LinearProgram, SolverResult

_TOL = 1e-9


class SimplexError(Exception):
    """Solver failure that is not an LP status (iteration explosion, bug)."""


@dataclass
class _VarMap:
    """How one original variable maps onto working columns."""

    kind: str  # "shift" | "mirror" | "split"
    column: int
    negative_column: int = -1  # for "split"
    offset: float = 0.0  # value = offset + x  (shift) or offset - x (mirror)


@dataclass
class _Standardized:
    matrix: np.ndarray  # m x n equality system, rhs >= 0
    rhs: np.ndarray
    cost: np.ndarray
    cost_constant: float
    var_maps: dict[str, _VarMap]
    #: per original-constraint: (row index, sign applied to the row)
    row_of_constraint: list[tuple[int, float]]
    n_structural: int  # columns before slacks


def _standardize(lp: LinearProgram) -> _Standardized:
    lp.validate()
    variables = lp.variables
    sign = 1.0 if lp.sense == "min" else -1.0

    columns: list[dict[int, float]] = []  # per working column: row -> coef (filled later)
    var_maps: dict[str, _VarMap] = {}
    extra_rows: list[tuple[dict[str, float], str, float, str]] = []  # upper bound rows

    for name in variables:
        low, high = lp.bound(name)
        if low is None and high is None:
            var_maps[name] = _VarMap("split", column=len(columns), negative_column=len(columns) + 1)
            columns.extend(({}, {}))
        elif low is None:  # only an upper bound: mirror x = high - x'
            var_maps[name] = _VarMap("mirror", column=len(columns), offset=float(high))
            columns.append({})
        else:
            var_maps[name] = _VarMap("shift", column=len(columns), offset=float(low))
            columns.append({})
            if high is not None:
                extra_rows.append(({name: 1.0}, "<=", float(high), f"_ub[{name}]"))

    all_rows = [(c.coefs, c.relop, float(c.rhs), c.name) for c in lp.constraints] + extra_rows
    m = len(all_rows)
    n_structural = len(columns)
    n_slack = sum(1 for _, relop, _, _ in all_rows if relop in ("<=", ">="))
    matrix = np.zeros((m, n_structural + n_slack), dtype=float)
    rhs = np.zeros(m, dtype=float)
    cost = np.zeros(n_structural + n_slack, dtype=float)
    cost_constant = sign * lp.objective_constant

    def apply_var(row: int, name: str, coef: float, scale: float) -> float:
        """Write a variable's contribution into the matrix; returns the
        rhs adjustment caused by offsets."""
        mapping = var_maps[name]
        if mapping.kind == "split":
            matrix[row, mapping.column] += scale * coef
            matrix[row, mapping.negative_column] -= scale * coef
            return 0.0
        if mapping.kind == "mirror":  # value = offset - x'
            matrix[row, mapping.column] -= scale * coef
            return scale * coef * mapping.offset
        matrix[row, mapping.column] += scale * coef  # shift: value = offset + x'
        return scale * coef * mapping.offset

    slack_column = n_structural
    row_of_constraint: list[tuple[int, float]] = []
    for row, (coefs, relop, b, _name) in enumerate(all_rows):
        moved = 0.0
        for name, coef in coefs.items():
            moved += apply_var(row, name, float(coef), 1.0)
        b -= moved
        if relop == "<=":
            matrix[row, slack_column] = 1.0
            slack_column += 1
        elif relop == ">=":
            matrix[row, slack_column] = -1.0
            slack_column += 1
        row_sign = 1.0
        if b < 0:
            matrix[row, :] *= -1.0
            b = -b
            row_sign = -1.0
        rhs[row] = b
        if row < len(lp.constraints):
            row_of_constraint.append((row, row_sign))

    for name, coef in lp.objective.items():
        if name not in var_maps:
            continue
        mapping = var_maps[name]
        value = sign * float(coef)
        if mapping.kind == "split":
            cost[mapping.column] += value
            cost[mapping.negative_column] -= value
        elif mapping.kind == "mirror":
            cost[mapping.column] -= value
            cost_constant += value * mapping.offset
        else:
            cost[mapping.column] += value
            cost_constant += value * mapping.offset

    return _Standardized(
        matrix=matrix,
        rhs=rhs,
        cost=cost,
        cost_constant=cost_constant,
        var_maps=var_maps,
        row_of_constraint=row_of_constraint,
        n_structural=n_structural,
    )


def _run_simplex(
    tableau: np.ndarray,
    basis: list[int],
    cost: np.ndarray,
    allowed: np.ndarray,
    max_iterations: int,
) -> tuple[str, int]:
    """Primal simplex on ``[A | b]`` with basis ``basis``; ``cost`` covers
    every column of A. Returns (status, iterations)."""
    m = tableau.shape[0]
    iterations = 0
    # scale the optimality tolerance with the cost magnitude: big-M style
    # penalty costs otherwise turn float dust into spurious entering columns
    reduced_tol = _TOL * max(1.0, float(np.abs(cost).max()))
    while True:
        if iterations >= max_iterations:
            return "iteration_limit", iterations
        y = cost[basis] @ tableau[:, :-1]
        reduced = cost - y
        candidates = np.where(allowed & (reduced < -reduced_tol))[0]
        if candidates.size == 0:
            return "optimal", iterations
        entering = int(candidates[0])  # Bland: smallest index
        column = tableau[:, entering]
        positive = column > _TOL
        if not positive.any():
            return "unbounded", iterations
        ratios = np.full(m, np.inf)
        ratios[positive] = tableau[positive, -1] / column[positive]
        best = ratios.min()
        leaving_candidates = [r for r in range(m) if positive[r] and ratios[r] <= best + _TOL]
        leaving = min(leaving_candidates, key=lambda r: basis[r])  # Bland on exit
        pivot = tableau[leaving, entering]
        tableau[leaving, :] /= pivot
        for row in range(m):
            if row != leaving and abs(tableau[row, entering]) > _TOL:
                tableau[row, :] -= tableau[row, entering] * tableau[leaving, :]
        basis[leaving] = entering
        iterations += 1


def solve_with_simplex(lp: LinearProgram, max_iterations: int | None = None) -> SolverResult:
    """Solve an LP; returns primal values, objective and constraint duals."""
    form = _standardize(lp)
    m, n = form.matrix.shape
    if max_iterations is None:
        max_iterations = 2000 + 50 * (m + n)

    # phase 1: artificials on every row
    work = np.hstack([form.matrix, np.eye(m), form.rhs.reshape(-1, 1)])
    basis = list(range(n, n + m))
    phase1_cost = np.concatenate([np.zeros(n), np.ones(m)])
    allowed = np.ones(n + m, dtype=bool)
    status, iterations1 = _run_simplex(work, basis, phase1_cost, allowed, max_iterations)
    if status == "iteration_limit":
        raise SimplexError("phase 1 exceeded the iteration limit")
    infeasibility = float(phase1_cost[basis] @ work[:, -1])
    if infeasibility > 1e-7:
        return SolverResult(status="infeasible", iterations=iterations1, solver="simplex")

    # drive any remaining artificials out of the basis where possible
    for row in range(m):
        if basis[row] >= n:
            pivot_candidates = np.where(np.abs(work[row, :n]) > _TOL)[0]
            if pivot_candidates.size:
                entering = int(pivot_candidates[0])
                pivot = work[row, entering]
                work[row, :] /= pivot
                for other in range(m):
                    if other != row and abs(work[other, entering]) > _TOL:
                        work[other, :] -= work[other, entering] * work[row, :]
                basis[row] = entering

    # phase 2: real costs, artificial columns barred
    phase2_cost = np.concatenate([form.cost, np.zeros(m)])
    allowed = np.concatenate([np.ones(n, dtype=bool), np.zeros(m, dtype=bool)])
    status, iterations2 = _run_simplex(work, basis, phase2_cost, allowed, max_iterations)
    if status == "iteration_limit":
        raise SimplexError("phase 2 exceeded the iteration limit")
    if status == "unbounded":
        return SolverResult(
            status="unbounded", iterations=iterations1 + iterations2, solver="simplex"
        )

    solution = np.zeros(n + m)
    for row, column in enumerate(basis):
        solution[column] = work[row, -1]

    values: dict[str, float] = {}
    for name, mapping in form.var_maps.items():
        if mapping.kind == "split":
            values[name] = float(solution[mapping.column] - solution[mapping.negative_column])
        elif mapping.kind == "mirror":
            values[name] = float(mapping.offset - solution[mapping.column])
        else:
            values[name] = float(mapping.offset + solution[mapping.column])

    sense_sign = 1.0 if lp.sense == "min" else -1.0
    objective = sense_sign * (float(form.cost @ solution[:n]) + form.cost_constant)

    # duals: y = c_B B^{-1} against the *original* (pre-pivot) columns
    original = np.hstack([form.matrix, np.eye(m)])
    basis_matrix = original[:, basis]
    try:
        y = np.linalg.solve(basis_matrix.T, phase2_cost[basis])
    except np.linalg.LinAlgError:
        y = np.linalg.lstsq(basis_matrix.T, phase2_cost[basis], rcond=None)[0]
    duals: dict[str, float] = {}
    for constraint, (row, row_sign) in zip(lp.constraints, form.row_of_constraint):
        duals[constraint.name] = sense_sign * row_sign * float(y[row])

    return SolverResult(
        status="optimal",
        objective=objective,
        values=values,
        duals=duals,
        iterations=iterations1 + iterations2,
        solver="simplex",
    )
