"""Branch & bound for mixed-integer programs.

Works over any LP relaxation solver: solve the relaxation, pick the most
fractional integer variable, branch with tightened bounds, prune by bound
against the incumbent. Best-first exploration keeps the tree small on the
transportation-style instances the applications produce.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import replace as dataclass_replace
from typing import Callable

from repro.apps.optimization.lp import LinearProgram, SolverResult

_INT_TOL = 1e-6


def _most_fractional(result: SolverResult, integers: set[str]) -> str | None:
    worst_name, worst_gap = None, _INT_TOL
    for name in sorted(integers):
        value = result.values.get(name, 0.0)
        gap = abs(value - round(value))
        if gap > worst_gap:
            worst_name, worst_gap = name, gap
    return worst_name


def _with_bound(lp: LinearProgram, variable: str, low: float | None, high: float | None) -> LinearProgram:
    old_low, old_high = lp.bound(variable)
    new_low = old_low if low is None else max(low, old_low if old_low is not None else low)
    new_high = old_high if high is None else min(high, old_high if old_high is not None else high)
    bounds = dict(lp.bounds)
    bounds[variable] = (new_low, new_high)
    return dataclass_replace(lp, bounds=bounds, constraints=list(lp.constraints))


def solve_mip(
    lp: LinearProgram,
    relaxation_solver: Callable[[LinearProgram], SolverResult],
    max_nodes: int = 10000,
) -> SolverResult:
    """Best-first branch & bound; returns the integer optimum."""
    sense_factor = 1.0 if lp.sense == "min" else -1.0
    counter = itertools.count()
    incumbent: SolverResult | None = None
    nodes_explored = 0
    heap: list[tuple[float, int, LinearProgram]] = []

    root = relaxation_solver(lp)
    if root.status != "optimal":
        return SolverResult(status=root.status, solver=f"bb+{root.solver}")
    heapq.heappush(heap, (sense_factor * root.objective, next(counter), lp))

    while heap and nodes_explored < max_nodes:
        bound_key, _, node = heapq.heappop(heap)
        if incumbent is not None and bound_key >= sense_factor * incumbent.objective - 1e-9:
            continue  # pruned by bound
        relaxed = relaxation_solver(node)
        nodes_explored += 1
        if relaxed.status != "optimal":
            continue
        if incumbent is not None and sense_factor * relaxed.objective >= sense_factor * incumbent.objective - 1e-9:
            continue
        branch_variable = _most_fractional(relaxed, lp.integers)
        if branch_variable is None:
            # integral: round off float dust and accept as incumbent
            values = dict(relaxed.values)
            for name in lp.integers:
                values[name] = float(round(values.get(name, 0.0)))
            incumbent = SolverResult(
                status="optimal",
                objective=relaxed.objective,
                values=values,
                iterations=relaxed.iterations,
                solver=f"bb+{relaxed.solver}",
            )
            continue
        value = relaxed.values[branch_variable]
        down = _with_bound(node, branch_variable, None, math.floor(value))
        up = _with_bound(node, branch_variable, math.ceil(value), None)
        for child in (down, up):
            heapq.heappush(heap, (sense_factor * relaxed.objective, next(counter), child))

    if incumbent is None:
        return SolverResult(status="infeasible", solver="bb")
    incumbent.iterations = nodes_explored
    return incumbent
