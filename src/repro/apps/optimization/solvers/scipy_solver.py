"""The HiGHS-backed solver (via ``scipy.optimize.linprog``).

Stands in for the external/commercial solvers the paper's optimization
services integrated: a second, independent implementation behind the same
solver-service contract, which also cross-checks the from-scratch simplex
in the test suite.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.apps.optimization.lp import LinearProgram, SolverResult


def solve_with_scipy(lp: LinearProgram) -> SolverResult:
    """Solve an LP with HiGHS; integer variables are ignored here (branch &
    bound handles them at a higher level)."""
    lp.validate()
    variables = lp.variables
    if not variables:
        return SolverResult(status="optimal", objective=lp.objective_constant, solver="scipy")
    index = {name: i for i, name in enumerate(variables)}
    sign = 1.0 if lp.sense == "min" else -1.0
    cost = np.zeros(len(variables))
    for name, coef in lp.objective.items():
        cost[index[name]] = sign * coef

    a_ub_rows, b_ub, ub_names = [], [], []
    a_eq_rows, b_eq, eq_names = [], [], []
    for constraint in lp.constraints:
        row = np.zeros(len(variables))
        for name, coef in constraint.coefs.items():
            row[index[name]] = coef
        if constraint.relop == "<=":
            a_ub_rows.append(row)
            b_ub.append(constraint.rhs)
            ub_names.append(constraint.name)
        elif constraint.relop == ">=":
            a_ub_rows.append(-row)
            b_ub.append(-constraint.rhs)
            ub_names.append(constraint.name)
        else:
            a_eq_rows.append(row)
            b_eq.append(constraint.rhs)
            eq_names.append(constraint.name)

    outcome = linprog(
        cost,
        A_ub=np.array(a_ub_rows) if a_ub_rows else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq_rows) if a_eq_rows else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=[lp.bound(name) for name in variables],
        method="highs",
    )

    if outcome.status == 2:
        return SolverResult(status="infeasible", solver="scipy")
    if outcome.status == 3:
        return SolverResult(status="unbounded", solver="scipy")
    if not outcome.success:
        return SolverResult(status="infeasible", solver="scipy")

    values = {name: float(outcome.x[index[name]]) for name in variables}
    objective = sign * float(outcome.fun) + lp.objective_constant

    # Dual convention (matching the simplex solver): the marginal change of
    # the *original* objective per unit increase of the constraint's rhs.
    # HiGHS marginals are ∂z_min/∂b for the rows as passed, so >= rows
    # (negated on entry) flip sign, and maximization flips again.
    duals: dict[str, float] = {}
    relop_of = {c.name: c.relop for c in lp.constraints}
    if outcome.ineqlin is not None:
        for name, marginal in zip(ub_names, np.atleast_1d(outcome.ineqlin.marginals)):
            flip = -1.0 if relop_of[name] == ">=" else 1.0
            duals[name] = sign * flip * float(marginal)
    if outcome.eqlin is not None:
        for name, marginal in zip(eq_names, np.atleast_1d(outcome.eqlin.marginals)):
            duals[name] = sign * float(marginal)

    return SolverResult(
        status="optimal",
        objective=objective,
        values=values,
        duals=duals,
        iterations=int(getattr(outcome, "nit", 0)),
        solver="scipy",
    )
