"""LP/MIP solvers — the "pool of different solvers" of the paper.

- :mod:`repro.apps.optimization.solvers.simplex` — a dense two-phase
  primal simplex written from scratch, with dual extraction (needed by
  Dantzig–Wolfe) and Bland anti-cycling;
- :mod:`repro.apps.optimization.solvers.branch_bound` — branch & bound
  over any LP solver for integer variables;
- :mod:`repro.apps.optimization.solvers.scipy_solver` — a wrapper around
  ``scipy.optimize.linprog`` (HiGHS), standing in for the commercial
  solvers the paper integrated.

:func:`solve_lp` picks by name, which is how solver services are
parameterized.
"""

from __future__ import annotations

from repro.apps.optimization.lp import LinearProgram, SolverResult
from repro.apps.optimization.solvers.branch_bound import solve_mip
from repro.apps.optimization.solvers.scipy_solver import solve_with_scipy
from repro.apps.optimization.solvers.simplex import SimplexError, solve_with_simplex

SOLVERS = {
    "simplex": solve_with_simplex,
    "scipy": solve_with_scipy,
}


def solve_lp(lp: LinearProgram, solver: str = "simplex") -> SolverResult:
    """Solve ``lp`` with the named solver; integer variables route through
    branch & bound automatically."""
    if solver not in SOLVERS:
        raise ValueError(f"unknown solver {solver!r}; available: {sorted(SOLVERS)}")
    if lp.integers:
        return solve_mip(lp, relaxation_solver=SOLVERS[solver])
    return SOLVERS[solver](lp)


__all__ = [
    "SOLVERS",
    "SimplexError",
    "solve_lp",
    "solve_mip",
    "solve_with_scipy",
    "solve_with_simplex",
]
