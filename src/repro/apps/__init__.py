"""Applications built on the MathCloud platform (paper §4).

- :mod:`repro.apps.cas` — an exact-arithmetic computer-algebra kernel
  (the Maxima stand-in) and its computational-service packaging;
- :mod:`repro.apps.matrix` — "error-free" inversion of ill-conditioned
  matrices via block decomposition and the Schur complement (Table 2);
- :mod:`repro.apps.xray` — interpretation of X-ray diffractometry data of
  carbonaceous films over a library of carbon nanostructures;
- :mod:`repro.apps.optimization` — optimization modeling: an AMPL-subset
  translator, LP solvers, a solver-pool dispatcher and the Dantzig–Wolfe
  decomposition for multi-commodity transportation.
"""
