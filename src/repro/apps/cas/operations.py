"""The CAS service's operation set.

Each operation takes up to three matrices. The fused operations
(``mulsub``, ``muladd``, ``negmul``) exist because the distributed
inversion algorithm is communication-bound: fusing `A − B·C` into one
service call halves the payload traffic for the Schur steps.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.apps.cas.kernel import CasError, RationalMatrix

#: op name -> (arity, function)
OPERATIONS: dict[str, tuple[int, Callable[..., RationalMatrix]]] = {
    "invert": (1, lambda a: a.inverse()),
    "neg": (1, lambda a: -a),
    "transpose": (1, lambda a: a.transpose()),
    "add": (2, lambda a, b: a + b),
    "sub": (2, lambda a, b: a - b),
    "mul": (2, lambda a, b: a @ b),
    "negmul": (2, lambda a, b: -(a @ b)),
    "mulsub": (3, lambda a, b, c: a - b @ c),
    "muladd": (3, lambda a, b, c: a + b @ c),
    "hilbert": (0, lambda: None),  # handled specially (takes n, not matrices)
}


def apply_operation(
    op: str,
    a: Any = None,
    b: Any = None,
    c: Any = None,
    n: int | None = None,
) -> dict[str, Any]:
    """Run one CAS operation on JSON matrix payloads.

    Returns ``{"result": <matrix JSON>, "elapsed": seconds,
    "result_size": chars}``. Raises :class:`CasError` on bad requests.
    """
    if op not in OPERATIONS:
        raise CasError(f"unknown operation {op!r}; available: {sorted(OPERATIONS)}")
    started = time.perf_counter()
    if op == "hilbert":
        if not isinstance(n, int) or n < 1:
            raise CasError("operation 'hilbert' needs a positive integer 'n'")
        result = RationalMatrix.hilbert(n)
    else:
        arity, function = OPERATIONS[op]
        operands = []
        for name, payload in zip(("a", "b", "c"), (a, b, c)):
            if len(operands) == arity:
                break
            if payload is None:
                raise CasError(f"operation {op!r} needs operand {name!r}")
            operands.append(RationalMatrix.from_json(payload))
        result = function(*operands)
    elapsed = time.perf_counter() - started
    return {
        "result": result.to_json(),
        "elapsed": elapsed,
        "result_size": result.digit_size(),
    }
