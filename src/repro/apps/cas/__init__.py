"""Exact-arithmetic computer algebra kernel (the Maxima stand-in).

The matrix-inversion application (paper §4, [9]) used the Maxima CAS for
"error-free" symbolic computation over exact rationals. This subpackage
provides the equivalent kernel: matrices of ``fractions.Fraction`` with
exact inverse, product and Schur operations, whose intermediate results
grow in digit size on ill-conditioned inputs exactly the way Maxima's
symbolic output does — the property the paper's Table 2 measures.

The kernel is packaged two ways:

- :mod:`repro.apps.cas.cli` — a standalone process (like a Maxima run)
  invoked per job; concurrent jobs get genuine OS-level parallelism;
- :mod:`repro.apps.cas.service` — ready-made service configurations for
  both the subprocess and the in-process packaging.

Exports resolve lazily so the CLI subprocess does not pay for the service
stack's import chain on every job.
"""

from importlib import import_module
from typing import Any

_EXPORTS = {
    "CasError": "repro.apps.cas.kernel",
    "OPERATIONS": "repro.apps.cas.operations",
    "RationalMatrix": "repro.apps.cas.kernel",
    "apply_operation": "repro.apps.cas.operations",
    "cas_service_config": "repro.apps.cas.service",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.apps.cas' has no attribute {name!r}")
    return getattr(import_module(module_name), name)
