"""Service configurations exposing the CAS through the unified REST API.

Two packagings of the same service contract:

- ``packaging="subprocess"`` (default) — each job runs ``python -m
  repro.apps.cas.cli`` as its own OS process (one "Maxima run" per job,
  exactly the paper's setup). Concurrent CAS jobs therefore execute in
  genuine parallel — the property the Table 2 benchmark depends on.
- ``packaging="python"`` — in-process via the Python adapter; faster per
  call (no interpreter start-up), used by tests and small examples.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any

from repro.core.errors import AdapterError
from repro.apps.cas.operations import OPERATIONS, apply_operation

#: Matrix payloads are bulk data (megabytes of digit strings for large
#: ill-conditioned inputs); the schema deliberately stops at the envelope
#: so request validation stays O(1) in the matrix size — the kernel
#: re-checks every entry anyway when it parses the fractions.
MATRIX_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["rows"],
    "properties": {"rows": {"type": "array", "minItems": 1}},
}

_DESCRIPTION: dict[str, Any] = {
    "title": "Computer algebra service",
    "description": (
        "Exact rational matrix operations (Maxima stand-in): inversion, "
        "products, fused Schur-complement steps and Hilbert generation."
    ),
    "inputs": {
        "op": {"schema": {"type": "string", "enum": sorted(OPERATIONS)}},
        "a": {"schema": MATRIX_SCHEMA, "required": False},
        "b": {"schema": MATRIX_SCHEMA, "required": False},
        "c": {"schema": MATRIX_SCHEMA, "required": False},
        "n": {"schema": {"type": "integer", "minimum": 1}, "required": False},
    },
    "outputs": {
        "result": {"schema": MATRIX_SCHEMA},
        "elapsed": {"schema": {"type": "number"}},
        "result_size": {"schema": {"type": "integer"}},
    },
    "tags": ["cas", "linear-algebra", "exact-arithmetic"],
}


def run_inprocess(op: str, a: Any = None, b: Any = None, c: Any = None, n: int | None = None):
    """The python-adapter callable: run the operation in this interpreter."""
    return apply_operation(op, a=a, b=b, c=c, n=n)


def run_subprocess(op: str, a: Any = None, b: Any = None, c: Any = None, n: int | None = None):
    """The subprocess callable: one CLI process per job (a "Maxima run")."""
    with tempfile.TemporaryDirectory(prefix="cas-") as scratch_name:
        scratch = Path(scratch_name)
        argv = [sys.executable, "-m", "repro.apps.cas.cli", "--op", op, "--out", str(scratch / "result.json")]
        for name, payload in (("a", a), ("b", b), ("c", c)):
            if payload is not None:
                path = scratch / f"{name}.json"
                path.write_text(json.dumps(payload))
                argv.extend([f"--{name}", str(path)])
        if n is not None:
            argv.extend(["--n", str(n)])
        completed = subprocess.run(argv, capture_output=True, text=True)
        if completed.returncode != 0:
            raise AdapterError(
                f"CAS process failed (exit {completed.returncode}): {completed.stderr.strip()}"
            )
        return json.loads((scratch / "result.json").read_text())


def _file_passing(callable_fn):
    """Wrap a CAS callable so the result matrix travels as a file resource.

    Exactly-ill-conditioned intermediates reach megabytes of digits; the
    paper's inversion application moved them between services as file
    resources rather than inline values (§2: "some of these values may
    contain identifiers of file resources"). Input file references are
    resolved by the adapter before the callable runs; this wrapper stores
    the output matrix in the job's file store and returns its reference,
    so job representations (polled repeatedly) stay small and downstream
    services fetch the content directly from this service.
    """

    def with_files(context, **inputs):
        envelope = callable_fn(**inputs)
        content = json.dumps(envelope["result"]).encode("utf-8")
        reference = context.store_file(
            content, name="result-matrix.json", content_type="application/json"
        )
        return {**envelope, "result": reference}

    return with_files


def cas_service_config(
    name: str = "cas", packaging: str = "subprocess", file_results: bool = False
) -> dict[str, Any]:
    """A deployable service configuration for the CAS.

    With ``file_results=True`` the result matrix is returned as a file
    reference instead of an inline value (see :func:`_file_passing`).
    """
    callables = {"subprocess": run_subprocess, "python": run_inprocess}
    if packaging not in callables:
        raise ValueError(f"unknown packaging {packaging!r} (use 'subprocess' or 'python')")
    callable_fn = callables[packaging]
    if file_results:
        callable_fn = _file_passing(callable_fn)
    return {
        "description": {"name": name, **_DESCRIPTION},
        "adapter": "python",
        "config": {"callable": callable_fn},
    }
