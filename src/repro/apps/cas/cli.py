"""The CAS as a standalone process (one "Maxima run" per invocation).

::

    python -m repro.apps.cas.cli --op invert  --a a.json  --out result.json
    python -m repro.apps.cas.cli --op mulsub  --a a.json --b b.json --c c.json --out r.json
    python -m repro.apps.cas.cli --op hilbert --n 50 --out h.json

Operand files contain matrix JSON (``{"rows": [["1/2", ...], ...]}``);
the output file receives the :func:`~repro.apps.cas.operations.apply_operation`
envelope. The container's Command adapter drives exactly this interface,
so concurrent CAS jobs are separate OS processes — genuine parallelism,
as with the paper's external Maxima processes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.apps.cas.kernel import CasError
from repro.apps.cas.operations import OPERATIONS, apply_operation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="cas", description="Exact rational matrix operations.")
    parser.add_argument("--op", required=True, choices=sorted(OPERATIONS))
    parser.add_argument("--a", help="path to operand A (matrix JSON)")
    parser.add_argument("--b", help="path to operand B (matrix JSON)")
    parser.add_argument("--c", help="path to operand C (matrix JSON)")
    parser.add_argument("--n", type=int, help="size for the 'hilbert' generator")
    parser.add_argument("--out", required=True, help="path for the result JSON")
    return parser


def _load(path: str | None):
    if path is None:
        return None
    return json.loads(Path(path).read_text())


def main(argv: list[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    try:
        envelope = apply_operation(
            options.op,
            a=_load(options.a),
            b=_load(options.b),
            c=_load(options.c),
            n=options.n,
        )
    except (CasError, OSError, ValueError) as error:
        print(f"cas error: {error}", file=sys.stderr)
        return 1
    Path(options.out).write_text(json.dumps(envelope))
    return 0


if __name__ == "__main__":
    sys.exit(main())
