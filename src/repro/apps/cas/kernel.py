"""Exact rational matrices: the computational core of the CAS.

Entries are ``fractions.Fraction``; every operation is error-free. On
ill-conditioned inputs (Hilbert matrices being the canonical example) the
numerators/denominators of intermediate results grow to hundreds or
thousands of digits — the "symbolic representation ... reached up to
hundreds of megabytes" effect the paper reports.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Iterable


class CasError(Exception):
    """Algebraic failure: shape mismatch, singular matrix, bad input."""


def _to_fraction(value: Any) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise CasError(f"matrix entries must be rational numbers, got {value!r}")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        try:
            return Fraction(value)
        except (ValueError, ZeroDivisionError) as exc:
            raise CasError(f"bad rational literal {value!r}: {exc}") from exc
    if isinstance(value, float):
        # floats are exact binary rationals; accept them explicitly
        return Fraction(value).limit_denominator(10**12)
    raise CasError(f"matrix entries must be rational numbers, got {type(value).__name__}")


class RationalMatrix:
    """An immutable-by-convention dense matrix over exact rationals."""

    __slots__ = ("rows",)

    def __init__(self, rows: Iterable[Iterable[Any]]):
        self.rows: list[list[Fraction]] = [[_to_fraction(v) for v in row] for row in rows]
        if not self.rows or not self.rows[0]:
            raise CasError("matrix must be non-empty")
        width = len(self.rows[0])
        if any(len(row) != width for row in self.rows):
            raise CasError("matrix rows have inconsistent lengths")

    # -------------------------------------------------------- constructors

    @classmethod
    def identity(cls, n: int) -> "RationalMatrix":
        return cls([[Fraction(int(i == j)) for j in range(n)] for i in range(n)])

    @classmethod
    def zeros(cls, n: int, m: int | None = None) -> "RationalMatrix":
        m = n if m is None else m
        return cls([[Fraction(0)] * m for _ in range(n)])

    @classmethod
    def hilbert(cls, n: int) -> "RationalMatrix":
        """The n×n Hilbert matrix H[i][j] = 1/(i+j+1) — the paper's
        canonical ill-conditioned test input."""
        return cls([[Fraction(1, i + j + 1) for j in range(n)] for i in range(n)])

    # -------------------------------------------------------------- shape

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_cols(self) -> int:
        return len(self.rows[0])

    @property
    def shape(self) -> tuple[int, int]:
        return self.n_rows, self.n_cols

    @property
    def square(self) -> bool:
        return self.n_rows == self.n_cols

    # ---------------------------------------------------------- arithmetic

    def _check_same_shape(self, other: "RationalMatrix", op: str) -> None:
        if self.shape != other.shape:
            raise CasError(f"cannot {op} matrices of shapes {self.shape} and {other.shape}")

    def __add__(self, other: "RationalMatrix") -> "RationalMatrix":
        self._check_same_shape(other, "add")
        return RationalMatrix(
            [[a + b for a, b in zip(ra, rb)] for ra, rb in zip(self.rows, other.rows)]
        )

    def __sub__(self, other: "RationalMatrix") -> "RationalMatrix":
        self._check_same_shape(other, "subtract")
        return RationalMatrix(
            [[a - b for a, b in zip(ra, rb)] for ra, rb in zip(self.rows, other.rows)]
        )

    def __neg__(self) -> "RationalMatrix":
        return RationalMatrix([[-a for a in row] for row in self.rows])

    def __matmul__(self, other: "RationalMatrix") -> "RationalMatrix":
        if self.n_cols != other.n_rows:
            raise CasError(
                f"cannot multiply {self.shape} by {other.shape}: inner dimensions differ"
            )
        transposed = list(zip(*other.rows))
        return RationalMatrix(
            [[sum(a * b for a, b in zip(row, col)) for col in transposed] for row in self.rows]
        )

    def scale(self, factor: Any) -> "RationalMatrix":
        scalar = _to_fraction(factor)
        return RationalMatrix([[scalar * a for a in row] for row in self.rows])

    def transpose(self) -> "RationalMatrix":
        return RationalMatrix([list(column) for column in zip(*self.rows)])

    def inverse(self) -> "RationalMatrix":
        """Exact inverse via Gauss–Jordan elimination with row pivoting."""
        if not self.square:
            raise CasError(f"cannot invert a non-square {self.shape} matrix")
        n = self.n_rows
        work = [list(row) + identity_row for row, identity_row in zip(self.rows, RationalMatrix.identity(n).rows)]
        for col in range(n):
            pivot_row = next((r for r in range(col, n) if work[r][col] != 0), None)
            if pivot_row is None:
                raise CasError("matrix is singular")
            if pivot_row != col:
                work[col], work[pivot_row] = work[pivot_row], work[col]
            pivot = work[col][col]
            work[col] = [v / pivot for v in work[col]]
            for r in range(n):
                if r != col and work[r][col] != 0:
                    factor = work[r][col]
                    work[r] = [v - factor * p for v, p in zip(work[r], work[col])]
        return RationalMatrix([row[n:] for row in work])

    # -------------------------------------------------------------- blocks

    def block(self, row0: int, row1: int, col0: int, col1: int) -> "RationalMatrix":
        """The submatrix rows[row0:row1] × cols[col0:col1]."""
        if not (0 <= row0 < row1 <= self.n_rows and 0 <= col0 < col1 <= self.n_cols):
            raise CasError(f"block ({row0}:{row1}, {col0}:{col1}) out of range for {self.shape}")
        return RationalMatrix([row[col0:col1] for row in self.rows[row0:row1]])

    def split_2x2(self, split: int | None = None) -> tuple["RationalMatrix", ...]:
        """The paper's 4-block decomposition: (A11, A12, A21, A22)."""
        if not self.square:
            raise CasError("2x2 block split needs a square matrix")
        n = self.n_rows
        if n < 2:
            raise CasError("matrix too small to split")
        m = split if split is not None else n // 2
        if not 0 < m < n:
            raise CasError(f"split {m} out of range for size {n}")
        return (
            self.block(0, m, 0, m),
            self.block(0, m, m, n),
            self.block(m, n, 0, m),
            self.block(m, n, m, n),
        )

    @classmethod
    def assemble_2x2(
        cls,
        a11: "RationalMatrix",
        a12: "RationalMatrix",
        a21: "RationalMatrix",
        a22: "RationalMatrix",
    ) -> "RationalMatrix":
        if a11.n_rows != a12.n_rows or a21.n_rows != a22.n_rows:
            raise CasError("block row heights do not match")
        if a11.n_cols != a21.n_cols or a12.n_cols != a22.n_cols:
            raise CasError("block column widths do not match")
        top = [ra + rb for ra, rb in zip(a11.rows, a12.rows)]
        bottom = [ra + rb for ra, rb in zip(a21.rows, a22.rows)]
        return cls(top + bottom)

    # ----------------------------------------------------------- equality

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RationalMatrix) and self.rows == other.rows

    def __hash__(self) -> int:
        return hash(tuple(tuple(row) for row in self.rows))

    def is_identity(self) -> bool:
        return self.square and self == RationalMatrix.identity(self.n_rows)

    # -------------------------------------------------------- diagnostics

    def digit_size(self) -> int:
        """Total characters in the exact representation — the paper's
        "symbolic representation ... reached hundreds of megabytes" metric."""
        return sum(len(str(v)) for row in self.rows for v in row)

    def max_denominator_digits(self) -> int:
        return max(len(str(v.denominator)) for row in self.rows for v in row)

    # ------------------------------------------------------- serialization

    def to_json(self) -> dict[str, Any]:
        """JSON form: entries as exact ``"p/q"`` strings."""
        return {"rows": [[str(v) for v in row] for row in self.rows]}

    @classmethod
    def from_json(cls, document: Any) -> "RationalMatrix":
        if not isinstance(document, dict) or "rows" not in document:
            raise CasError("matrix JSON must be an object with 'rows'")
        return cls(document["rows"])

    def __repr__(self) -> str:
        return f"RationalMatrix({self.n_rows}x{self.n_cols})"
