"""Carbon nanostructure geometry.

Atom positions for the structure families considered in the paper's
analysis — toroids, tubules, spherical shells (fullerene-like) and flat
flakes — on a roughly uniform ~0.25 nm carbon–carbon spacing. Geometry,
not chemistry: the Debye scattering curve only needs pair distances.

Lengths are in nanometres; scattering vectors in nm⁻¹.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

#: Approximate carbon-carbon spacing used to grid the surfaces, nm.
CC_SPACING = 0.25


@dataclass(frozen=True)
class StructureSpec:
    """One candidate nanostructure."""

    kind: str  # "torus" | "tube" | "sphere" | "flake"
    name: str
    params: dict[str, float] = field(default_factory=dict)

    @property
    def aspect_ratio(self) -> float | None:
        """R/r for toroids, length/diameter for tubes; None otherwise."""
        if self.kind == "torus":
            return self.params["major_radius"] / self.params["minor_radius"]
        if self.kind == "tube":
            return self.params["length"] / (2 * self.params["radius"])
        return None

    def to_json(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "params": dict(self.params)}

    @classmethod
    def from_json(cls, document: dict[str, Any]) -> "StructureSpec":
        return cls(
            kind=document["kind"],
            name=document["name"],
            params={k: float(v) for k, v in document.get("params", {}).items()},
        )


def _ring_counts(length: float) -> int:
    return max(3, int(round(length / CC_SPACING)))


def torus_atoms(major_radius: float, minor_radius: float) -> np.ndarray:
    """Points on a torus surface (ring of rings)."""
    if major_radius <= minor_radius:
        raise ValueError("torus needs major_radius > minor_radius")
    n_major = _ring_counts(2 * math.pi * major_radius)
    n_minor = _ring_counts(2 * math.pi * minor_radius)
    atoms = []
    for i in range(n_major):
        phi = 2 * math.pi * i / n_major
        for j in range(n_minor):
            theta = 2 * math.pi * j / n_minor
            radial = major_radius + minor_radius * math.cos(theta)
            atoms.append(
                (
                    radial * math.cos(phi),
                    radial * math.sin(phi),
                    minor_radius * math.sin(theta),
                )
            )
    return np.array(atoms)


def tube_atoms(radius: float, length: float) -> np.ndarray:
    """Points on an open cylinder (single-wall tubule)."""
    n_around = _ring_counts(2 * math.pi * radius)
    n_along = _ring_counts(length)
    atoms = []
    for i in range(n_along):
        z = length * (i / max(1, n_along - 1) - 0.5)
        for j in range(n_around):
            theta = 2 * math.pi * j / n_around
            atoms.append((radius * math.cos(theta), radius * math.sin(theta), z))
    return np.array(atoms)


def sphere_atoms(radius: float) -> np.ndarray:
    """Points on a spherical shell (Fibonacci lattice; fullerene-like)."""
    area_per_atom = CC_SPACING**2
    count = max(12, int(round(4 * math.pi * radius**2 / area_per_atom)))
    golden = math.pi * (3.0 - math.sqrt(5.0))
    indices = np.arange(count)
    z = 1.0 - 2.0 * (indices + 0.5) / count
    ring_radius = np.sqrt(np.maximum(0.0, 1.0 - z * z))
    theta = golden * indices
    return radius * np.column_stack(
        [ring_radius * np.cos(theta), ring_radius * np.sin(theta), z]
    )


def flake_atoms(radius: float) -> np.ndarray:
    """Points on a flat disc (graphene flake) on a triangular grid."""
    atoms = []
    row_height = CC_SPACING * math.sqrt(3) / 2
    n_rows = int(radius / row_height)
    for row in range(-n_rows, n_rows + 1):
        y = row * row_height
        offset = (row % 2) * CC_SPACING / 2
        half_width = math.sqrt(max(0.0, radius**2 - y**2))
        n_cols = int(half_width / CC_SPACING)
        for col in range(-n_cols, n_cols + 1):
            atoms.append((col * CC_SPACING + offset, y, 0.0))
    if not atoms:
        atoms.append((0.0, 0.0, 0.0))
    return np.array(atoms)


_BUILDERS = {
    "torus": lambda p: torus_atoms(p["major_radius"], p["minor_radius"]),
    "tube": lambda p: tube_atoms(p["radius"], p["length"]),
    "sphere": lambda p: sphere_atoms(p["radius"]),
    "flake": lambda p: flake_atoms(p["radius"]),
}


def build_structure(spec: StructureSpec) -> np.ndarray:
    """Atom coordinates (N×3, nm) for a structure spec."""
    builder = _BUILDERS.get(spec.kind)
    if builder is None:
        raise ValueError(f"unknown structure kind {spec.kind!r}; have {sorted(_BUILDERS)}")
    try:
        return builder(spec.params)
    except KeyError as exc:
        raise ValueError(f"structure {spec.name!r} is missing parameter {exc}") from exc


def small_library() -> list[StructureSpec]:
    """A reduced candidate library (~50–150 atoms per structure) for tests
    and examples where the full library's curve time is unwelcome."""
    return [
        StructureSpec("torus", name="torus-low", params={"major_radius": 0.8, "minor_radius": 0.35}),
        StructureSpec("torus", name="torus-high", params={"major_radius": 1.4, "minor_radius": 0.25}),
        StructureSpec("tube", name="tube", params={"radius": 0.35, "length": 1.6}),
        StructureSpec("sphere", name="sphere", params={"radius": 0.5}),
        StructureSpec("flake", name="flake", params={"radius": 0.7}),
    ]


def standard_library() -> list[StructureSpec]:
    """The candidate library: the structure families of the paper, sized a
    few nanometres ("few-nanometer-wide carbon toroids")."""
    specs: list[StructureSpec] = []
    for major, minor in ((1.2, 0.5), (1.6, 0.4), (2.0, 0.35)):
        ratio = major / minor
        specs.append(
            StructureSpec(
                "torus",
                name=f"torus-ar{ratio:.1f}",
                params={"major_radius": major, "minor_radius": minor},
            )
        )
    for radius, length in ((0.4, 2.0), (0.6, 4.0)):
        specs.append(
            StructureSpec("tube", name=f"tube-r{radius}-l{length}", params={"radius": radius, "length": length})
        )
    for radius in (0.5, 1.0):
        specs.append(StructureSpec("sphere", name=f"sphere-r{radius}", params={"radius": radius}))
    for radius in (0.8, 1.5):
        specs.append(StructureSpec("flake", name=f"flake-r{radius}", params={"radius": radius}))
    return specs
