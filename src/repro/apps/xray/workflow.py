"""The X-ray analysis orchestration.

The paper's computing scheme: "parallel calculations of scattering curves
for individual nanostructures (performed by a grid application) with
subsequent solution of optimization problems (performed by three different
solvers running on a cluster) to determine the most probable topological
and size distribution of nanostructures", plus post-processing and
plotting steps.

:class:`XRayAnalysis` drives the scheme over live services: one curve job
per library structure (all in flight concurrently), then one fit job per
solver, then consensus (lowest residual), aggregation by topology and a
text plot — the paper's data-preparation/post-processing steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.apps.xray.fitting import FitResult
from repro.apps.xray.structures import StructureSpec
from repro.client.client import ServiceProxy
from repro.http.registry import TransportRegistry

#: Aspect-ratio threshold separating "low" from "high" toroids.
LOW_ASPECT_RATIO = 4.0


@dataclass
class XRayReport:
    """The analysis outcome."""

    library: list[StructureSpec]
    fits: list[FitResult]
    best: FitResult
    #: normalized mixture share per structure kind
    kind_shares: dict[str, float]
    #: share of toroid mass sitting in low-aspect-ratio toroids
    low_aspect_toroid_share: float
    conclusion: str
    plot: str = ""
    curves: dict[str, list[float]] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "kind_shares": dict(self.kind_shares),
            "low_aspect_toroid_share": self.low_aspect_toroid_share,
            "conclusion": self.conclusion,
            "best_solver": self.best.solver,
            "residuals": {fit.solver: fit.residual for fit in self.fits},
            "weights": [float(w) for w in self.best.weights],
        }


def ascii_plot(q_grid: np.ndarray, measured: np.ndarray, fitted: np.ndarray, width: int = 60) -> str:
    """A terminal plot of measured (●) vs fitted (○) intensity."""
    lines = ["I(q)  measured=●  fitted=○"]
    low = min(measured.min(), fitted.min())
    high = max(measured.max(), fitted.max())
    span = max(high - low, 1e-12)
    step = max(1, len(q_grid) // 20)
    for index in range(0, len(q_grid), step):
        m_pos = int((measured[index] - low) / span * (width - 1))
        f_pos = int((fitted[index] - low) / span * (width - 1))
        row = [" "] * width
        row[f_pos] = "○"
        row[m_pos] = "●" if m_pos != f_pos else "◉"
        lines.append(f"q={q_grid[index]:5.1f} |" + "".join(row))
    return "\n".join(lines)


class XRayAnalysis:
    """Drives the full analysis over curve and fit services."""

    def __init__(
        self,
        curve_service_uri: str,
        fit_service_uri: str,
        registry: TransportRegistry | None = None,
        solvers: tuple[str, ...] = ("nnls", "projected-gradient", "multiplicative"),
    ):
        registry = registry or TransportRegistry()
        self.curve_service = ServiceProxy(curve_service_uri, registry)
        self.fit_service = ServiceProxy(fit_service_uri, registry)
        self.solvers = solvers

    def compute_curves(
        self, library: list[StructureSpec], q_grid: np.ndarray, timeout: float = 300.0
    ) -> dict[str, list[float]]:
        """One curve job per structure, all submitted before any is awaited
        (the paper's parallel grid phase)."""
        q_list = [float(v) for v in q_grid]
        handles = [
            self.curve_service.submit(spec=spec.to_json(), q=q_list) for spec in library
        ]
        curves: dict[str, list[float]] = {}
        for spec, handle in zip(library, handles):
            outputs = handle.result(timeout=timeout, poll=0.01)
            curves[spec.name] = outputs["curve"]["curve"]
        return curves

    def run_fits(
        self,
        curves: dict[str, list[float]],
        library: list[StructureSpec],
        measured: np.ndarray,
        timeout: float = 300.0,
    ) -> list[FitResult]:
        """One fit job per solver (the cluster phase), in parallel."""
        matrix = [list(row) for row in np.column_stack([curves[s.name] for s in library])]
        measured_list = [float(v) for v in measured]
        handles = [
            self.fit_service.submit(curves=matrix, measured=measured_list, solver=solver)
            for solver in self.solvers
        ]
        return [
            FitResult.from_json(handle.result(timeout=timeout, poll=0.01)["fit"])
            for handle in handles
        ]

    def analyse(
        self,
        library: list[StructureSpec],
        q_grid: np.ndarray,
        measured: np.ndarray,
        timeout: float = 300.0,
    ) -> XRayReport:
        curves = self.compute_curves(library, q_grid, timeout=timeout)
        fits = self.run_fits(curves, library, measured, timeout=timeout)
        best = min(fits, key=lambda fit: fit.residual)
        report = postprocess(library, fits, best)
        matrix = np.column_stack([curves[s.name] for s in library])
        report.curves = curves
        report.plot = ascii_plot(np.asarray(q_grid), np.asarray(measured), matrix @ best.weights)
        return report


def postprocess(
    library: list[StructureSpec], fits: list[FitResult], best: FitResult
) -> XRayReport:
    """Aggregate the best fit into topology/size conclusions."""
    weights = np.maximum(best.weights, 0.0)
    total = weights.sum() or 1.0
    kind_shares: dict[str, float] = {}
    toroid_mass = low_toroid_mass = 0.0
    for spec, weight in zip(library, weights):
        kind_shares[spec.kind] = kind_shares.get(spec.kind, 0.0) + float(weight) / float(total)
        if spec.kind == "torus":
            toroid_mass += float(weight)
            if (spec.aspect_ratio or 99.0) < LOW_ASPECT_RATIO:
                low_toroid_mass += float(weight)
    low_share = low_toroid_mass / toroid_mass if toroid_mass > 0 else 0.0
    dominant_kind = max(kind_shares, key=kind_shares.get)
    if dominant_kind == "torus" and low_share > 0.5:
        conclusion = (
            "low-aspect-ratio toroids prevail "
            f"({kind_shares['torus']:.0%} toroid mass, {low_share:.0%} of it low-aspect)"
        )
    else:
        conclusion = f"dominant topology: {dominant_kind} ({kind_shares[dominant_kind]:.0%})"
    return XRayReport(
        library=list(library),
        fits=list(fits),
        best=best,
        kind_shares=kind_shares,
        low_aspect_toroid_share=low_share,
        conclusion=conclusion,
    )
