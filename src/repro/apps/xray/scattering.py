"""Debye-formula scattering curves.

For N identical scatterers the orientation-averaged intensity is

    I(q) = N + 2 · Σ_{i<j} sin(q·r_ij) / (q·r_ij)

normalized here per atom (``I/N``) so structures of different sizes are
comparable in mixture fits. The paper's measured range is
q ≈ 5–70 nm⁻¹ (§4, [10]).
"""

from __future__ import annotations

import numpy as np


def default_q_grid(start: float = 5.0, stop: float = 70.0, points: int = 80) -> np.ndarray:
    """The measurement grid of scattering-vector magnitudes, nm⁻¹."""
    return np.linspace(start, stop, points)


def pair_distances(atoms: np.ndarray) -> np.ndarray:
    """All pairwise distances r_ij, i<j (flat vector)."""
    if atoms.ndim != 2 or atoms.shape[1] != 3:
        raise ValueError(f"atoms must be N×3, got {atoms.shape}")
    deltas = atoms[:, None, :] - atoms[None, :, :]
    distances = np.sqrt((deltas**2).sum(axis=2))
    upper = np.triu_indices(len(atoms), k=1)
    return distances[upper]


def debye_curve(atoms: np.ndarray, q_grid: np.ndarray) -> np.ndarray:
    """Normalized Debye intensity I(q)/N over ``q_grid``."""
    n_atoms = len(atoms)
    if n_atoms == 0:
        raise ValueError("structure has no atoms")
    q = np.asarray(q_grid, dtype=float)
    if n_atoms == 1:
        return np.ones_like(q)
    r = pair_distances(atoms)
    # sinc: sin(x)/x with the x→0 limit of 1
    x = np.outer(q, r)
    with np.errstate(invalid="ignore", divide="ignore"):
        sinc = np.where(np.abs(x) < 1e-12, 1.0, np.sin(x) / np.where(x == 0, 1.0, x))
    intensity = n_atoms + 2.0 * sinc.sum(axis=1)
    return intensity / n_atoms
