"""Mixture fitting: decompose a measured curve over the candidate library.

Solves ``min ‖C·w − m‖²  s.t.  w ≥ 0`` where column ``C[:, s]`` is
structure ``s``'s curve. Three independent solvers are provided — the
paper's scheme fed the optimization step to "three different solvers
running on a cluster":

- ``"nnls"`` — the Lawson–Hanson active-set method (scipy);
- ``"projected-gradient"`` — our accelerated projected gradient descent;
- ``"multiplicative"`` — our multiplicative-update iteration (Lee–Seung
  style, naturally nonnegative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np
from scipy.optimize import nnls


@dataclass
class FitResult:
    weights: np.ndarray
    residual: float
    solver: str
    iterations: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "weights": [float(w) for w in self.weights],
            "residual": self.residual,
            "solver": self.solver,
            "iterations": self.iterations,
        }

    @classmethod
    def from_json(cls, document: dict[str, Any]) -> "FitResult":
        return cls(
            weights=np.array(document["weights"], dtype=float),
            residual=float(document["residual"]),
            solver=document.get("solver", ""),
            iterations=int(document.get("iterations", 0)),
        )


def _residual(curves: np.ndarray, measured: np.ndarray, weights: np.ndarray) -> float:
    return float(np.linalg.norm(curves @ weights - measured))


def _fit_nnls(curves: np.ndarray, measured: np.ndarray) -> FitResult:
    weights, residual = nnls(curves, measured)
    return FitResult(weights=weights, residual=float(residual), solver="nnls")


def _fit_projected_gradient(
    curves: np.ndarray, measured: np.ndarray, max_iterations: int = 5000, tol: float = 1e-10
) -> FitResult:
    gram = curves.T @ curves
    correlation = curves.T @ measured
    step = 1.0 / max(np.linalg.eigvalsh(gram).max(), 1e-12)
    weights = np.maximum(0.0, np.linalg.lstsq(curves, measured, rcond=None)[0])
    momentum = weights.copy()
    t_prev = 1.0
    for iteration in range(1, max_iterations + 1):
        gradient = gram @ momentum - correlation
        updated = np.maximum(0.0, momentum - step * gradient)
        t_next = (1.0 + np.sqrt(1.0 + 4.0 * t_prev * t_prev)) / 2.0
        momentum = updated + ((t_prev - 1.0) / t_next) * (updated - weights)
        if np.linalg.norm(updated - weights) < tol * max(1.0, np.linalg.norm(weights)):
            weights = updated
            break
        weights, t_prev = updated, t_next
    return FitResult(
        weights=weights,
        residual=_residual(curves, measured, weights),
        solver="projected-gradient",
        iterations=iteration,
    )


def _fit_multiplicative(
    curves: np.ndarray, measured: np.ndarray, max_iterations: int = 20000, tol: float = 1e-12
) -> FitResult:
    # multiplicative updates need nonnegative data; curves/measured may dip
    # slightly negative (Debye oscillation), so shift into the positive cone
    shift = min(curves.min(), measured.min(), 0.0)
    c = curves - shift + 1e-9
    m = measured - shift + 1e-9
    weights = np.full(curves.shape[1], 1.0 / curves.shape[1])
    for iteration in range(1, max_iterations + 1):
        numerator = c.T @ m
        denominator = c.T @ (c @ weights) + 1e-15
        updated = weights * (numerator / denominator)
        if np.linalg.norm(updated - weights) < tol * max(1.0, np.linalg.norm(weights)):
            weights = updated
            break
        weights = updated
    return FitResult(
        weights=weights,
        residual=_residual(curves, measured, weights),
        solver="multiplicative",
        iterations=iteration,
    )


FIT_SOLVERS: dict[str, Callable[[np.ndarray, np.ndarray], FitResult]] = {
    "nnls": _fit_nnls,
    "projected-gradient": _fit_projected_gradient,
    "multiplicative": _fit_multiplicative,
}


def fit_mixture(
    curves: "np.ndarray | list[list[float]]",
    measured: "np.ndarray | list[float]",
    solver: str = "nnls",
) -> FitResult:
    """Fit nonnegative mixture weights of ``curves`` columns to ``measured``.

    ``curves`` is (n_q, n_structures); ``measured`` is (n_q,).
    """
    solve = FIT_SOLVERS.get(solver)
    if solve is None:
        raise ValueError(f"unknown fit solver {solver!r}; have {sorted(FIT_SOLVERS)}")
    curve_matrix = np.asarray(curves, dtype=float)
    measured_vector = np.asarray(measured, dtype=float)
    if curve_matrix.ndim != 2:
        raise ValueError("curves must be a 2-D matrix (q points × structures)")
    if measured_vector.shape != (curve_matrix.shape[0],):
        raise ValueError(
            f"measured length {measured_vector.shape} does not match curve rows "
            f"{curve_matrix.shape[0]}"
        )
    return solve(curve_matrix, measured_vector)
