"""Synthetic film measurements (the substitution for tokamak data).

The paper analyzed films deposited in the T-10 tokamak; those measurements
are unavailable, so films are synthesized: a planted nonnegative mixture
over the structure library — dominated by low-aspect-ratio toroids, the
published finding — plus an amorphous background and multiplicative
noise. The analysis pipeline can then be scored against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.xray.scattering import debye_curve
from repro.apps.xray.structures import StructureSpec, build_structure


@dataclass
class SyntheticFilm:
    """A synthesized measurement and its ground truth."""

    q_grid: np.ndarray
    measured: np.ndarray
    true_weights: np.ndarray
    library: list[StructureSpec]

    def dominant_structure(self) -> StructureSpec:
        return self.library[int(np.argmax(self.true_weights))]


def toroid_dominated_weights(library: list[StructureSpec], rng: np.random.Generator) -> np.ndarray:
    """The planted mixture: ~70% of the mass on low-aspect-ratio toroids."""
    weights = rng.uniform(0.0, 0.15, size=len(library))
    toroid_indices = [
        index
        for index, spec in enumerate(library)
        if spec.kind == "torus" and (spec.aspect_ratio or 99) < 4.0
    ]
    if not toroid_indices:
        raise ValueError("library has no low-aspect-ratio toroids to plant")
    for index in toroid_indices:
        weights[index] = rng.uniform(0.5, 1.0)
    return weights / weights.sum()


def synthesize_measurement(
    library: list[StructureSpec],
    q_grid: np.ndarray,
    weights: np.ndarray | None = None,
    noise: float = 0.01,
    background: float = 0.05,
    seed: int = 42,
) -> SyntheticFilm:
    """Build a measured curve from the library.

    ``noise`` is the relative (multiplicative) noise level; ``background``
    adds a smooth amorphous term decaying in q.
    """
    rng = np.random.default_rng(seed)
    if weights is None:
        weights = toroid_dominated_weights(library, rng)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (len(library),):
        raise ValueError(f"need one weight per library entry, got {weights.shape}")
    if (weights < 0).any():
        raise ValueError("mixture weights must be nonnegative")

    curves = np.column_stack([debye_curve(build_structure(spec), q_grid) for spec in library])
    clean = curves @ weights
    q = np.asarray(q_grid, dtype=float)
    amorphous = background * np.exp(-q / q.max())
    noisy = (clean + amorphous) * (1.0 + noise * rng.standard_normal(len(q)))
    return SyntheticFilm(q_grid=q, measured=noisy, true_weights=weights, library=list(library))
