"""X-ray diffractometry of carbonaceous films (paper §4, [10-11]).

The application interprets X-ray scattering measurements of films
deposited in the T-10 tokamak by solving an optimization problem over a
broad class of carbon nanostructures: scattering curves are computed for
each candidate structure (the paper ran these in parallel as grid jobs),
then the measured curve is decomposed into a nonnegative mixture of
candidate curves by several solvers (run on a cluster), and
post-processing reports the most probable topology/size distribution —
the published finding being the prevalence of *low-aspect-ratio toroids*.

No tokamak film is available offline, so measurements are synthesized
from a planted toroid-dominated mixture plus noise
(:mod:`repro.apps.xray.synthetic`); the analysis pipeline then has ground
truth to recover. Everything else matches the paper's computing scheme:
per-structure curve jobs through the grid adapter, three fitting solvers
through the cluster adapter, workflow orchestration on top.
"""

from repro.apps.xray.fitting import FIT_SOLVERS, FitResult, fit_mixture
from repro.apps.xray.scattering import debye_curve, default_q_grid
from repro.apps.xray.structures import StructureSpec, build_structure, standard_library
from repro.apps.xray.synthetic import synthesize_measurement
from repro.apps.xray.workflow import XRayAnalysis

__all__ = [
    "FIT_SOLVERS",
    "FitResult",
    "StructureSpec",
    "XRayAnalysis",
    "build_structure",
    "debye_curve",
    "default_q_grid",
    "fit_mixture",
    "standard_library",
    "synthesize_measurement",
]
