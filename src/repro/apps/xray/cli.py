"""Command-line entry points for the X-ray computations.

These are the executables the grid and cluster adapters launch::

    python -m repro.apps.xray.cli curve --spec spec.json --q q.json --out curve.json
    python -m repro.apps.xray.cli fit --curves c.json --measured m.json \
        --solver nnls --out fit.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.apps.xray.fitting import FIT_SOLVERS, fit_mixture
from repro.apps.xray.scattering import debye_curve
from repro.apps.xray.structures import StructureSpec, build_structure


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="xray")
    commands = parser.add_subparsers(dest="command", required=True)

    curve = commands.add_parser("curve", help="compute one structure's scattering curve")
    curve.add_argument("--spec", required=True, help="StructureSpec JSON file")
    curve.add_argument("--q", required=True, help="JSON file with the q grid (list)")
    curve.add_argument("--out", required=True)

    fit = commands.add_parser("fit", help="fit mixture weights to a measured curve")
    fit.add_argument("--curves", required=True, help="JSON matrix (q points × structures)")
    fit.add_argument("--measured", required=True, help="JSON list")
    fit.add_argument("--solver", default="nnls", choices=sorted(FIT_SOLVERS))
    fit.add_argument("--out", required=True)
    return parser


def main(argv: list[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    try:
        if options.command == "curve":
            spec = StructureSpec.from_json(json.loads(Path(options.spec).read_text()))
            q_grid = np.array(json.loads(Path(options.q).read_text()), dtype=float)
            curve = debye_curve(build_structure(spec), q_grid)
            Path(options.out).write_text(
                json.dumps({"structure": spec.name, "curve": [float(v) for v in curve]})
            )
        else:
            curves = json.loads(Path(options.curves).read_text())
            measured = json.loads(Path(options.measured).read_text())
            result = fit_mixture(curves, measured, solver=options.solver)
            Path(options.out).write_text(json.dumps(result.to_json()))
    except (OSError, ValueError, KeyError) as error:
        print(f"xray error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
