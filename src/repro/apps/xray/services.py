"""Service configurations for the X-ray computing scheme.

Matches the paper's deployment: scattering curves as *grid* jobs
("performed by a grid application"), mixture fits as *cluster* jobs
("three different solvers running on a cluster"), plus fast in-process
variants of both for tests and examples.
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

from repro.apps.xray.fitting import FIT_SOLVERS, fit_mixture
from repro.apps.xray.scattering import debye_curve
from repro.apps.xray.structures import StructureSpec, build_structure
from repro.core.errors import AdapterError

SPEC_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["kind", "name"],
    "properties": {
        "kind": {"enum": ["torus", "tube", "sphere", "flake"]},
        "name": {"type": "string"},
        "params": {"type": "object"},
    },
}

_CURVE_DESCRIPTION = {
    "title": "Scattering curve",
    "description": "Computes the Debye scattering curve of one carbon nanostructure.",
    "inputs": {
        "spec": {"schema": SPEC_SCHEMA},
        "q": {"schema": {"type": "array", "items": {"type": "number"}, "minItems": 1}},
    },
    "outputs": {"curve": {"schema": {"type": "object"}}},
    "tags": ["xray", "scattering", "grid"],
}

_FIT_DESCRIPTION = {
    "title": "Mixture fit",
    "description": "Fits nonnegative mixture weights of candidate curves to a measurement.",
    "inputs": {
        "curves": {"schema": {"type": "array"}},
        "measured": {"schema": {"type": "array", "items": {"type": "number"}}},
        "solver": {
            "schema": {"enum": sorted(FIT_SOLVERS)},
            "required": False,
            "default": "nnls",
        },
    },
    "outputs": {"fit": {"schema": {"type": "object"}}},
    "tags": ["xray", "optimization", "cluster"],
}


def _curve_inprocess(spec: dict[str, Any], q: list[float]) -> dict[str, Any]:
    try:
        structure = StructureSpec.from_json(spec)
        curve = debye_curve(build_structure(structure), np.array(q, dtype=float))
    except (ValueError, KeyError) as exc:
        raise AdapterError(f"curve computation failed: {exc}") from exc
    return {"curve": {"structure": structure.name, "curve": [float(v) for v in curve]}}


def _fit_inprocess(curves: list, measured: list, solver: str = "nnls") -> dict[str, Any]:
    try:
        result = fit_mixture(curves, measured, solver=solver)
    except ValueError as exc:
        raise AdapterError(f"fit failed: {exc}") from exc
    return {"fit": result.to_json()}


def _with_simulated_latency(callable_fn, latency: float):
    """Model remote (grid/cluster) execution time with a calibrated delay.

    Used by benchmarks on hosts without spare cores: the real computation
    still runs, but each job also waits as a remote machine would, so the
    *coordination* behaviour (parallel submission, queueing) is measurable.
    """
    import time

    def with_latency(**kwargs):
        time.sleep(latency)
        return callable_fn(**kwargs)

    return with_latency


def curve_service_config(
    name: str = "xray-curve",
    backend: str = "python",
    broker: str = "",
    vo: str = "",
    owner: str = "",
    simulated_latency: float = 0.0,
) -> dict[str, Any]:
    """The curve service: in-process (``backend="python"``) or as grid jobs
    (``backend="grid"``, needing a registered broker resource, a VO and a
    grid credential)."""
    description = {"name": name, **_CURVE_DESCRIPTION}
    if backend == "python":
        callable_fn = _curve_inprocess
        if simulated_latency > 0:
            callable_fn = _with_simulated_latency(callable_fn, simulated_latency)
        return {
            "description": description,
            "adapter": "python",
            "config": {"callable": callable_fn},
        }
    if backend != "grid":
        raise ValueError(f"unknown backend {backend!r} (use 'python' or 'grid')")
    if not (broker and vo and owner):
        raise ValueError("grid backend needs broker, vo and owner")
    jdl = (
        "[\n"
        f'  Executable = "{sys.executable}";\n'
        '  Arguments = "-m repro.apps.xray.cli curve --spec {file:spec} '
        '--q {file:q} --out curve.json";\n'
        '  StdOutput = "out.txt";\n'
        '  StdError = "err.txt";\n'
        f'  VirtualOrganisation = "{vo}";\n'
        '  OutputSandbox = {"curve.json", "out.txt", "err.txt"};\n'
        "]"
    )
    return {
        "description": description,
        "adapter": "grid",
        "config": {
            "broker": broker,
            "jdl": jdl,
            "owner": owner,
            "outputs": {"curve": {"sandbox": "curve.json", "json": True}},
        },
    }


def fit_service_config(
    name: str = "xray-fit",
    backend: str = "python",
    cluster: str = "",
    simulated_latency: float = 0.0,
) -> dict[str, Any]:
    """The fit service: in-process or as cluster batch jobs."""
    description = {"name": name, **_FIT_DESCRIPTION}
    if backend == "python":
        callable_fn = _fit_inprocess
        if simulated_latency > 0:
            callable_fn = _with_simulated_latency(callable_fn, simulated_latency)
        return {
            "description": description,
            "adapter": "python",
            "config": {"callable": callable_fn},
        }
    if backend != "cluster":
        raise ValueError(f"unknown backend {backend!r} (use 'python' or 'cluster')")
    if not cluster:
        raise ValueError("cluster backend needs a cluster resource name")
    command = (
        f"{sys.executable} -m repro.apps.xray.cli fit "
        "--curves {file:curves} --measured {file:measured} "
        "--solver {solver} --out fit.json"
    )
    return {
        "description": description,
        "adapter": "cluster",
        "config": {
            "cluster": cluster,
            "command": command,
            "stage_out": ["fit.json"],
            "outputs": {"fit": {"file": "fit.json", "json": True}},
        },
    }
