"""Block inversion via the Schur complement.

For a 2×2 block split ``A = [[A11, A12], [A21, A22]]`` with invertible
``A11`` and Schur complement ``S = A22 − A21·A11⁻¹·A12``::

    A⁻¹ = [[A11⁻¹ + R·S⁻¹·L,  −R·S⁻¹],
           [−S⁻¹·L,            S⁻¹  ]],   R = A11⁻¹·A12,  L = A21·A11⁻¹

The dependency structure leaves two pairs of block operations independent
(``L ∥ R`` and ``X12 ∥ X21``), which is where the distributed version gets
its concurrency; the two inversions (``A11⁻¹`` then ``S⁻¹``) are the
sequential backbone. Because exact-rational cost grows superlinearly in
both size and digit length, half-size inversions are much cheaper than
one full inversion — so the parallel speedup grows with N, the Table 2
shape.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import json

from repro.apps.cas.kernel import CasError, RationalMatrix
from repro.client.client import ServiceProxy
from repro.core.filerefs import file_uri, is_file_ref
from repro.http.client import RestClient
from repro.http.registry import TransportRegistry


def serial_invert(matrix: RationalMatrix) -> RationalMatrix:
    """Whole-matrix exact inversion (the serial baseline)."""
    return matrix.inverse()


def block_invert_local(matrix: RationalMatrix, split: int | None = None) -> RationalMatrix:
    """The block algorithm executed locally (reference implementation)."""
    a11, a12, a21, a22 = matrix.split_2x2(split)
    b11 = a11.inverse()
    left = a21 @ b11  # L
    right = b11 @ a12  # R
    schur = a22 - left @ a12  # S
    s_inv = schur.inverse()
    x12 = -(right @ s_inv)
    x21 = -(s_inv @ left)
    x11 = b11 - x12 @ left  # = B11 + R·S⁻¹·L
    return RationalMatrix.assemble_2x2(x11, x12, x21, s_inv)


@dataclass
class InversionTrace:
    """Timing/size telemetry of one distributed inversion."""

    steps: list[dict[str, Any]] = field(default_factory=list)

    def record(self, step: str, envelope: dict[str, Any]) -> None:
        self.steps.append(
            {
                "step": step,
                "compute_time": envelope.get("elapsed", 0.0),
                "result_size": envelope.get("result_size", 0),
            }
        )

    @property
    def total_compute_time(self) -> float:
        """Sum of in-service compute across all steps (ignores overlap)."""
        return sum(step["compute_time"] for step in self.steps)


class DistributedInverter:
    """Runs the block algorithm as concurrent jobs on CAS services.

    ``service_uris`` is the pool; independent steps go to different
    services round-robin, so with ≥2 services the ``L ∥ R`` and
    ``X12 ∥ X21`` pairs genuinely overlap.
    """

    def __init__(
        self,
        service_uris: list[str],
        registry: TransportRegistry | None = None,
        poll: float = 0.01,
    ):
        if not service_uris:
            raise ValueError("need at least one CAS service URI")
        registry = registry or TransportRegistry()
        self._proxies = [ServiceProxy(uri, registry) for uri in service_uris]
        self._client = RestClient(registry)
        self._next = 0
        self.poll = poll

    def _proxy(self) -> ServiceProxy:
        proxy = self._proxies[self._next % len(self._proxies)]
        self._next += 1
        return proxy

    def _submit(self, op: str, **operands: Any):
        return self._proxy().submit(op=op, **operands)

    def _collect(self, handle, step: str, trace: InversionTrace) -> dict[str, Any]:
        """The step's result value: either the matrix JSON inline or, for a
        file-passing CAS service, a file reference — which flows straight
        into the next operation as an input (the downstream service fetches
        it directly; the driver never downloads intermediates)."""
        envelope = handle.result(poll=self.poll)
        trace.record(step, envelope)
        return envelope["result"]

    def _materialize(self, value: dict[str, Any]) -> RationalMatrix:
        """Download-and-parse a result that may be a file reference."""
        if is_file_ref(value):
            value = json.loads(self._client.get_bytes(file_uri(value)))
        return RationalMatrix.from_json(value)

    def invert(
        self, matrix: RationalMatrix, split: int | None = None
    ) -> tuple[RationalMatrix, InversionTrace]:
        """Distributed block inversion; returns the inverse and its trace."""
        if not matrix.square:
            raise CasError("cannot invert a non-square matrix")
        trace = InversionTrace()
        a11, a12, a21, a22 = (block.to_json() for block in matrix.split_2x2(split))

        b11 = self._collect(self._submit("invert", a=a11), "invert-a11", trace)

        with ThreadPoolExecutor(max_workers=2) as pool:
            left_future = pool.submit(
                lambda: self._collect(self._submit("mul", a=a21, b=b11), "L=a21*b11", trace)
            )
            right_future = pool.submit(
                lambda: self._collect(self._submit("mul", a=b11, b=a12), "R=b11*a12", trace)
            )
            left, right = left_future.result(), right_future.result()

        schur = self._collect(
            self._submit("mulsub", a=a22, b=left, c=a12), "S=a22-L*a12", trace
        )
        s_inv = self._collect(self._submit("invert", a=schur), "invert-S", trace)

        with ThreadPoolExecutor(max_workers=2) as pool:
            x12_future = pool.submit(
                lambda: self._collect(self._submit("negmul", a=right, b=s_inv), "X12=-R*Sinv", trace)
            )
            x21_future = pool.submit(
                lambda: self._collect(self._submit("negmul", a=s_inv, b=left), "X21=-Sinv*L", trace)
            )
            x12, x21 = x12_future.result(), x21_future.result()

        x11 = self._collect(
            self._submit("mulsub", a=b11, b=x12, c=left), "X11=b11-X12*L", trace
        )
        inverse = RationalMatrix.assemble_2x2(
            self._materialize(x11),
            self._materialize(x12),
            self._materialize(x21),
            self._materialize(s_inv),
        )
        return inverse, trace
