"""'Error-free' inversion of ill-conditioned matrices (paper §4, [9]).

The application inverts Hilbert-type matrices exactly, two ways:

- *serial*: one CAS job inverts the whole matrix (the paper's "serial
  execution time in Maxima" column of Table 2);
- *distributed*: the matrix is split into a 2×2 block grid and inverted
  via the Schur complement, with the block operations running as
  concurrent jobs on CAS services (the "parallel execution time in
  MathCloud (using 4-block decomposition)" column).

Provided as a plain algorithm (:mod:`repro.apps.matrix.blockinv`), as a
service-pool driver (:class:`~repro.apps.matrix.blockinv.DistributedInverter`)
and as a WMS workflow (:mod:`repro.apps.matrix.workflow_def`).
"""

from repro.apps.matrix.blockinv import (
    DistributedInverter,
    block_invert_local,
    serial_invert,
)
from repro.apps.matrix.workflow_def import build_inversion_workflow

__all__ = [
    "DistributedInverter",
    "block_invert_local",
    "build_inversion_workflow",
    "serial_invert",
]
