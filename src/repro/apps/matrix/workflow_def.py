"""The inversion application as a WMS workflow.

"The algorithm was implemented as a workflow based on block decomposition
of input matrix and Schur complement." (paper §4)

The graph below mirrors :func:`repro.apps.matrix.blockinv.block_invert_local`:
script blocks split/assemble the matrix, CAS service blocks carry the
algebra, and the ``L ∥ R`` / ``X12 ∥ X21`` pairs run concurrently because
the engine executes independent ready blocks in parallel::

    matrix ─ split ─┬─ a11 ─ invert ─ b11 ─┬─ L ──┐
                    ├─ a12 ───────────────┬┴─ R ──┼─ S ─ invert ─ Sinv ─┬─ X12 ─┐
                    ├─ a21 ───────────────┘       │                     ├─ X21 ─┼─ assemble ─ inverse
                    └─ a22 ───────────────────────┘                     └─ X11 ─┘
"""

from __future__ import annotations

from repro.core.description import ServiceDescription
from repro.http.registry import TransportRegistry
from repro.workflow.model import (
    ConstBlock,
    DataType,
    InputBlock,
    OutputBlock,
    ScriptBlock,
    ServiceBlock,
    Workflow,
)

_SPLIT_CODE = """
rows = matrix["rows"]
n = len(rows)
m = n // 2
a11 = {"rows": [row[:m] for row in rows[:m]]}
a12 = {"rows": [row[m:] for row in rows[:m]]}
a21 = {"rows": [row[:m] for row in rows[m:]]}
a22 = {"rows": [row[m:] for row in rows[m:]]}
"""

_ASSEMBLE_CODE = """
top = [ra + rb for ra, rb in zip(x11["rows"], x12["rows"])]
bottom = [ra + rb for ra, rb in zip(x21["rows"], x22["rows"])]
inverse = {"rows": top + bottom}
"""


def _cas_block(
    workflow: Workflow,
    block_id: str,
    cas_uri: str,
    description: ServiceDescription,
    op: str,
) -> ServiceBlock:
    """Add a CAS service block plus a const block feeding its ``op`` port."""
    block = ServiceBlock(block_id, uri=cas_uri, description=description)
    workflow.add(block)
    const = ConstBlock(f"{block_id}-op", value=op)
    workflow.add(const)
    workflow.connect(f"{const.id}.value", f"{block_id}.op")
    return block


def build_inversion_workflow(
    cas_uri: str,
    registry: TransportRegistry | None = None,
    description: ServiceDescription | None = None,
    name: str = "block-inversion",
) -> Workflow:
    """The 4-block Schur inversion as a deployable workflow.

    ``cas_uri`` is the CAS service all algebra blocks call (the engine's
    parallel execution provides the concurrency; the CAS container's
    handler pool provides the workers). The CAS description is introspected
    from the URI unless supplied.
    """
    if description is None:
        from repro.client.client import ServiceProxy

        description = ServiceProxy(cas_uri, registry).describe()

    workflow = Workflow(
        name,
        title="Error-free block inversion",
        description="Inverts an ill-conditioned matrix exactly via 4-block "
        "Schur decomposition over CAS services.",
    )
    workflow.add(InputBlock("matrix", type=DataType.OBJECT))
    workflow.add(
        ScriptBlock(
            "split",
            code=_SPLIT_CODE,
            input_names=["matrix"],
            output_names=["a11", "a12", "a21", "a22"],
        )
    )
    workflow.connect("matrix.value", "split.matrix")

    invert_a11 = _cas_block(workflow, "invert-a11", cas_uri, description, "invert")
    workflow.connect("split.a11", "invert-a11.a")

    left = _cas_block(workflow, "left", cas_uri, description, "mul")  # L = a21·b11
    workflow.connect("split.a21", "left.a")
    workflow.connect("invert-a11.result", "left.b")

    right = _cas_block(workflow, "right", cas_uri, description, "mul")  # R = b11·a12
    workflow.connect("invert-a11.result", "right.a")
    workflow.connect("split.a12", "right.b")

    schur = _cas_block(workflow, "schur", cas_uri, description, "mulsub")  # S = a22 − L·a12
    workflow.connect("split.a22", "schur.a")
    workflow.connect("left.result", "schur.b")
    workflow.connect("split.a12", "schur.c")

    invert_schur = _cas_block(workflow, "invert-schur", cas_uri, description, "invert")
    workflow.connect("schur.result", "invert-schur.a")

    x12 = _cas_block(workflow, "x12", cas_uri, description, "negmul")  # −R·S⁻¹
    workflow.connect("right.result", "x12.a")
    workflow.connect("invert-schur.result", "x12.b")

    x21 = _cas_block(workflow, "x21", cas_uri, description, "negmul")  # −S⁻¹·L
    workflow.connect("invert-schur.result", "x21.a")
    workflow.connect("left.result", "x21.b")

    x11 = _cas_block(workflow, "x11", cas_uri, description, "mulsub")  # b11 − X12·L
    workflow.connect("invert-a11.result", "x11.a")
    workflow.connect("x12.result", "x11.b")
    workflow.connect("left.result", "x11.c")

    workflow.add(
        ScriptBlock(
            "assemble",
            code=_ASSEMBLE_CODE,
            input_names=["x11", "x12", "x21", "x22"],
            output_names=["inverse"],
        )
    )
    workflow.connect("x11.result", "assemble.x11")
    workflow.connect("x12.result", "assemble.x12")
    workflow.connect("x21.result", "assemble.x21")
    workflow.connect("invert-schur.result", "assemble.x22")

    workflow.add(OutputBlock("inverse", type=DataType.OBJECT))
    workflow.connect("assemble.inverse", "inverse.value")
    workflow.validate()
    return workflow
