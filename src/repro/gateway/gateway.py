"""The replicated-service API gateway.

:class:`ServiceGateway` exposes the paper's unified REST API (Table 1)
over a *pool* of replica containers behind one stable endpoint:

- ``POST /services/{name}`` spreads across healthy replicas through a
  pluggable balancing policy, with circuit breakers, a global retry
  budget and idempotent replay;
- job-scoped routes (``GET``/``DELETE`` job, file fetches) are pinned to
  the replica that owns the job via the id-prefix scheme in
  :mod:`repro.gateway.routing`;
- saturation answers ``429`` and unavailability ``503``, both with a
  ``Retry-After`` hint, instead of queueing or hanging;
- ``?wait=`` long-polls pass straight through to the owning replica, and
  the ``X-Request-Id`` correlation id threads gateway → replica.

The gateway is itself a :class:`~repro.http.app.RestApp`: it serves over
TCP and in process alike, and a gateway can front other gateways (job-id
prefixes simply stack).
"""

from __future__ import annotations

import json
import logging
import threading
import time
from typing import Any
from urllib.parse import urlencode

from repro.cache import routing_hint
from repro.gateway.balancer import Policy, create_policy, ring_successor
from repro.gateway.breaker import RetryBudget
from repro.gateway.handoff import HandoffTable
from repro.gateway.idempotency import IdempotencyCache
from repro.gateway.replicaset import Replica, ReplicaSet, ReplicaState
from repro.gateway.routing import (
    decode_blob_ref,
    decode_job_id,
    rewrite_job_document,
    rewrite_tree,
    rewrite_uri,
)
from repro.http.app import RestApp
from repro.http.client import IDEMPOTENCY_KEY_HEADER, X_CACHE_HEADER, parse_retry_after
from repro.http.messages import Headers, HttpError, Request, Response
from repro.http.registry import TransportRegistry
from repro.http.server import RestServer
from repro.http.transport import ConnectError, TransportError
from repro.observability import (
    ObservabilityMiddleware,
    gateway_status,
    instrument_gateway,
    mount_metrics,
)
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.trace import Tracer, build_trace_tree, merge_spans, span, trace_headers

logger = logging.getLogger(__name__)

#: Request headers never forwarded to replicas: hop-by-hop per RFC 7230,
#: plus the ones the transport recomputes.
_HOP_BY_HOP = frozenset(
    {
        "connection",
        "keep-alive",
        "host",
        "content-length",
        "transfer-encoding",
        "te",
        "upgrade",
        "proxy-connection",
    }
)

#: Response headers copied verbatim on proxied responses (bodies are
#: re-serialised, so entity headers like Content-Length are recomputed).
_FORWARDED_RESPONSE_HEADERS = (
    "Content-Type",
    "Content-Range",
    "Content-Disposition",
    "Accept-Ranges",
    "Retry-After",
    "ETag",
    X_CACHE_HEADER,
)


class ServiceGateway:
    """Fronts a :class:`ReplicaSet` with the unified REST API."""

    def __init__(
        self,
        registry: TransportRegistry | None = None,
        name: str = "gateway",
        replicas: ReplicaSet | None = None,
        policy: "str | Policy" = "round-robin",
        retry_budget: RetryBudget | None = None,
        idempotency: IdempotencyCache | None = None,
        max_attempts: int = 3,
        retry_after_hint: float = 1.0,
        retry_after_cap: float = 30.0,
        observability: bool = True,
    ):
        self.name = name
        self.registry = registry or TransportRegistry()
        # explicit None checks: an empty ReplicaSet / IdempotencyCache is
        # falsy (len() == 0), yet a caller-supplied one must still be used
        self.replicas = replicas if replicas is not None else ReplicaSet(registry=self.registry)
        if isinstance(policy, str):
            self.policy_name = policy
            self.policy: Policy = create_policy(policy)
        else:
            self.policy_name = type(policy).__name__
            self.policy = policy
        self.retry_budget = retry_budget if retry_budget is not None else RetryBudget()
        self.idempotency = idempotency if idempotency is not None else IdempotencyCache()
        self.max_attempts = max_attempts
        self.retry_after_hint = retry_after_hint
        # every Retry-After this gateway emits is clamped to this ceiling,
        # so a wound-up breaker cannot tell clients to go away for minutes
        self.retry_after_cap = retry_after_cap
        #: Per-tenant rate-limit/concurrency gate, set by enable_tenancy.
        self.tenant_gate = None
        #: Where retired replicas' jobs went: old job-id prefixes stay
        #: resolvable through this table after a retirement.
        self.handoffs = HandoffTable()
        #: In-progress retirements: replica id -> the successor a failed
        #: migration already (partially) copied jobs to, so retries stick.
        self._retiring: dict[str, str] = {}
        #: The autoscaler driving this gateway's membership, if any
        #: (attached by :class:`repro.autoscale.Autoscaler`).
        self.autoscaler = None
        self.app = RestApp(name)
        self.metrics: "MetricsRegistry | None" = None
        self.tracer: "Tracer | None" = None
        self._forward_attempts = None
        if observability:
            self.metrics = MetricsRegistry(name)
            self.tracer = Tracer(name)
            self.app.add_middleware(ObservabilityMiddleware(self.metrics, self.tracer))
            mount_metrics(self.app, self.metrics)
            self._forward_attempts = self.metrics.counter(
                "mc_gateway_forward_attempts_total",
                "Submit forward attempts to replicas, by outcome.",
                labels=("outcome",),
            )
        self._server: RestServer | None = None
        # what the replicas' result caches did with our submits, as seen
        # in their X-Cache answers (surfaced in /health)
        self._cache_lock = threading.Lock()
        self._cache_counts = {"hit": 0, "coalesced": 0, "miss": 0}
        self.local_base = self.registry.bind_local(name, self.app)
        self.app.route("GET", "/", self._health)
        self.app.route("GET", "/health", self._health)
        self.app.route("GET", "/status", self._status)
        self.app.route("GET", "/services", self._index)
        self.app.route("GET", "/services/{name}", self._describe)
        self.app.route("POST", "/services/{name}", self._submit)
        self.app.route("GET", "/services/{name}/jobs/{job_id}", self._get_job)
        self.app.route("DELETE", "/services/{name}/jobs/{job_id}", self._delete_job)
        self.app.route("GET", "/services/{name}/jobs/{job_id}/trace", self._get_trace)
        self.app.route("GET", "/services/{name}/jobs/{job_id}/files/{file_id...}", self._get_file)
        self.app.route("POST", "/blobs", self._put_blob)
        self.app.route("PUT", "/blobs/{ref}", self._put_blob)
        self.app.route("GET", "/blobs/{ref}", self._get_blob)
        self.app.route("GET", "/blobs/{ref}/manifest", self._get_blob_manifest)
        if self.metrics is not None:
            instrument_gateway(self)

    # ----------------------------------------------------------- publishing

    @property
    def base_uri(self) -> str:
        """The advertised URI prefix (http when served, local otherwise)."""
        if self._server is not None:
            return self._server.base_url
        return self.local_base

    def service_uri(self, name: str) -> str:
        return f"{self.base_uri}/services/{name}"

    def serve(self, host: str = "127.0.0.1", port: int = 0, **server_options: object) -> RestServer:
        """Expose the gateway over TCP; returns the running server.

        Extra keyword arguments are forwarded to :class:`RestServer`.
        """
        if self._server is not None:
            raise RuntimeError("gateway is already serving")
        self._server = RestServer(self.app, host=host, port=port, **server_options).start()
        return self._server

    def shutdown(self) -> None:
        self.replicas.stop_health_checks()
        if self._server is not None:
            self._server.stop()
            self._server = None
        self.registry.unbind_local(self.name)

    # -------------------------------------------------------------- tenancy

    def enable_tenancy(self, registry=None):
        """Enforce per-tenant rate limits and concurrency caps here.

        The gate attributes every request to its billing tenant, answers
        429 + Retry-After (tenant named in the body) for tenants over
        their token bucket, concurrency cap, or known-exhausted quota,
        and negative-caches replica quota sheds (see ``_note_replica_shed``)
        so repeat offenders stop consuming forward attempts. Returns the
        registry so callers can declare tenants on it.
        """
        from repro.tenancy import TenantGate, TenantRegistry
        from repro.tenancy.gate import instrument_tenancy

        if self.tenant_gate is not None:
            raise RuntimeError("tenancy is already enabled")
        registry = registry or TenantRegistry()
        self.tenant_gate = TenantGate(registry, metrics=self.metrics, enforce=True)
        self.app.add_middleware(self.tenant_gate)
        if self.metrics is not None:
            instrument_tenancy(self.metrics, registry)
        return registry

    def _note_replica_shed(self, response: Response) -> None:
        """Learn from a replica's 429: when the body names an over-quota
        tenant, suspend that tenant at this gate for the replica's
        Retry-After — the gateway then sheds its traffic up front instead
        of burning forward attempts on guaranteed rejections."""
        try:
            document = response.json_body
        except Exception:  # noqa: BLE001 - not JSON: nothing to learn
            return
        details = document.get("details") if isinstance(document, dict) else None
        if not isinstance(details, dict) or "quota" not in details:
            return
        tenant = details.get("tenant")
        if not tenant:
            return
        ttl = parse_retry_after(response.headers.get("Retry-After"))
        self.tenant_gate.suspend(tenant, ttl if ttl is not None else 5.0)

    # ----------------------------------------------------------- membership

    def add_replica(self, base_url: str, replica_id: str | None = None) -> Replica:
        return self.replicas.add(base_url, replica_id=replica_id)

    def evict(self, replica_id: str) -> None:
        """Remove a replica permanently (crashed, or dead past recovery).

        Unlike :meth:`retire`, nothing is migrated — there is nobody to
        ask. Every piece of gateway state keyed to the replica goes with
        it: cached submit responses and key bindings (they point at jobs
        that died with the replica), the balancer's ring memo, and any
        handoff redirects that end at it — so gateway memory stays
        bounded no matter how much membership churn it sees.

        Retired prefixes whose handoff chain ends at the dead replica
        lose their cached submits too: those entries were kept across the
        retirement because the jobs had moved here, and the jobs just
        died — replaying the stored 201 would acknowledge a job nobody
        holds anymore.
        """
        self.replicas.remove(replica_id)
        self._retiring.pop(replica_id, None)
        orphaned = [
            old for old, target in self.handoffs.snapshot().items()
            if target == replica_id
        ]
        self._forget_replica(replica_id)
        dropped = self.idempotency.invalidate_replica(replica_id)
        for old_id in orphaned:
            dropped += self.idempotency.invalidate_replica(old_id)
        if dropped:
            logger.info("gateway %s evicted %s, dropped %d cached submits", self.name, replica_id, dropped)

    def drain(self, replica_id: str) -> Replica:
        """Flag a replica DRAINING: spread routes stop selecting it while
        pinned job routes keep working. First (reversible) step of
        :meth:`retire`; undo with :meth:`undrain`."""
        return self.replicas.drain(replica_id)

    def undrain(self, replica_id: str) -> None:
        """Cancel a drain (the scaler changed its mind before retiring)."""
        replica = self.replicas.get(replica_id)
        if replica is not None:
            replica.stop_draining()

    def retire(
        self,
        replica_id: str,
        successor_id: "str | None" = None,
        drain_timeout: float = 10.0,
    ) -> dict[str, Any]:
        """Drain a replica and hand every job it holds to its successor.

        The drain protocol (drain, don't drop):

        1. the replica enters ``DRAINING`` — no new submits route to it;
        2. the gateway waits for its own in-flight forwards to finish;
        3. every job the replica holds — finished results included — is
           imported by the successor over the standard API (``GET
           /services/{name}/jobs`` → ``PUT`` each document), raw job ids
           preserved;
        4. the replica leaves the set and the handoff table records where
           its jobs went, so old public job URIs (and Idempotency-Key
           bindings) resolve to the successor from now on.

        Cached idempotent submit responses are deliberately *kept*: their
        job URIs stay valid through the handoff table. Any migration
        failure aborts the retirement with the replica still DRAINING —
        jobs are never dropped halfway; the caller may retry.

        The caller is responsible for quiescing the replica's own queue
        first (see ``JobManager.quiesce``); migrating a WAITING job that
        the origin then also executes is the one way to run work twice.

        Returns a summary: retired id, successor id, jobs migrated.
        """
        replica = self.replicas.get(replica_id)
        if replica is None:
            raise KeyError(replica_id)
        replica.start_draining()
        if successor_id is None:
            successor_id = self._sticky_successor(replica_id)
        if successor_id is None:
            successor_id = self._successor_for(replica_id)
        if successor_id is None or successor_id == replica_id:
            raise RuntimeError(f"no live successor for replica {replica_id!r}")
        successor = self.replicas.get(successor_id)
        if successor is None:
            raise KeyError(successor_id)
        # the choice must be sticky across retries: a partially applied
        # migration has already copied jobs to this successor, and a retry
        # that picked a different one would duplicate them
        self._retiring[replica_id] = successor_id
        deadline = time.monotonic() + drain_timeout
        while replica.in_flight > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        migrated = self._migrate_jobs(replica, successor)
        self._retiring.pop(replica_id, None)
        self.replicas.discard(replica_id)
        self.handoffs.record(replica_id, successor_id)
        forget = getattr(self.policy, "forget", None)
        if forget is not None:
            forget(replica_id)
        logger.info(
            "gateway %s retired %s -> %s (%d jobs migrated)",
            self.name, replica_id, successor_id, migrated,
        )
        return {"retired": replica_id, "successor": successor_id, "migrated": migrated}

    def _sticky_successor(self, replica_id: str) -> "str | None":
        """The successor a previous (failed) retirement already copied
        jobs to. If that successor has since retired itself, its copies
        moved on with it — follow the handoff chain; if it died, the
        copies died too and the entry is dropped so a fresh pick is safe."""
        recorded = self._retiring.get(replica_id)
        while recorded is not None and self.replicas.get(recorded) is None:
            recorded = self.handoffs.resolve(recorded)
        if recorded is None:
            self._retiring.pop(replica_id, None)
        return recorded

    def _successor_for(self, replica_id: str) -> "str | None":
        """The ring successor among live (not draining, not down) peers."""
        candidates = [
            r.id
            for r in self.replicas.replicas()
            if r.id == replica_id or r.state in (ReplicaState.HEALTHY, ReplicaState.DEGRADED)
        ]
        return ring_successor(candidates, replica_id)

    def _forget_replica(self, replica_id: str) -> None:
        forget = getattr(self.policy, "forget", None)
        if forget is not None:
            forget(replica_id)
        self.handoffs.forget(replica_id)

    def _migrate_jobs(self, source: Replica, target: Replica) -> int:
        """Copy every job ``source`` holds to ``target`` via the API.

        All-or-nothing per retirement: any failure raises (the import
        endpoint is idempotent on job id, so a retried retirement simply
        re-posts documents the successor already adopted).
        """
        index = self._migration_get(source, f"{source.base_url}/services")
        migrated = 0
        for entry in index.get("services") or []:
            name = entry.get("name")
            if not name:
                continue
            listing = self._migration_get(source, f"{source.base_url}/services/{name}/jobs")
            for document in listing.get("jobs") or []:
                payload = dict(document)
                payload["extra"] = dict(payload.get("extra") or {}, handoff_from=source.id)
                try:
                    response = self.registry.request(
                        "POST",
                        f"{target.base_url}/services/{name}/jobs/{payload['id']}/import",
                        headers={"Content-Type": "application/json"},
                        body=json.dumps(payload).encode("utf-8"),
                    )
                except TransportError as exc:
                    raise RuntimeError(
                        f"handoff of job {payload['id']} to {target.id} failed: {exc}"
                    ) from exc
                if response.status not in (200, 201):
                    raise RuntimeError(
                        f"handoff of job {payload['id']} to {target.id} "
                        f"rejected with {response.status}"
                    )
                migrated += 1
        return migrated

    def _migration_get(self, source: Replica, url: str) -> dict[str, Any]:
        try:
            response = self.registry.request("GET", url)
        except TransportError as exc:
            raise RuntimeError(f"cannot enumerate retiring replica {source.id}: {exc}") from exc
        if not response.ok:
            raise RuntimeError(
                f"retiring replica {source.id} answered {response.status} for {url}"
            )
        document = response.json_body
        return document if isinstance(document, dict) else {}

    # ------------------------------------------------------------- handlers

    def _health(self, request: Request) -> Response:
        replicas = self.replicas.snapshot()
        document = {
            "gateway": self.name,
            "uri": self.base_uri,
            "policy": self.policy_name,
            "replicas": replicas,
            "draining": sum(1 for r in replicas if r.get("draining")),
            "handoffs": self.handoffs.snapshot(),
            "retry_budget": self.retry_budget.balance,
            "idempotency_entries": len(self.idempotency),
            "cache": self.cache_stats,
        }
        if self.autoscaler is not None:
            document["autoscaler"] = self.autoscaler.snapshot()
        return Response.json(document)

    @property
    def cache_stats(self) -> dict[str, int]:
        """Replica cache outcomes observed on submits (hit/coalesced/miss)."""
        with self._cache_lock:
            return dict(self._cache_counts)

    def _status(self, request: Request) -> Response:
        """Platform-wide health: fan out to replica ``/metrics``, merge."""
        return Response.json(gateway_status(self))

    def _index(self, request: Request) -> Response:
        replica, response = self._forward_any("GET", "/services", request)
        document = rewrite_tree(response.json_body, replica, self.base_uri)
        if isinstance(document, dict):
            document["gateway"] = self.name
        return Response.json(document, status=response.status)

    def _describe(self, request: Request, name: str) -> Response:
        replica, response = self._forward_any("GET", f"/services/{name}", request)
        if not response.ok:
            return self._proxied(response)
        document = rewrite_tree(response.json_body, replica, self.base_uri)
        return Response.json(document, status=response.status)

    def _submit(self, request: Request, name: str) -> Response:
        idempotency_key = request.headers.get(IDEMPOTENCY_KEY_HEADER)
        if not idempotency_key:
            return self._submit_attempts(request, name, None)
        # reserve the key before forwarding, so a concurrent duplicate waits
        # for this attempt's outcome instead of racing it into a second job
        owner, cached = self.idempotency.reserve(idempotency_key)
        if cached is not None:
            return cached
        if not owner:
            return self._unavailable(
                503,
                f"a request with Idempotency-Key {idempotency_key!r} is still in flight",
            )
        try:
            return self._submit_attempts(request, name, idempotency_key)
        finally:
            # no-op when the attempt stored its response; otherwise hands
            # the reservation to a waiting duplicate
            self.idempotency.release(idempotency_key)

    def _submit_attempts(self, request: Request, name: str, idempotency_key: str | None) -> Response:
        headers = self._forward_headers(request)
        # key selection by submission *content*: a consistent-hash policy
        # then lands identical work on the replica whose result cache most
        # likely already holds it (correctness never depends on this —
        # replicas compute the authoritative fingerprint themselves)
        # body_bytes, not body: a large submission may have been spilled to
        # a spool by the HTTP core, leaving request.body empty
        body = request.body_bytes
        balance_key = routing_hint(name, body)
        tried: set[str] = set()
        saturated = False
        bound_unavailable = False
        attempts = 0
        while attempts < self.max_attempts:
            # spend the retry token before selecting, so an aborted retry
            # cannot leak the half-open probe permit `_select` may consume
            if attempts > 0 and not self.retry_budget.try_spend():
                logger.warning("gateway %s: retry budget exhausted for POST %s", self.name, name)
                break
            replica = None
            if idempotency_key:
                replica, bound = self._bound_replica(idempotency_key)
                if bound and replica is None:
                    bound_unavailable = True
                    break
            if replica is None:
                replica, reason = self._select(tried, balance_key)
                if replica is None:
                    saturated = saturated or reason == "saturated"
                    break
            attempts += 1
            try:
                with span("gateway.forward", labels={"replica": replica.id, "service": name}):
                    # recompute the trace header inside the span, so the
                    # replica's spans parent under this forward attempt
                    attempt_headers = dict(headers)
                    attempt_headers.update(trace_headers())
                    response = self.registry.request(
                        "POST",
                        f"{replica.base_url}/services/{name}",
                        headers=attempt_headers,
                        body=body,
                    )
            except ConnectError as exc:
                self._count_forward("connect-error")
                # nothing reached the replica: safe to try another — unless
                # an earlier ambiguous failure bound the key to this one, in
                # which case only this replica may be retried
                replica.breaker.record_failure()
                if not idempotency_key or self.idempotency.binding(idempotency_key) != replica.id:
                    tried.add(replica.id)
                logger.info("gateway %s: POST %s connect failure on %s: %s", self.name, name, replica.id, exc)
                continue
            except TransportError as exc:
                self._count_forward("transport-error")
                replica.breaker.record_failure()
                if idempotency_key is None:
                    # the replica may have processed the request; replaying
                    # without a key could create a duplicate job
                    raise HttpError(
                        502,
                        f"connection to replica {replica.id} failed mid-request: {exc}",
                        details={"hint": "supply an Idempotency-Key to make POSTs replayable"},
                    ) from exc
                # ambiguous: the replica may own this key's job now, so pin
                # every further attempt (this request and later client
                # retries) to it — its idempotency ledger deduplicates
                self.idempotency.bind(idempotency_key, replica.id)
                logger.info(
                    "gateway %s: POST %s mid-request failure on %s, replaying there", self.name, name, replica.id
                )
                continue
            finally:
                replica.release_slot()
            if response.status >= 500:
                self._count_forward("server-error")
                replica.breaker.record_failure()
                if idempotency_key is None:
                    tried.add(replica.id)
                    return self._proxied(response)
                if response.status == 503 and self.idempotency.binding(idempotency_key) == replica.id:
                    # the bound replica is alive but cannot answer for this
                    # key yet (its submit ledger may hold an in-flight first
                    # attempt) — keep the binding and tell the client to
                    # retry later; trying elsewhere could mint a duplicate
                    bound_unavailable = True
                    break
                # any other 5xx: the replica answered and provably owns no
                # job for this key — lift the binding and try others
                tried.add(replica.id)
                self.idempotency.unbind(idempotency_key)
                continue
            self._count_forward("ok")
            replica.breaker.record_success()
            if attempts == 1:
                self.retry_budget.deposit()
            if response.status == 429 and self.tenant_gate is not None:
                self._note_replica_shed(response)
            rewritten = self._rewrite_submit(response, replica)
            if idempotency_key and response.ok:
                self.idempotency.put(idempotency_key, replica.id, rewritten)
            return rewritten
        if bound_unavailable:
            return self._unavailable(
                503,
                f"the replica bound to Idempotency-Key {idempotency_key!r} is unavailable; retry later",
            )
        if saturated:
            return self._unavailable(429, f"all replicas of {self.name!r} are at capacity")
        return self._unavailable(503, f"no replica of {self.name!r} can take the request")

    def _count_forward(self, outcome: str) -> None:
        if self._forward_attempts is not None:
            self._forward_attempts.labels(outcome).inc()

    def _bound_replica(self, key: str) -> "tuple[Replica | None, bool]":
        """The replica ``key`` is pinned to, with its in-flight slot held.

        Returns ``(replica, bound)``: ``(None, False)`` when the key is
        unbound (normal selection applies), ``(None, True)`` when it is
        bound but the replica cannot take the request right now — the
        caller must answer 503 rather than risk a duplicate elsewhere. A
        binding to a *retired* replica follows the handoff chain — the
        successor imported the ambiguous job (if it exists) with its key
        binding, so its submit ledger deduplicates — and the key is
        rebound there. A binding to an *evicted* replica is dropped: the
        ambiguous job (if it ever existed) died with the replica, so a
        fresh placement is the only way forward.
        """
        bound_id = self.idempotency.binding(key)
        if bound_id is None:
            return None, False
        replica = self.replicas.get(bound_id)
        if replica is None:
            successor_id = self.handoffs.resolve(bound_id)
            replica = self.replicas.get(successor_id) if successor_id is not None else None
            if replica is None:
                self.idempotency.unbind(key)
                return None, False
            self.idempotency.bind(key, replica.id)
        if replica.state is ReplicaState.DOWN or not replica.acquire_slot():
            return None, True
        if not replica.breaker.allow():
            replica.release_slot()
            return None, True
        return replica, True

    def _get_job(self, request: Request, name: str, job_id: str) -> Response:
        replica, raw_id = self._pin(job_id)
        response = self._forward_pinned(replica, "GET", f"/services/{name}/jobs/{raw_id}", request)
        if not response.ok:
            # includes 304 Not Modified: body-free, ETag passes through
            return self._proxied(response)
        document = rewrite_job_document(response.json_body, replica, self.base_uri)
        rewritten = Response.json(document, status=response.status)
        etag = response.headers.get("ETag")
        if etag:
            # the replica's validator stays correct for the rewritten body:
            # the URI rewrite is a pure function of an unchanged document
            rewritten.headers.set("ETag", etag)
        return rewritten

    def _delete_job(self, request: Request, name: str, job_id: str) -> Response:
        replica, raw_id = self._pin(job_id)
        response = self._forward_pinned(replica, "DELETE", f"/services/{name}/jobs/{raw_id}", request)
        return self._proxied(response)

    def _get_trace(self, request: Request, name: str, job_id: str) -> Response:
        """The job's trace tree, with the gateway's own spans merged in.

        The replica holds the queue/adapter spans; the gateway holds the
        ``gateway.forward`` spans of the same trace. Merging both sides
        here yields the complete gateway → replica → adapter tree.
        """
        replica, raw_id = self._pin(job_id)
        response = self._forward_pinned(
            replica, "GET", f"/services/{name}/jobs/{raw_id}/trace", request
        )
        if not response.ok:
            return self._proxied(response)
        document = response.json_body
        if self.tracer is not None and isinstance(document, dict):
            trace_id = document.get("trace_id")
            if trace_id:
                spans = merge_spans(self.tracer.spans(trace_id), document.get("spans") or [])
                document = {
                    "trace_id": trace_id,
                    "spans": spans,
                    "tree": build_trace_tree(spans),
                }
        return Response.json(document, status=response.status)

    def _get_file(self, request: Request, name: str, job_id: str, file_id: str) -> Response:
        replica, raw_id = self._pin(job_id)
        response = self._forward_pinned(
            replica, "GET", f"/services/{name}/jobs/{raw_id}/files/{file_id}", request
        )
        return self._proxied(response)

    def _put_blob(self, request: Request, ref: "str | None" = None) -> Response:
        """Upload through the gateway: placed by content digest.

        A consistent-hash policy then lands re-uploads of the same content
        (and later digest-keyed fetches) on the same replica, so dedup in
        the replica's chunk store actually triggers.
        """
        digest: str | None = None
        replica: Replica | None = None
        if ref is not None:
            replica_id, digest = decode_blob_ref(ref)
            if replica_id is not None:
                replica = self._pin_replica(replica_id)
        if replica is None:
            replica, reason = self._select(set(), digest)
            if replica is None:
                if reason == "saturated":
                    return self._unavailable(429, f"all replicas of {self.name!r} are at capacity")
                return self._unavailable(503, f"no replica of {self.name!r} can take the upload")
            # _forward_pinned manages its own slot; release the one _select held
            replica.release_slot()
        method, path = ("PUT", f"/blobs/{digest}") if digest is not None else ("POST", "/blobs")
        response = self._forward_pinned(replica, method, path, request, body=request.body_bytes)
        if not response.ok:
            return self._proxied(response)
        document = rewrite_tree(response.json_body, replica, self.base_uri)
        rewritten = Response.json(document, status=response.status)
        location = response.headers.get("Location")
        if location:
            rewritten.headers.set("Location", rewrite_uri(location, replica, self.base_uri))
        return rewritten

    def _get_blob(self, request: Request, ref: str) -> Response:
        return self._proxied(self._blob_response(request, ref, ""))

    def _get_blob_manifest(self, request: Request, ref: str) -> Response:
        # manifests carry digests only, never URIs: nothing to rewrite
        return self._proxied(self._blob_response(request, ref, "/manifest"))

    def _blob_response(self, request: Request, ref: str, suffix: str) -> Response:
        """Fetch a blob resource: pinned when the ref carries a replica
        prefix, otherwise resolved by content — any replica holding the
        digest may answer, so 404s fall through to the next one."""
        replica_id, digest = decode_blob_ref(ref)
        path = f"/blobs/{digest}{suffix}"
        if replica_id is not None:
            return self._forward_pinned(self._pin_replica(replica_id), "GET", path, request)
        _, response = self._forward_blob_any("GET", path, request, key=digest)
        return response

    # ----------------------------------------------------------- forwarding

    def _forward_headers(self, request: Request) -> dict[str, str]:
        forwarded: dict[str, str] = {}
        for header_name, value in request.headers.items():
            if header_name.lower() not in _HOP_BY_HOP:
                forwarded[header_name] = value
        request_id = request.context.get("request_id")
        if request_id:
            # thread the gateway's correlation id through to the replica
            forwarded["X-Request-Id"] = request_id
        # and the trace context: the ambient span (if any) wins over a
        # client-supplied X-Trace; an untraced gateway passes it through
        forwarded.update(trace_headers())
        return forwarded

    def _target(self, replica: Replica, path: str, request: Request) -> str:
        url = replica.base_url + path
        if request.query:
            url += "?" + urlencode(request.query)
        return url

    def _select(self, tried: set[str], key: str | None) -> tuple[Replica | None, str | None]:
        """Pick a replica for a spread route, with its in-flight slot held.

        Healthy replicas are preferred; degraded ones are a fallback tier.
        Returns ``(None, "saturated")`` when capacity (not health) was the
        only obstacle — the caller answers 429 rather than 503.
        """
        replicas = self.replicas.replicas()
        saturated = False
        for state in (ReplicaState.HEALTHY, ReplicaState.DEGRADED):
            pool = [r for r in replicas if r.state is state and r.id not in tried]
            while pool:
                chosen = self.policy.choose(pool, key)
                if not chosen.acquire_slot():
                    saturated = True
                    pool.remove(chosen)
                    continue
                if not chosen.breaker.allow():
                    chosen.release_slot()
                    pool.remove(chosen)
                    continue
                return chosen, None
        return None, ("saturated" if saturated else "unavailable")

    def _forward_any(self, method: str, path: str, request: Request) -> tuple[Replica, Response]:
        """Send an idempotent read to whichever available replica answers."""
        tried: set[str] = set()
        saturated = False
        for _ in range(max(1, len(self.replicas))):
            replica, reason = self._select(tried, None)
            if replica is None:
                saturated = saturated or reason == "saturated"
                break
            try:
                response = self.registry.request(
                    method, self._target(replica, path, request), headers=self._forward_headers(request)
                )
            except TransportError:
                replica.breaker.record_failure()
                tried.add(replica.id)
                continue
            finally:
                replica.release_slot()
            if response.status >= 500:
                replica.breaker.record_failure()
                tried.add(replica.id)
                continue
            replica.breaker.record_success()
            return replica, response
        if saturated:
            raise self._unavailable_error(429, f"all replicas of {self.name!r} are at capacity")
        raise self._unavailable_error(503, f"no replica of {self.name!r} is reachable")

    def _pin(self, job_id: str) -> tuple[Replica, str]:
        """Resolve a public job id to its owning replica (slot not held)."""
        replica_id, raw_id = decode_job_id(job_id)
        return self._pin_replica(replica_id), raw_id

    def _pin_replica(self, replica_id: str) -> Replica:
        replica = self.replicas.get(replica_id)
        if replica is None:
            # retired? its jobs (raw ids intact) live on at the successor,
            # so the old public URI keeps resolving
            successor_id = self.handoffs.resolve(replica_id)
            if successor_id is not None:
                replica = self.replicas.get(successor_id)
        if replica is None:
            raise HttpError(404, f"no replica {replica_id!r} behind this gateway")
        if replica.state is ReplicaState.DOWN:
            raise self._unavailable_error(
                503, f"replica {replica_id!r} is down; its resources are unavailable until it recovers"
            )
        return replica

    def _forward_pinned(
        self, replica: Replica, method: str, path: str, request: Request, body: bytes = b""
    ) -> Response:
        if not replica.acquire_slot():
            raise self._unavailable_error(429, f"replica {replica.id!r} is at capacity")
        if not replica.breaker.allow():
            replica.release_slot()
            raise self._unavailable_error(
                503,
                f"replica {replica.id!r} circuit is open",
                retry_after=max(self.retry_after_hint, replica.breaker.retry_after()),
            )
        try:
            with span("gateway.forward", labels={"replica": replica.id, "path": path}):
                response = self.registry.request(
                    method,
                    self._target(replica, path, request),
                    headers=self._forward_headers(request),
                    body=body,
                )
        except TransportError as exc:
            replica.breaker.record_failure()
            raise HttpError(502, f"replica {replica.id!r} unreachable: {exc}") from exc
        finally:
            replica.release_slot()
        if response.status >= 500:
            replica.breaker.record_failure()
        else:
            replica.breaker.record_success()
        return response

    def _forward_blob_any(
        self, method: str, path: str, request: Request, key: "str | None" = None
    ) -> tuple[Replica, Response]:
        """Resolve a content-addressed resource: a 404 from one replica
        just means *it* does not hold the blob, so keep trying others.
        The digest key steers a consistent-hash policy to the likeliest
        holder first."""
        tried: set[str] = set()
        missing = 0
        saturated = False
        for _ in range(max(1, len(self.replicas))):
            replica, reason = self._select(tried, key)
            if replica is None:
                saturated = saturated or reason == "saturated"
                break
            try:
                response = self.registry.request(
                    method, self._target(replica, path, request), headers=self._forward_headers(request)
                )
            except TransportError:
                replica.breaker.record_failure()
                tried.add(replica.id)
                continue
            finally:
                replica.release_slot()
            if response.status >= 500:
                replica.breaker.record_failure()
                tried.add(replica.id)
                continue
            replica.breaker.record_success()
            if response.status == 404:
                missing += 1
                tried.add(replica.id)
                continue
            return replica, response
        if missing and not saturated:
            raise HttpError(404, f"no replica of {self.name!r} holds this blob")
        if saturated:
            raise self._unavailable_error(429, f"all replicas of {self.name!r} are at capacity")
        raise self._unavailable_error(503, f"no replica of {self.name!r} is reachable")

    # ------------------------------------------------------------ responses

    def _rewrite_submit(self, response: Response, replica: Replica) -> Response:
        document = response.json_body
        if isinstance(document, dict):
            document = rewrite_job_document(document, replica, self.base_uri)
        rewritten = Response.json(document, status=response.status)
        location = response.headers.get("Location")
        if location:
            rewritten.headers.set("Location", rewrite_uri(location, replica, self.base_uri))
        retry_after = response.headers.get("Retry-After")
        if retry_after:
            # replica backpressure/quota answers keep their hint — the
            # submit path bypasses _proxied's header copy
            rewritten.headers.set("Retry-After", retry_after)
        cache_status = response.headers.get(X_CACHE_HEADER)
        if cache_status:
            rewritten.headers.set(X_CACHE_HEADER, cache_status)
            if cache_status in self._cache_counts:
                with self._cache_lock:
                    self._cache_counts[cache_status] += 1
        return rewritten

    def _proxied(self, response: Response) -> Response:
        """Pass a replica response through, keeping only entity headers."""
        out = Response(status=response.status, body=response.body)
        for header_name in _FORWARDED_RESPONSE_HEADERS:
            value = response.headers.get(header_name)
            if value is not None:
                out.headers.set(header_name, value)
        return out

    def _unavailable(self, status: int, message: str, retry_after: float | None = None) -> Response:
        return self._unavailable_error(status, message, retry_after=retry_after).to_response()

    def _unavailable_error(
        self, status: int, message: str, retry_after: float | None = None
    ) -> HttpError:
        error = _RetryableError(status, message)
        error.retry_after = min(
            self.retry_after_cap,
            retry_after if retry_after is not None else self.retry_after_hint,
        )
        return error


class _RetryableError(HttpError):
    """An HttpError whose response carries a ``Retry-After`` hint."""

    retry_after: float = 1.0

    def to_response(self) -> Response:
        response = super().to_response()
        response.headers.set("Retry-After", f"{self.retry_after:g}")
        return response


def make_replicated_gateway(
    base_urls: "list[str]",
    registry: TransportRegistry | None = None,
    name: str = "gateway",
    policy: "str | Policy" = "round-robin",
    health_interval: float | None = 5.0,
    **replica_set_options: Any,
) -> ServiceGateway:
    """Convenience: a gateway fronting ``base_urls`` with health checks on."""
    replica_set = ReplicaSet(registry=registry, **replica_set_options)
    gateway = ServiceGateway(
        registry=replica_set.registry, name=name, replicas=replica_set, policy=policy
    )
    for url in base_urls:
        replica_set.add(url)
    if health_interval is not None:
        replica_set.start_health_checks(interval=health_interval)
    return gateway
