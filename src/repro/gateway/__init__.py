"""Replicated-service API gateway.

Fronts a pool of interchangeable service containers behind one stable
endpoint speaking the paper's unified REST API — the platform-layer
reliability management (health checking, circuit breaking, idempotent
retries, backpressure) that lets the catalogue publish one URL while the
traffic is served by many replicas.

Layers:

- :mod:`repro.gateway.replicaset` — membership, health states with
  hysteresis, per-replica in-flight gauges;
- :mod:`repro.gateway.balancer` — round-robin / least-outstanding /
  consistent-hash balancing policies;
- :mod:`repro.gateway.breaker` — per-replica circuit breakers and the
  gateway-wide retry budget;
- :mod:`repro.gateway.routing` — job-id prefix pinning and URI
  rewriting (replica address space → gateway address space);
- :mod:`repro.gateway.idempotency` — replaying POST responses by
  ``Idempotency-Key``;
- :mod:`repro.gateway.gateway` — the gateway REST application itself.
"""

from repro.gateway.balancer import (
    ConsistentHashPolicy,
    LeastOutstandingPolicy,
    Policy,
    RoundRobinPolicy,
    create_policy,
)
from repro.gateway.breaker import BreakerState, CircuitBreaker, RetryBudget
from repro.gateway.gateway import ServiceGateway, make_replicated_gateway
from repro.gateway.idempotency import IdempotencyCache
from repro.gateway.replicaset import Replica, ReplicaSet, ReplicaState
from repro.gateway.routing import decode_job_id, encode_job_id

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ConsistentHashPolicy",
    "IdempotencyCache",
    "LeastOutstandingPolicy",
    "Policy",
    "Replica",
    "ReplicaSet",
    "ReplicaState",
    "RetryBudget",
    "RoundRobinPolicy",
    "ServiceGateway",
    "create_policy",
    "decode_job_id",
    "encode_job_id",
    "make_replicated_gateway",
]
