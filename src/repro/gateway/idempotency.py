"""Idempotent submits: remembering POST outcomes by Idempotency-Key.

A client (or the gateway's own retry loop) may send the same ``POST
service`` twice — after a timeout, a connection reset, or a failover. When
the request carries an ``Idempotency-Key``, the gateway stores the first
successful response and replays it for every duplicate, so exactly one
job is created per key no matter how many times the wire delivered the
request.

Entries are bounded (LRU) and expire after a TTL; entries recorded against
a replica that has since been evicted are dropped, because replaying a
response that points at a dead replica would pin the client to a job that
no longer exists.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable

from repro.http.messages import Response


class IdempotencyCache:
    """Bounded, TTL-expiring map of Idempotency-Key → stored response."""

    def __init__(
        self,
        capacity: int = 1024,
        ttl: float = 600.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, tuple[float, str, Response]]" = OrderedDict()

    def get(self, key: str) -> Response | None:
        """The stored response for ``key`` (a fresh copy), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            stored_at, _, response = entry
            if self._clock() - stored_at > self.ttl:
                del self._entries[key]
                return None
            self._entries.move_to_end(key)
            return Response(status=response.status, headers=response.headers.copy(), body=response.body)

    def put(self, key: str, replica_id: str, response: Response) -> None:
        with self._lock:
            self._entries[key] = (self._clock(), replica_id, response)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate_replica(self, replica_id: str) -> int:
        """Drop every entry recorded against ``replica_id``; returns count."""
        with self._lock:
            stale = [key for key, (_, rid, _) in self._entries.items() if rid == replica_id]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
