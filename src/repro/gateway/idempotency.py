"""Idempotent submits: remembering POST outcomes by Idempotency-Key.

A client (or the gateway's own retry loop) may send the same ``POST
service`` twice — after a timeout, a connection reset, or a failover. When
the request carries an ``Idempotency-Key``, the gateway stores the first
successful response and replays it for every duplicate, so exactly one
job is created per key no matter how many times the wire delivered the
request.

The "exactly one" guarantee holds under concurrency: a key is *reserved*
before the first attempt is forwarded, and a duplicate arriving while the
reservation is held waits for the first attempt's outcome instead of
racing it into a second job. If the first attempt fails without storing a
response, the longest-waiting duplicate inherits the reservation.

Entries are bounded (LRU) and expire after a TTL; entries recorded against
a replica that has since been evicted are dropped, because replaying a
response that points at a dead replica would pin the client to a job that
no longer exists.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable

from repro.http.messages import Response


class IdempotencyCache:
    """Bounded, TTL-expiring map of Idempotency-Key → stored response."""

    def __init__(
        self,
        capacity: int = 1024,
        ttl: float = 600.0,
        clock: Callable[[], float] = time.monotonic,
        pending_timeout: float = 30.0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.ttl = ttl
        #: How long a duplicate waits on an in-flight reservation before
        #: being rejected (the wall-clock wait always uses real time, even
        #: when ``clock`` is injected for TTL testing).
        self.pending_timeout = pending_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: set[str] = set()
        self._entries: "OrderedDict[str, tuple[float, str, Response]]" = OrderedDict()
        # key → (recorded_at, replica_id): which replica an *unresolved*
        # attempt may have reached (see bind)
        self._bindings: "OrderedDict[str, tuple[float, str]]" = OrderedDict()

    def get(self, key: str) -> Response | None:
        """The stored response for ``key`` (a fresh copy), or None."""
        with self._lock:
            return self._lookup(key)

    def reserve(self, key: str) -> "tuple[bool, Response | None]":
        """Claim ``key`` for a first attempt, or surface its prior outcome.

        Returns ``(owner, cached)``:

        - ``(False, response)`` — a stored response exists; replay it.
        - ``(True, None)`` — the caller owns the key and must finish with
          :meth:`put` (success) or :meth:`release` (no cacheable outcome).
        - ``(False, None)`` — another attempt held the reservation past
          ``pending_timeout``; the duplicate should be rejected with a
          retryable status rather than risk a second job.
        """
        deadline = time.monotonic() + self.pending_timeout
        with self._cond:
            while True:
                cached = self._lookup(key)
                if cached is not None:
                    return False, cached
                if key not in self._pending:
                    self._pending.add(key)
                    return True, None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False, None
                self._cond.wait(remaining)

    def put(self, key: str, replica_id: str, response: Response) -> None:
        with self._cond:
            self._bindings.pop(key, None)  # the stored response supersedes it
            self._entries[key] = (self._clock(), replica_id, response)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            self._pending.discard(key)
            self._cond.notify_all()

    def release(self, key: str) -> None:
        """Abandon a reservation whose attempt stored nothing; a waiting
        duplicate (if any) inherits the key. No-op after :meth:`put`."""
        with self._cond:
            if key in self._pending:
                self._pending.discard(key)
                self._cond.notify_all()

    def invalidate_replica(self, replica_id: str) -> int:
        """Drop every entry recorded against ``replica_id``; returns count."""
        with self._lock:
            stale = [key for key, (_, rid, _) in self._entries.items() if rid == replica_id]
            for key in stale:
                del self._entries[key]
            bound = [key for key, (_, rid) in self._bindings.items() if rid == replica_id]
            for key in bound:
                del self._bindings[key]
            return len(stale)

    # ------------------------------------------------------------- bindings

    def bind(self, key: str, replica_id: str) -> None:
        """Record that ``key``'s request may have reached ``replica_id``.

        Set after an *ambiguous* mid-request failure: the replica may
        already own a job for this key, so every further attempt — within
        this request or on a later client retry — must go back to the same
        replica, where the replica-side idempotency ledger deduplicates.
        Sending the key anywhere else could create a second job.
        """
        with self._lock:
            self._bindings[key] = (self._clock(), replica_id)
            self._bindings.move_to_end(key)
            while len(self._bindings) > self.capacity:
                self._bindings.popitem(last=False)

    def binding(self, key: str) -> "str | None":
        """The replica ``key`` is bound to, or None (expired entries drop)."""
        with self._lock:
            entry = self._bindings.get(key)
            if entry is None:
                return None
            bound_at, replica_id = entry
            if self._clock() - bound_at > self.ttl:
                del self._bindings[key]
                return None
            return replica_id

    def unbind(self, key: str) -> None:
        """Clear a binding once the key's fate is known (response stored,
        or the bound replica answered and provably owns no such job)."""
        with self._lock:
            self._bindings.pop(key, None)

    @property
    def pending_count(self) -> int:
        """Reservations currently held (chaos invariant: drains to zero)."""
        with self._lock:
            return len(self._pending)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ----------------------------------------------------------- internals

    def _lookup(self, key: str) -> Response | None:
        """A fresh copy of the stored response; caller holds the lock."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        stored_at, _, response = entry
        if self._clock() - stored_at > self.ttl:
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return Response(status=response.status, headers=response.headers.copy(), body=response.body)
