"""Job-id prefix routing and representation rewriting.

The gateway cannot keep per-job state if it is to stay a thin, replicated
layer itself — so ownership is encoded in the public job id: a job created
on replica ``r1`` with local id ``j-abc`` is exposed as ``r1.j-abc``.
Every job-scoped route (status GET, DELETE, file fetches) decodes the
prefix and pins the request to the owning replica; only ``POST service``
spreads across the pool.

Because replica ids never contain the separator, decoding splits on the
*first* separator — a gateway fronting other gateways simply stacks
prefixes (``r0.r1.j-abc``) and each layer peels one off, which is what
makes gateways composable.

Rewriting: replica responses advertise the replica's own URIs (job ``uri``
fields, file references inside results). The gateway rewrites every such
URI to its own base with the prefixed job id, so clients only ever see —
and come back to — the gateway.
"""

from __future__ import annotations

import re
from typing import Any

from repro.gateway.replicaset import ID_SEPARATOR, Replica
from repro.http.messages import HttpError

_JOB_PATH = re.compile(r"^(/services/[^/]+/jobs/)([^/]+)(.*)$")
_BLOB_PATH = re.compile(r"^(/blobs/)([^/]+)(.*)$")


def encode_job_id(replica_id: str, job_id: str) -> str:
    return f"{replica_id}{ID_SEPARATOR}{job_id}"


def decode_job_id(public_id: str) -> tuple[str, str]:
    """Split a public job id into (replica id, replica-local job id).

    Raises 404 for ids without a prefix: such a job cannot have been
    created through this gateway, so the resource does not exist here.
    """
    replica_id, separator, job_id = public_id.partition(ID_SEPARATOR)
    if not separator or not replica_id or not job_id:
        raise HttpError(404, f"no job {public_id!r} (not a gateway job id)")
    return replica_id, job_id


def decode_blob_ref(public_ref: str) -> "tuple[str | None, str]":
    """Split a public blob path segment into (replica id, digest).

    Blob digests are bare hex and never contain the separator, so a
    prefix is unambiguous. Unlike jobs, an *unprefixed* digest is still
    resolvable — content addressing lets the gateway ask any replica —
    so the replica id is ``None`` rather than a 404.
    """
    replica_id, separator, digest = public_ref.partition(ID_SEPARATOR)
    if not separator or not replica_id or not digest:
        return None, public_ref
    return replica_id, digest


def rewrite_uri(uri: str, replica: Replica, gateway_base: str) -> str:
    """Map one replica URI onto the gateway's address space.

    URIs not under the replica's base pass through untouched (values that
    merely look like strings, or references to third-party services).
    """
    prefix = replica.base_url
    if uri != prefix and not uri.startswith(prefix + "/"):
        return uri
    rest = uri[len(prefix):]
    match = _JOB_PATH.match(rest)
    if match:
        head, job_id, tail = match.groups()
        rest = f"{head}{encode_job_id(replica.id, job_id)}{tail}"
    else:
        match = _BLOB_PATH.match(rest)
        if match:
            # same prefix scheme as job ids: the digest segment of the URI
            # names the *copy* on the owning replica. The ``$blob`` digest
            # field itself is never rewritten — it names the content.
            head, digest, tail = match.groups()
            rest = f"{head}{encode_job_id(replica.id, digest)}{tail}"
    return gateway_base.rstrip("/") + rest


def rewrite_tree(value: Any, replica: Replica, gateway_base: str) -> Any:
    """Recursively rewrite every replica URI inside a JSON document."""
    if isinstance(value, str):
        return rewrite_uri(value, replica, gateway_base)
    if isinstance(value, list):
        return [rewrite_tree(item, replica, gateway_base) for item in value]
    if isinstance(value, dict):
        return {key: rewrite_tree(item, replica, gateway_base) for key, item in value.items()}
    return value


def rewrite_job_document(document: dict[str, Any], replica: Replica, gateway_base: str) -> dict[str, Any]:
    """Rewrite a job representation: URIs everywhere, plus the bare id."""
    rewritten = rewrite_tree(document, replica, gateway_base)
    job_id = rewritten.get("id")
    if isinstance(job_id, str) and job_id:
        rewritten["id"] = encode_job_id(replica.id, job_id)
    return rewritten
