"""Pluggable load-balancing policies.

A policy picks one replica from the candidates the gateway has already
filtered (health state, breaker, in-flight capacity). Three built-ins:

- ``round-robin`` — cycles through candidates; fair for uniform jobs.
- ``least-outstanding`` — picks the replica with the fewest in-flight
  requests; adapts to heterogeneous job durations and replica speeds.
- ``consistent-hash`` — maps a caller-supplied key (e.g. an
  ``Idempotency-Key``) onto a hash ring, so the same key lands on the
  same replica while membership is stable, and only ``1/n`` of keys move
  when a replica joins or leaves.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Protocol, Sequence

from repro.gateway.replicaset import Replica


class Policy(Protocol):
    """Chooses one replica from a non-empty candidate list."""

    def choose(self, candidates: Sequence[Replica], key: str | None = None) -> Replica: ...


class RoundRobinPolicy:
    """Cycle through candidates, skipping nothing (filtering is upstream)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counter = 0

    def choose(self, candidates: Sequence[Replica], key: str | None = None) -> Replica:
        with self._lock:
            index = self._counter
            self._counter += 1
        return candidates[index % len(candidates)]


class LeastOutstandingPolicy:
    """Pick the candidate with the fewest in-flight requests (id breaks ties)."""

    def choose(self, candidates: Sequence[Replica], key: str | None = None) -> Replica:
        return min(candidates, key=lambda replica: (replica.in_flight, replica.id))


def _hash_point(value: str) -> int:
    return int.from_bytes(hashlib.sha1(value.encode("utf-8")).digest()[:8], "big")


#: Virtual nodes per replica on the canonical ring. Shared by the policy,
#: the drain protocol's successor computation and the property tests, so
#: they all agree on who owns what.
DEFAULT_RING_POINTS = 64


def build_ring(ids: "Sequence[str]", points_per_replica: int = DEFAULT_RING_POINTS) -> "list[tuple[int, str]]":
    """The canonical hash ring over a replica-id membership."""
    return sorted(
        (_hash_point(f"{replica_id}#{vnode}"), replica_id)
        for replica_id in sorted(set(ids))
        for vnode in range(points_per_replica)
    )


def ring_owner(
    ids: "Sequence[str]", key: str, points_per_replica: int = DEFAULT_RING_POINTS
) -> "str | None":
    """The member of ``ids`` owning ``key`` on the canonical ring."""
    ring = build_ring(ids, points_per_replica)
    if not ring:
        return None
    index = bisect.bisect_right([point for point, _ in ring], _hash_point(key)) % len(ring)
    return ring[index][1]


def ring_successor(
    ids: "Sequence[str]", member: str, points_per_replica: int = DEFAULT_RING_POINTS
) -> "str | None":
    """Who inherits ``member``'s keys when it leaves the membership.

    Defined as the owner of ``member``'s own hash point on the ring the
    *remaining* members form — the replica the drain protocol hands a
    retiring replica's jobs to. ``None`` when nobody remains.
    """
    remaining = [replica_id for replica_id in ids if replica_id != member]
    return ring_owner(remaining, member, points_per_replica)


class ConsistentHashPolicy:
    """A hash ring with virtual nodes per replica.

    The ring is rebuilt (and memoised) per candidate membership, which is
    cheap at gateway scale — a few replicas, 64 points each. Keyless
    requests fall back to round-robin so the policy is always usable as
    the default.
    """

    def __init__(self, points_per_replica: int = DEFAULT_RING_POINTS):
        self.points_per_replica = points_per_replica
        self._lock = threading.Lock()
        self._ring_for: tuple[str, ...] = ()
        self._ring: list[tuple[int, str]] = []
        self._fallback = RoundRobinPolicy()

    def forget(self, replica_id: str) -> None:
        """Drop the memoised ring if it references ``replica_id``.

        Called on ring removal so a long-lived gateway does not keep the
        last pre-retirement ring (with its 64 points per departed member)
        alive after a scale-down.
        """
        with self._lock:
            if replica_id in self._ring_for:
                self._ring_for, self._ring = (), []

    def choose(self, candidates: Sequence[Replica], key: str | None = None) -> Replica:
        if key is None:
            return self._fallback.choose(candidates)
        by_id = {replica.id: replica for replica in candidates}
        ring = self._ring_for_ids(tuple(sorted(by_id)))
        point = _hash_point(key)
        index = bisect.bisect_right([p for p, _ in ring], point) % len(ring)
        return by_id[ring[index][1]]

    def _ring_for_ids(self, ids: tuple[str, ...]) -> list[tuple[int, str]]:
        with self._lock:
            if ids == self._ring_for:
                return self._ring
            ring = build_ring(ids, self.points_per_replica)
            self._ring_for, self._ring = ids, ring
            return ring


#: Policy names accepted by the gateway constructor.
POLICIES = {
    "round-robin": RoundRobinPolicy,
    "least-outstanding": LeastOutstandingPolicy,
    "consistent-hash": ConsistentHashPolicy,
}


def create_policy(name: str) -> Policy:
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown balancing policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
