"""The handoff table: where a retired replica's jobs went.

When the drain protocol retires a replica, every job it owned is imported
by its ring successor *keeping its raw job id* — only the replica-id
prefix of the public id changes. The gateway records the retirement here
so the old public URIs stay valid: a pinned route whose prefix names a
retired replica resolves through this table to the live successor.

Chains compress on write: when ``B`` (itself a successor of ``A``)
retires to ``C``, the ``A → B`` entry is rewritten to ``A → C``, so
resolution is a single bounded lookup no matter how much churn the
gateway has seen. Entries are a bounded LRU — a gateway that has retired
thousands of replicas forgets the oldest redirects rather than growing
without bound (the jobs themselves age out long before that).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["HandoffTable"]


class HandoffTable:
    """Bounded retired-replica → successor map with chain compression."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._successor: "OrderedDict[str, str]" = OrderedDict()

    def record(self, retired_id: str, successor_id: str) -> None:
        """Record a retirement; existing chains ending at ``retired_id``
        are rewritten to point at the new successor."""
        if retired_id == successor_id:
            raise ValueError("a replica cannot be its own successor")
        with self._lock:
            for old, target in list(self._successor.items()):
                if target == retired_id:
                    self._successor[old] = successor_id
            self._successor[retired_id] = successor_id
            self._successor.move_to_end(retired_id)
            while len(self._successor) > self.capacity:
                self._successor.popitem(last=False)

    def resolve(self, replica_id: str) -> "str | None":
        """The live end of ``replica_id``'s handoff chain, or None."""
        with self._lock:
            successor = self._successor.get(replica_id)
            if successor is not None:
                self._successor.move_to_end(replica_id)
            return successor

    def forget(self, replica_id: str) -> int:
        """Drop every entry involving ``replica_id`` (evicted, not
        retired: there is no live successor to redirect to). Returns the
        number of entries dropped."""
        with self._lock:
            stale = [
                old for old, target in self._successor.items()
                if old == replica_id or target == replica_id
            ]
            for old in stale:
                del self._successor[old]
            return len(stale)

    def snapshot(self) -> dict[str, str]:
        with self._lock:
            return dict(self._successor)

    def __len__(self) -> int:
        with self._lock:
            return len(self._successor)
