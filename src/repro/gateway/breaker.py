"""Circuit breakers and the gateway's global retry budget.

Per-replica breakers keep a flapping or dead replica from soaking up
request attempts: after enough consecutive failures the breaker *opens*
and the replica is skipped outright; after a cool-down one *half-open*
probe is let through, and its outcome decides between closing the breaker
and re-opening it. The retry budget bounds retry amplification across the
whole gateway — retries spend from a bucket that only refills as normal
requests succeed, so a full outage degrades to fast failure instead of a
retry storm.
"""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Callable


class BreakerState(str, Enum):
    """The classic three states."""

    CLOSED = "CLOSED"
    OPEN = "OPEN"
    HALF_OPEN = "HALF_OPEN"


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open probe.

    Thread-safe; the clock is injectable so the state machine is testable
    without sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 10.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0

    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """Whether a request may be sent through this breaker now.

        In half-open state each ``True`` grants one probe slot; callers
        must report the probe's outcome via :meth:`record_success` /
        :meth:`record_failure` to release it.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN and self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probes_in_flight = 0
            self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.HALF_OPEN:
                self._trip()
                return
            self._failures += 1
            if self._state is BreakerState.CLOSED and self._failures >= self.failure_threshold:
                self._trip()

    def retry_after(self) -> float:
        """Seconds until an open breaker admits its next probe (0 otherwise)."""
        with self._lock:
            self._maybe_half_open()
            if self._state is not BreakerState.OPEN:
                return 0.0
            return max(0.0, self._opened_at + self.reset_timeout - self._clock())

    # ----------------------------------------------------------- internals

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._probes_in_flight = 0

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
            self._probes_in_flight = 0


class RetryBudget:
    """A token bucket that pays for retries out of successful traffic.

    Every successful first attempt deposits ``ratio`` tokens (so a steady
    20 %-of-traffic retry rate is sustainable by default); every retry
    withdraws one token. ``initial`` tokens let a cold gateway retry at
    all; the balance is capped so long quiet periods cannot bank an
    unbounded burst.
    """

    def __init__(self, ratio: float = 0.2, initial: float = 10.0, cap: float = 100.0):
        if ratio < 0:
            raise ValueError("ratio must be >= 0")
        self.ratio = ratio
        self.cap = cap
        self._lock = threading.Lock()
        self._balance = min(initial, cap)

    @property
    def balance(self) -> float:
        with self._lock:
            return self._balance

    def deposit(self) -> None:
        """Credit the budget for one successful (non-retry) request."""
        with self._lock:
            self._balance = min(self.cap, self._balance + self.ratio)

    def try_spend(self) -> bool:
        """Withdraw one token for a retry; False when the budget is dry."""
        with self._lock:
            if self._balance < 1.0:
                return False
            self._balance -= 1.0
            return True
