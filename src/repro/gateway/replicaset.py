"""The replica registry: membership, health state and backpressure gauges.

A :class:`ReplicaSet` tracks the pool of interchangeable containers behind
one gateway. Active health checks run on the shared runtime's
:class:`~repro.runtime.PeriodicTask` and drive a three-state model with
hysteresis on both edges:

- ``HEALTHY`` — probes succeed; full traffic.
- ``DEGRADED`` — at least one recent probe failed (or a down replica is
  part-way through recovering); used only when no healthy replica can
  take the request.
- ``DOWN`` — ``down_after`` consecutive probe failures; no traffic until
  ``up_after`` consecutive successes walk it back up through DEGRADED.

Each replica also carries its circuit breaker and a bounded in-flight
gauge — the gateway sheds load with 429 when every candidate is at its
in-flight limit, instead of queueing until something melts.
"""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Any

from repro.gateway.breaker import CircuitBreaker
from repro.http.client import RestClient
from repro.http.registry import TransportRegistry
from repro.http.transport import TransportError
from repro.runtime.pool import PeriodicTask

#: Separates the replica-id prefix from the raw job id in public job ids.
#: Replica ids therefore must not contain it (enforced on add).
ID_SEPARATOR = "."


class ReplicaState(str, Enum):
    HEALTHY = "HEALTHY"
    DEGRADED = "DEGRADED"
    DOWN = "DOWN"
    #: Retiring: pinned job routes still work, new submits go elsewhere.
    DRAINING = "DRAINING"


class Replica:
    """One backend container fronted by the gateway."""

    def __init__(
        self,
        replica_id: str,
        base_url: str,
        breaker: CircuitBreaker,
        max_in_flight: int = 32,
    ):
        self.id = replica_id
        self.base_url = base_url.rstrip("/")
        self.breaker = breaker
        self.max_in_flight = max_in_flight
        self._lock = threading.Lock()
        self._state = ReplicaState.HEALTHY
        self._draining = False
        self._in_flight = 0
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._last_probe: float | None = None

    @property
    def state(self) -> ReplicaState:
        """Health state, with the drain flag overlaid.

        A draining replica reports ``DRAINING`` (the gateway's spread
        routes skip it; pinned routes keep working) unless its probes say
        it is actually ``DOWN`` — a dead replica cannot drain.
        """
        with self._lock:
            if self._draining and self._state is not ReplicaState.DOWN:
                return ReplicaState.DRAINING
            return self._state

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def start_draining(self) -> None:
        with self._lock:
            self._draining = True

    def stop_draining(self) -> None:
        """Cancel a drain (the scaler changed its mind before retirement)."""
        with self._lock:
            self._draining = False

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def acquire_slot(self) -> bool:
        """Claim one in-flight slot; False when the replica is saturated."""
        with self._lock:
            if self._in_flight >= self.max_in_flight:
                return False
            self._in_flight += 1
            return True

    def release_slot(self) -> None:
        with self._lock:
            if self._in_flight > 0:
                self._in_flight -= 1

    def record_probe(self, ok: bool) -> ReplicaState:
        """Fold one health-probe outcome into the state machine.

        Hysteresis both ways: one failure only *degrades* a healthy
        replica (``down_after`` failures in a row take it down), and one
        success only *promotes* a down replica to degraded
        (``up_after`` successes in a row make it healthy again) — so a
        flapping backend neither storms in and out of rotation nor
        instantly reclaims full traffic.
        """
        with self._lock:
            self._last_probe = time.time()
            if ok:
                self._consecutive_successes += 1
                self._consecutive_failures = 0
                if self._state is not ReplicaState.HEALTHY:
                    if self._consecutive_successes >= self._up_after:
                        self._state = ReplicaState.HEALTHY
                    else:
                        self._state = ReplicaState.DEGRADED
            else:
                self._consecutive_failures += 1
                self._consecutive_successes = 0
                if self._consecutive_failures >= self._down_after:
                    self._state = ReplicaState.DOWN
                elif self._state is ReplicaState.HEALTHY:
                    self._state = ReplicaState.DEGRADED
            return self._state

    # set by ReplicaSet.add; defaults keep a standalone Replica usable
    _down_after = 3
    _up_after = 2

    def snapshot(self) -> dict[str, Any]:
        """The replica's row in gateway health reports."""
        with self._lock:
            if self._draining and self._state is not ReplicaState.DOWN:
                state = ReplicaState.DRAINING.value
            else:
                state = self._state.value
            draining = self._draining
            in_flight = self._in_flight
            failures = self._consecutive_failures
            last_probe = self._last_probe
        return {
            "id": self.id,
            "url": self.base_url,
            "state": state,
            "draining": draining,
            "in_flight": in_flight,
            "max_in_flight": self.max_in_flight,
            "consecutive_failures": failures,
            "breaker": self.breaker.state.value,
            "last_probe": last_probe,
        }


class ReplicaSet:
    """Membership plus active health checking for a pool of replicas."""

    def __init__(
        self,
        registry: TransportRegistry | None = None,
        probe_path: str = "/services",
        down_after: int = 3,
        up_after: int = 2,
        max_in_flight: int = 32,
        breaker_failures: int = 5,
        breaker_reset: float = 10.0,
    ):
        if down_after < 1 or up_after < 1:
            raise ValueError("hysteresis thresholds must be at least 1")
        self.registry = registry or TransportRegistry()
        self.probe_path = probe_path
        self.down_after = down_after
        self.up_after = up_after
        self.max_in_flight = max_in_flight
        self.breaker_failures = breaker_failures
        self.breaker_reset = breaker_reset
        # probes must answer fast and never burn Retry-After waits
        self._probe_client = RestClient(self.registry, retry_after_cap=0.0)
        self._lock = threading.Lock()
        self._replicas: dict[str, Replica] = {}
        self._next_index = 0
        self._checker: PeriodicTask | None = None

    # ----------------------------------------------------------- membership

    def add(self, base_url: str, replica_id: str | None = None) -> Replica:
        """Register a backend; its id becomes the public job-id prefix."""
        with self._lock:
            if replica_id is None:
                replica_id = f"r{self._next_index}"
                self._next_index += 1
            if ID_SEPARATOR in replica_id or "/" in replica_id or not replica_id:
                raise ValueError(f"invalid replica id {replica_id!r}")
            if replica_id in self._replicas:
                raise ValueError(f"replica {replica_id!r} already registered")
            replica = Replica(
                replica_id,
                base_url,
                breaker=CircuitBreaker(
                    failure_threshold=self.breaker_failures, reset_timeout=self.breaker_reset
                ),
                max_in_flight=self.max_in_flight,
            )
            replica._down_after = self.down_after
            replica._up_after = self.up_after
            self._replicas[replica_id] = replica
            return replica

    def remove(self, replica_id: str) -> Replica:
        with self._lock:
            replica = self._replicas.pop(replica_id, None)
        if replica is None:
            raise KeyError(replica_id)
        return replica

    def discard(self, replica_id: str) -> "Replica | None":
        """Remove tolerantly: concurrent retire/evict must not crash the
        loser of the race. Returns the replica, or None if already gone."""
        with self._lock:
            return self._replicas.pop(replica_id, None)

    def drain(self, replica_id: str) -> Replica:
        """Flag a replica DRAINING (spread routes stop selecting it)."""
        replica = self.get(replica_id)
        if replica is None:
            raise KeyError(replica_id)
        replica.start_draining()
        return replica

    def get(self, replica_id: str) -> Replica | None:
        with self._lock:
            return self._replicas.get(replica_id)

    def ids(self) -> list[str]:
        with self._lock:
            return list(self._replicas)

    def replicas(self) -> list[Replica]:
        """All replicas in registration order (stable for round-robin)."""
        with self._lock:
            return list(self._replicas.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._replicas)

    # ------------------------------------------------------- health checks

    def probe(self, replica: Replica) -> bool:
        """One active check: GET the probe path, expect a non-5xx answer."""
        try:
            response = self._probe_client.request_raw("GET", replica.base_url + self.probe_path)
        except TransportError:
            return False
        return response.status < 500

    def check_now(self) -> dict[str, ReplicaState]:
        """Probe every replica once; returns the resulting states."""
        states: dict[str, ReplicaState] = {}
        for replica in self.replicas():
            states[replica.id] = replica.record_probe(self.probe(replica))
        return states

    def start_health_checks(self, interval: float = 5.0) -> None:
        """Run :meth:`check_now` every ``interval`` seconds in background."""
        if self._checker is not None:
            raise RuntimeError("health checks already running")
        self._checker = PeriodicTask(interval, self.check_now, name="gateway-health")
        self._checker.start()

    def stop_health_checks(self) -> None:
        if self._checker is None:
            return
        self._checker.stop()
        self._checker = None

    def snapshot(self) -> list[dict[str, Any]]:
        return [replica.snapshot() for replica in self.replicas()]
