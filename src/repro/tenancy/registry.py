"""Tenant accounts: weights, quotas, and crash-safe usage metering.

A *tenant* is the accounting principal of the platform — usually one
authenticated identity or one VO.  The registry answers three questions
on the hot path: who does this request bill to, is that account inside
its quotas, and how much has it consumed.  Usage is metered in two
currencies:

- **CPU-seconds** — wall time of finished jobs (charged once, on the
  terminal transition) and batch reservations (``walltime × nodes ×
  ppn``);
- **disk-bytes** — blob bytes pinned on behalf of the tenant's jobs,
  refunded when the pins are released.

Every delta is journaled as ``{"type": "usage", "tenant": t, "cpu": dc,
"disk": dd}`` through the owning process's durability journal before it
is applied in memory.  Replay is a pure sum — deltas commute and
associate, so segment order and snapshot/record interleaving cannot
change the recovered balance — and the *charge* side clamps refunds to
the balance actually held, so the running sums themselves never go
negative, not merely the reported values.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

#: Request header naming the billing tenant when no authenticated
#: identity is present (demos, examples, trusted perimeters).
TENANT_HEADER = "X-Tenant"

#: Account that absorbs unattributed traffic.  It exists so metering is
#: total — every job bills *someone* — while staying unlimited unless a
#: deployment registers an explicit spec for it.
DEFAULT_TENANT = "public"


@dataclass(frozen=True)
class TenantSpec:
    """Declared shape of one tenant account.

    ``weight`` steers the fair-share queue (2.0 drains twice as fast as
    1.0); ``priority`` is a strict class — higher classes dequeue first
    regardless of weight.  ``None`` quotas/limits mean unlimited.
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    cpu_quota: float | None = None
    disk_quota: int | None = None
    rate: float | None = None
    burst: float = 8.0
    max_concurrent: int | None = None
    max_backlog: int = 64

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be positive")
        if self.max_backlog < 1:
            raise ValueError(f"tenant {self.name!r}: max_backlog must be >= 1")


def apply_usage_event(table: dict, record: Mapping) -> None:
    """Fold one ``{"type": "usage"}`` journal record into ``table``.

    The table maps tenant name to raw signed sums.  Addition commutes,
    so any replay order yields the same balances — the property the
    hypothesis suite pins down.
    """
    tenant = record.get("tenant")
    if not tenant:
        return
    entry = table.setdefault(str(tenant), {"cpu": 0.0, "disk": 0})
    entry["cpu"] += float(record.get("cpu", 0.0) or 0.0)
    entry["disk"] += int(record.get("disk", 0) or 0)


class TenantRegistry:
    """Tenant specs plus journaled usage balances.

    ``journal_fn`` receives each usage delta *before* it is applied, in
    the same dict shape ``apply_usage_event`` consumes; wire it to
    ``JobManager.record_usage`` so balances ride the container's
    write-ahead journal.
    """

    def __init__(self, journal_fn: Callable[[dict], None] | None = None):
        self._lock = threading.Lock()
        self._specs: dict[str, TenantSpec] = {}
        self._assignments: dict[str, str] = {}
        self._usage: dict[str, dict] = {}
        self._journal_fn = journal_fn

    # -- declaration -------------------------------------------------

    def register(self, spec: TenantSpec) -> TenantSpec:
        with self._lock:
            self._specs[spec.name] = spec
        return spec

    def assign(self, identity: str, tenant: str) -> None:
        """Bill requests authenticated as ``identity`` to ``tenant``."""
        with self._lock:
            self._assignments[identity] = tenant

    def adopt_vo(self, vo, **spec_kwargs) -> TenantSpec:
        """Register a VO as one tenant and bill all its members to it."""
        spec = TenantSpec(name=vo.name, **spec_kwargs)
        with self._lock:
            self._specs[spec.name] = spec
            for member in vo.members:
                self._assignments[member] = spec.name
        return spec

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(set(self._specs) | set(self._usage))

    def spec(self, tenant: str) -> TenantSpec:
        """Spec for ``tenant``; unknown tenants get an implicit default
        (weight 1, class 0, unlimited) so accounting stays total."""
        with self._lock:
            spec = self._specs.get(tenant)
        return spec if spec is not None else TenantSpec(name=tenant)

    def resolve_identity(self, identity: str) -> str:
        """Tenant billed for ``identity`` — an explicit assignment, a
        tenant registered under the identity's own name, or default."""
        with self._lock:
            tenant = self._assignments.get(identity)
            if tenant is None:
                tenant = identity if identity in self._specs else None
        return tenant if tenant is not None else DEFAULT_TENANT

    # -- metering ----------------------------------------------------

    def charge(self, tenant: str, cpu: float = 0.0, disk: int = 0) -> None:
        """Apply (and journal) a signed usage delta.

        Refunds are clamped to the balance held so the raw sums stay
        non-negative even if a release races a crash-recovery replay
        that never saw the matching charge.
        """
        with self._lock:
            entry = self._usage.setdefault(tenant, {"cpu": 0.0, "disk": 0})
            if cpu < 0:
                cpu = -min(-cpu, entry["cpu"])
            if disk < 0:
                disk = -min(-disk, entry["disk"])
            if not cpu and not disk:
                return
            record = {"tenant": tenant, "cpu": cpu, "disk": disk}
            if self._journal_fn is not None:
                self._journal_fn(record)
            entry["cpu"] += cpu
            entry["disk"] += disk

    def usage(self, tenant: str) -> dict:
        with self._lock:
            entry = self._usage.get(tenant, {"cpu": 0.0, "disk": 0})
            return {"cpu": max(0.0, entry["cpu"]),
                    "disk": max(0, entry["disk"])}

    def over_cpu(self, tenant: str) -> bool:
        spec = self.spec(tenant)
        if spec.cpu_quota is None:
            return False
        return self.usage(tenant)["cpu"] >= spec.cpu_quota

    def over_disk(self, tenant: str, incoming: int = 0) -> bool:
        spec = self.spec(tenant)
        if spec.disk_quota is None:
            return False
        return self.usage(tenant)["disk"] + incoming > spec.disk_quota

    def over_quota(self, tenant: str) -> bool:
        return self.over_cpu(tenant) or self.over_disk(tenant)

    # -- durability --------------------------------------------------

    def recover(self, table: Mapping[str, Mapping] | None) -> None:
        """Adopt balances folded out of the journal by
        ``apply_usage_event`` (snapshot plus replayed records)."""
        if not table:
            return
        with self._lock:
            for tenant, entry in table.items():
                mine = self._usage.setdefault(tenant, {"cpu": 0.0, "disk": 0})
                mine["cpu"] += float(entry.get("cpu", 0.0))
                mine["disk"] += int(entry.get("disk", 0))

    def export(self) -> list[dict]:
        """Balances in journal-record shape, for snapshot compaction."""
        with self._lock:
            return [
                {"tenant": tenant, "cpu": entry["cpu"], "disk": entry["disk"]}
                for tenant, entry in sorted(self._usage.items())
                if entry["cpu"] or entry["disk"]
            ]

    # -- reporting ---------------------------------------------------

    def standings(self) -> list[dict]:
        """One row per known tenant: spec, usage, and quota headroom."""
        rows = []
        for tenant in self.tenants():
            spec = self.spec(tenant)
            used = self.usage(tenant)
            rows.append({
                "tenant": tenant,
                "weight": spec.weight,
                "priority": spec.priority,
                "cpu_used": round(used["cpu"], 6),
                "cpu_quota": spec.cpu_quota,
                "disk_used": used["disk"],
                "disk_quota": spec.disk_quota,
                "over_quota": self.over_quota(tenant),
            })
        return rows
