"""Weighted fair-share admission queue for the ``JobManager`` pool.

The queue replaces the FIFO hand-off between ``enqueue`` and the worker
pool with *stride scheduling*: each tenant carries a ``pass`` value and
dispatch always picks the backlogged tenant with the smallest pass in
the highest occupied priority class, then advances that tenant's pass
by ``1 / weight``.  Over any window, tenant throughputs converge to the
configured weight ratios, and every backlogged tenant's pass grows
monotonically toward the front — the starvation-freedom property the
hypothesis suite asserts.

Two policies sit on top of the basic scheduler:

- **work-conserving demotion** — tenants that are over quota only drain
  when no in-quota tenant has backlog, so an exhausted account cannot
  crowd out paying work but idle capacity is never wasted;
- **preemption under pressure** — when the total backlog bound is hit,
  ``offer`` interrupts the newest queued job of an over-quota tenant
  (lowest priority class first) to make room, rather than rejecting the
  in-quota submitter.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.tenancy.registry import TenantRegistry


@dataclass
class AdmissionEntry:
    """One admitted job parked until the scheduler releases it."""

    tenant: str
    job: object
    execute: Callable
    enqueued: float
    priority: int = 0
    preempted: bool = field(default=False, compare=False)


class FairShareQueue:
    """Stride-scheduled multi-tenant backlog with bounded depth."""

    def __init__(self, registry: TenantRegistry, max_backlog_total: int = 256):
        self.registry = registry
        self.max_backlog_total = max_backlog_total
        self._lock = threading.Lock()
        self._backlogs: dict[str, list[AdmissionEntry]] = {}
        self._passes: dict[str, float] = {}
        self._preempted = 0

    # -- admission ---------------------------------------------------

    def has_room(self, tenant: str) -> bool:
        """Whether one more job from ``tenant`` fits its backlog bound.

        Called *before* the job object exists, so a full backlog turns
        into a clean 429 with nothing to roll back.  The total bound is
        not checked here — ``offer`` resolves total pressure by
        preempting over-quota work instead of bouncing the submitter.
        """
        spec = self.registry.spec(tenant)
        with self._lock:
            return len(self._backlogs.get(tenant, ())) < spec.max_backlog

    def offer(self, entry: AdmissionEntry) -> None:
        """Park an admitted job; under total pressure, preempt.

        Never rejects: per-tenant bounds were enforced by ``has_room``
        at submit time, and the total bound is relieved by interrupting
        the newest queued job of an over-quota tenant (lowest priority
        class first).  If every queued job belongs to in-quota tenants
        the bound stretches — shedding paid work to enforce a soft
        memory cap would be the worse failure.
        """
        victim = None
        with self._lock:
            backlog = self._backlogs.setdefault(entry.tenant, [])
            if not backlog:
                # A tenant joining (or returning from idle) starts at the
                # active minimum pass: it neither inherits a stale lead
                # nor gets to replay the rounds it sat out.
                floor = self._min_pass_locked()
                self._passes[entry.tenant] = max(
                    self._passes.get(entry.tenant, 0.0), floor)
            backlog.append(entry)
            if self._depth_locked() > self.max_backlog_total:
                victim = self._pick_victim_locked(exclude=entry)
                if victim is not None:
                    victim.preempted = True
                    self._preempted += 1
        if victim is not None:
            victim.job.try_interrupt(
                f"preempted: tenant {victim.tenant!r} is over quota "
                "and the admission queue is full"
            )

    # -- dispatch ----------------------------------------------------

    def take(self) -> AdmissionEntry | None:
        """Release the next job per fair-share policy, or ``None``.

        In-quota tenants are strictly preferred; within the preferred
        pool, the highest priority class wins, then the smallest pass.
        Entries whose job went terminal while parked (cancelled or
        preempted) are dropped silently — their transition was already
        journaled by the owner.
        """
        with self._lock:
            while True:
                tenant = self._select_locked()
                if tenant is None:
                    return None
                backlog = self._backlogs[tenant]
                entry = backlog.pop(0)
                if not backlog:
                    del self._backlogs[tenant]
                spec = self.registry.spec(tenant)
                self._passes[tenant] = (
                    self._passes.get(tenant, 0.0) + 1.0 / spec.weight)
                if entry.job.state.terminal:
                    continue
                return entry

    def _select_locked(self) -> str | None:
        candidates = [t for t in self._backlogs if self._backlogs[t]]
        if not candidates:
            return None
        in_quota = [t for t in candidates if not self.registry.over_quota(t)]
        pool = in_quota or candidates
        top = max(self.registry.spec(t).priority for t in pool)
        pool = [t for t in pool if self.registry.spec(t).priority == top]
        return min(pool, key=lambda t: (self._passes.get(t, 0.0), t))

    # -- preemption --------------------------------------------------

    def _pick_victim_locked(self, exclude) -> AdmissionEntry | None:
        """Newest queued entry of an over-quota tenant, lowest priority
        class first; never the entry that triggered the pressure."""
        best = None
        for tenant, backlog in self._backlogs.items():
            if not self.registry.over_quota(tenant):
                continue
            for entry in reversed(backlog):
                if entry is exclude or entry.preempted:
                    continue
                key = (self.registry.spec(tenant).priority, -entry.enqueued)
                if best is None or key < best[0]:
                    best = (key, entry)
                break
        if best is None:
            return None
        entry = best[1]
        self._backlogs[entry.tenant].remove(entry)
        if not self._backlogs[entry.tenant]:
            del self._backlogs[entry.tenant]
        return entry

    # -- introspection -----------------------------------------------

    def _depth_locked(self) -> int:
        return sum(len(b) for b in self._backlogs.values())

    def _min_pass_locked(self) -> float:
        active = [
            self._passes[t]
            for t, backlog in self._backlogs.items()
            if backlog and t in self._passes
        ]
        return min(active) if active else 0.0

    def depth(self, tenant: str | None = None) -> int:
        with self._lock:
            if tenant is not None:
                return len(self._backlogs.get(tenant, ()))
            return self._depth_locked()

    def backlogs(self) -> dict[str, int]:
        with self._lock:
            return {t: len(b) for t, b in self._backlogs.items() if b}

    @property
    def preempted_total(self) -> int:
        with self._lock:
            return self._preempted
