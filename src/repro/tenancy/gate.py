"""Per-tenant request gating and tenancy metric families.

:class:`TenantGate` is REST middleware with two jobs:

- **attribution** — resolve every request to its billing tenant (the
  security layer's access decision, then a non-anonymous identity, then
  the ``X-Tenant`` header, then the default account) and publish it as
  ``request.context["tenant"]`` for the layers below;
- **enforcement** (gateway only) — token-bucket rate limits, per-tenant
  concurrency caps, quota sheds, and negative-cache suspensions on the
  submit path, each answered with ``429`` + a capped ``Retry-After``
  and the tenant named in the body.

The per-tenant counters and latency histogram follow the deferred
aggregation pattern from :class:`ObservabilityMiddleware`: the request
thread appends one tuple to a bounded deque; the scrape folds them into
families.  Only the token-bucket/in-flight checks are synchronous —
cheap dict arithmetic under one lock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from repro.http.app import DeferredResponse
from repro.http.messages import HttpError, Request, Response
from repro.tenancy.registry import DEFAULT_TENANT, TENANT_HEADER, TenantRegistry

__all__ = ["TokenBucket", "TenantGate", "instrument_tenancy"]


class TokenBucket:
    """Classic token bucket; not thread-safe on its own (the gate holds
    the lock)."""

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def try_take(self) -> tuple[bool, float]:
        """Take one token: ``(True, 0.0)`` or ``(False, wait_seconds)``."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        if self.rate <= 0:
            return False, 60.0
        return False, (1.0 - self._tokens) / self.rate


class TenantGate:
    """Attribution middleware, optionally enforcing gateway limits."""

    PENDING_LIMIT = 65536

    #: Ceiling on every Retry-After the gate emits.
    RETRY_AFTER_CAP = 30.0

    def __init__(self, registry: TenantRegistry, metrics=None,
                 enforce: bool = True, clock=time.monotonic):
        self.registry = registry
        self.enforce = enforce
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._in_flight: dict[str, int] = {}
        self._suspended: dict[str, float] = {}
        self._pending: deque = deque(maxlen=self.PENDING_LIMIT)
        if metrics is not None:
            self.requests = metrics.counter(
                "mc_tenant_requests_total",
                "HTTP requests handled, by billing tenant and response status.",
                labels=("tenant", "status"),
            )
            self.latency = metrics.histogram(
                "mc_tenant_request_seconds",
                "Request handling latency in seconds, by billing tenant.",
                labels=("tenant",),
            )
            self.shed = metrics.counter(
                "mc_tenant_shed_total",
                "Requests shed by the tenant gate, by tenant and reason.",
                labels=("tenant", "reason"),
            )
            metrics.on_scrape(self._flush_pending)
        else:
            self.requests = self.latency = self.shed = None

    # -- attribution -------------------------------------------------

    def resolve(self, request: Request) -> str:
        """Billing tenant for ``request``; see the module docstring for
        the precedence chain."""
        tenant = request.context.get("tenant")
        if tenant:
            return tenant
        access = request.context.get("access")
        if access is not None:
            return self.registry.resolve_identity(access.effective_id)
        identity = request.context.get("identity")
        if identity is not None and not identity.anonymous:
            return self.registry.resolve_identity(identity.id)
        header = request.headers.get(TENANT_HEADER)
        if header:
            return header.strip()
        return DEFAULT_TENANT

    # -- suspension (negative cache of upstream quota sheds) ---------

    def suspend(self, tenant: str, ttl: float) -> None:
        """Shed ``tenant`` at this gate for ``ttl`` seconds — used by
        the gateway when a replica answered 429-over-quota, so repeat
        offenders stop consuming forward attempts."""
        deadline = self._clock() + min(max(ttl, 0.1), self.RETRY_AFTER_CAP)
        with self._lock:
            current = self._suspended.get(tenant, 0.0)
            self._suspended[tenant] = max(current, deadline)

    def suspended_for(self, tenant: str) -> float:
        """Seconds of suspension remaining (0 when clear)."""
        with self._lock:
            deadline = self._suspended.get(tenant)
            if deadline is None:
                return 0.0
            remaining = deadline - self._clock()
            if remaining <= 0:
                del self._suspended[tenant]
                return 0.0
            return remaining

    # -- enforcement -------------------------------------------------

    @staticmethod
    def _is_submit(request: Request) -> bool:
        return request.method == "POST" and request.path.startswith("/services/")

    def _shed(self, tenant: str, reason: str, retry_after: float) -> HttpError:
        retry_after = min(max(retry_after, 0.1), self.RETRY_AFTER_CAP)
        if self.shed is not None:
            self._pending.append(("shed", tenant, reason))
        messages = {
            "suspended": f"tenant {tenant!r} is over quota (suspended at the gateway)",
            "quota": f"tenant {tenant!r} is over quota",
            "concurrency": f"tenant {tenant!r} is at its concurrency cap",
            "rate": f"tenant {tenant!r} exceeded its request rate",
        }
        return HttpError(
            429, messages[reason],
            details={"tenant": tenant, "reason": reason},
            retry_after=retry_after,
        )

    def _admit(self, tenant: str) -> None:
        """Run the shed chain for one submit; raises 429 HttpError."""
        suspended = self.suspended_for(tenant)
        if suspended > 0:
            raise self._shed(tenant, "suspended", suspended)
        if self.registry.over_quota(tenant):
            raise self._shed(tenant, "quota", 5.0)
        spec = self.registry.spec(tenant)
        with self._lock:
            if (spec.max_concurrent is not None
                    and self._in_flight.get(tenant, 0) >= spec.max_concurrent):
                raise self._shed(tenant, "concurrency", 0.5)
            if spec.rate is not None:
                bucket = self._buckets.get(tenant)
                if bucket is None or bucket.rate != spec.rate:
                    bucket = self._buckets[tenant] = TokenBucket(
                        spec.rate, spec.burst, self._clock)
                ok, wait = bucket.try_take()
                if not ok:
                    raise self._shed(tenant, "rate", wait)

    # -- middleware --------------------------------------------------

    def __call__(self, request: Request, call_next) -> Response:
        tenant = self.resolve(request)
        request.context["tenant"] = tenant
        gating = self.enforce and self._is_submit(request)
        pending = self._pending
        start = time.perf_counter()
        if gating:
            try:
                self._admit(tenant)
            except HttpError as error:
                if self.requests is not None:
                    pending.append((
                        "sample", tenant, error.status,
                        time.perf_counter() - start))
                raise
            with self._lock:
                self._in_flight[tenant] = self._in_flight.get(tenant, 0) + 1
        try:
            response = call_next(request)
            if self.requests is not None:
                pending.append((
                    "sample", tenant, response.status,
                    time.perf_counter() - start))
            return response
        except DeferredResponse:
            # parked long-poll: the handler is done, the response is
            # not; skip the latency sample rather than record a bogus one
            raise
        except HttpError as error:
            if self.requests is not None:
                pending.append((
                    "sample", tenant, error.status, time.perf_counter() - start))
            raise
        except BaseException:
            if self.requests is not None:
                pending.append(("sample", tenant, 500, time.perf_counter() - start))
            raise
        finally:
            if gating:
                with self._lock:
                    held = self._in_flight.get(tenant, 0)
                    if held <= 1:
                        self._in_flight.pop(tenant, None)
                    else:
                        self._in_flight[tenant] = held - 1

    def _flush_pending(self) -> None:
        pending = self._pending
        while True:
            try:
                item = pending.popleft()
            except IndexError:
                return
            if item[0] == "sample":
                _, tenant, status, elapsed = item
                self.requests.labels(tenant, status).inc()
                self.latency.labels(tenant).observe(elapsed)
            else:
                _, tenant, reason = item
                self.shed.labels(tenant, reason).inc()


def instrument_tenancy(metrics: Any, registry: TenantRegistry,
                       admission=None, container=None) -> None:
    """Register scrape-time collectors for tenant usage and queueing."""

    def usage_rows(currency):
        return [((tenant,), registry.usage(tenant)[currency])
                for tenant in registry.tenants()]

    def quota_rows(attribute):
        rows = []
        for tenant in registry.tenants():
            value = getattr(registry.spec(tenant), attribute)
            if value is not None:
                rows.append(((tenant,), value))
        return rows

    metrics.collector(
        "mc_tenant_cpu_seconds_used", "CPU-seconds consumed, by tenant.",
        "gauge", lambda: usage_rows("cpu"), labels=("tenant",))
    metrics.collector(
        "mc_tenant_cpu_seconds_quota", "CPU-second quota, for quota-bearing tenants.",
        "gauge", lambda: quota_rows("cpu_quota"), labels=("tenant",))
    metrics.collector(
        "mc_tenant_disk_bytes_used", "Blob bytes pinned, by tenant.",
        "gauge", lambda: usage_rows("disk"), labels=("tenant",))
    metrics.collector(
        "mc_tenant_disk_bytes_quota", "Disk-byte quota, for quota-bearing tenants.",
        "gauge", lambda: quota_rows("disk_quota"), labels=("tenant",))

    if admission is not None:
        metrics.collector(
            "mc_tenant_backlog", "Jobs parked in the fair-share queue, by tenant.",
            "gauge",
            lambda: [((t,), n) for t, n in sorted(admission.backlogs().items())],
            labels=("tenant",))
        metrics.collector(
            "mc_tenant_preempted_total",
            "Queued jobs preempted from over-quota tenants under pressure.",
            "counter", lambda: admission.preempted_total)

    if container is not None:
        def jobs_by_tenant():
            tally: dict[tuple[str, str], int] = {}
            for service in container.services:
                for job in service.jobs.list():
                    key = (job.extra.get("tenant", DEFAULT_TENANT),
                           job.state.value)
                    tally[key] = tally.get(key, 0) + 1
            return [(key, count) for key, count in sorted(tally.items())]

        metrics.collector(
            "mc_tenant_jobs", "Jobs held by deployed services, by tenant and state.",
            "gauge", jobs_by_tenant, labels=("tenant", "state"))
