"""Multi-tenant fair-share admission control.

``repro.tenancy`` layers tenants — accounting principals with weights,
priority classes, and quotas — onto the identities authenticated by
``repro.security`` and the VO groupings of ``repro.grid.vo``:

- :class:`TenantRegistry` holds per-tenant CPU-second and disk-byte
  quotas and meters usage; every delta is journaled as a
  ``{"type": "usage"}`` record through ``repro.durability`` so balances
  survive cold restart and replay in any order.
- :class:`FairShareQueue` replaces the FIFO hand-off in front of the
  ``JobManager`` pool with stride-scheduled, weight-proportional
  dequeue across priority classes, bounded per-tenant backlog, and
  preemption of over-quota tenants' queued jobs under pressure.
- :class:`TenantGate` is REST middleware enforcing per-tenant token
  -bucket rate limits and concurrency caps at the gateway, answering
  ``429`` with a capped ``Retry-After`` and the tenant named in the
  body.
"""

from repro.tenancy.admission import AdmissionEntry, FairShareQueue
from repro.tenancy.gate import TenantGate, TokenBucket, instrument_tenancy
from repro.tenancy.registry import (
    DEFAULT_TENANT,
    TENANT_HEADER,
    TenantRegistry,
    TenantSpec,
    apply_usage_event,
)

__all__ = [
    "AdmissionEntry",
    "DEFAULT_TENANT",
    "FairShareQueue",
    "TENANT_HEADER",
    "TenantGate",
    "TenantRegistry",
    "TenantSpec",
    "TokenBucket",
    "apply_usage_event",
    "instrument_tenancy",
]
