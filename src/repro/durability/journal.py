"""The write-ahead journal: append-only, checksummed, crash-tolerant.

On-disk layout (one directory per journal)::

    segment-00000001.waj      length-prefixed records, oldest first
    segment-00000002.waj
    snapshot-00000002.waj     state snapshot covering segments < 2
    ...

Record framing: every record is ``[length:u32 BE][crc32:u32 BE][payload]``
where the payload is the UTF-8 JSON encoding of one dict. A crash can
leave at most one torn record at the tail of the newest segment; replay
detects it (short header, short payload, or checksum mismatch), keeps
everything up to the last valid record, logs a warning, and never raises.

Segments rotate at ``segment_max_bytes``. A snapshot written through
:meth:`Journal.snapshot` makes every older segment (and older snapshot)
redundant; compaction deletes them, bounding recovery time by snapshot
age rather than journal lifetime. Snapshot files use the same framing
(one record) and are written to a temp name then atomically renamed, so
a crash mid-snapshot leaves the previous snapshot authoritative.

Appends never touch existing segments: a journal opened over a directory
with history always starts a fresh segment, so a torn tail from the
previous incarnation is quarantined rather than appended after.

``fsync`` policy — the hot-path knob:

- ``"always"``: flush + fsync after every append (safest, slowest);
- ``"batch"`` (default): group commit — every append is flushed to the
  OS (microseconds: a ``SIGKILL``'d process loses nothing, the page
  cache survives it), and every ``fsync_batch``-th append wakes a
  dedicated syncer thread that fsyncs on behalf of the whole batch, so
  the append path never waits for the disk at all. Only a power failure
  or kernel crash can cost the records since the last sync point;
- ``"never"``: buffer only, leave flushing to rotation/close/sync.

In never mode process death can additionally lose the user-space buffer;
a graceful teardown loses nothing in any mode, because :meth:`close`
(and :meth:`recover` on a live journal) flush the buffer first.
"""

from __future__ import annotations

import json
import logging
import os
import re
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Iterator

logger = logging.getLogger(__name__)

_HEADER = struct.Struct(">II")  # payload length, crc32(payload)
_SEGMENT_RE = re.compile(r"^segment-(\d{8})\.waj$")
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.waj$")

_FSYNC_MODES = ("always", "batch", "never")


@dataclass
class JournalRecovery:
    """What :meth:`Journal.recover` found on disk.

    ``snapshot`` is the newest valid snapshot state (or ``None``);
    ``records`` are every valid record appended after it, in order;
    ``warnings`` describe any corruption that was tolerated.
    """

    snapshot: "dict[str, Any] | None" = None
    records: list[dict[str, Any]] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return self.snapshot is None and not self.records


def encode_record(record: dict[str, Any]) -> bytes:
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def read_records(stream: BinaryIO, origin: str, warnings: list[str]) -> Iterator[dict[str, Any]]:
    """Yield valid records; stop (with a warning) at the first torn one.

    After a framing or checksum failure the rest of the stream cannot be
    trusted — record boundaries are gone — so replay stops at the last
    valid record rather than resynchronising heuristically.
    """
    while True:
        header = stream.read(_HEADER.size)
        if not header:
            return
        if len(header) < _HEADER.size:
            warnings.append(f"{origin}: truncated record header ({len(header)} bytes); tail dropped")
            return
        length, checksum = _HEADER.unpack(header)
        payload = stream.read(length)
        if len(payload) < length:
            warnings.append(
                f"{origin}: truncated record payload ({len(payload)}/{length} bytes); tail dropped"
            )
            return
        if zlib.crc32(payload) != checksum:
            warnings.append(f"{origin}: record checksum mismatch; record and tail dropped")
            return
        try:
            record = json.loads(payload)
        except ValueError:
            warnings.append(f"{origin}: record is not valid JSON; record and tail dropped")
            return
        if isinstance(record, dict):
            yield record
        else:
            warnings.append(f"{origin}: record is not an object; skipped")


class Journal:
    """An append-only write-ahead journal over one directory.

    Thread-safe: appends from handler threads, transition observers and
    schedulers serialize on an internal lock. :meth:`close` makes further
    appends silent no-ops — the crash controllers use that to model the
    instant a process loses the ability to persist anything.
    """

    def __init__(
        self,
        directory: "str | Path",
        segment_max_bytes: int = 1 << 20,
        fsync: str = "batch",
        fsync_batch: int = 32,
    ):
        if fsync not in _FSYNC_MODES:
            raise ValueError(f"fsync must be one of {_FSYNC_MODES}, got {fsync!r}")
        if segment_max_bytes < 1:
            raise ValueError("segment_max_bytes must be positive")
        if fsync_batch < 1:
            raise ValueError("fsync_batch must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync = fsync
        self.fsync_batch = fsync_batch
        self._lock = threading.Lock()
        self._sync_lock = threading.Lock()
        self._sync_wanted = threading.Event()
        self._syncer: threading.Thread | None = None
        self._file: BinaryIO | None = None
        self._file_bytes = 0
        self._unsynced = 0
        self._closed = False
        self.records_appended = 0
        self.segments_created = 0
        # never append into an existing segment: its tail may be torn
        self._next_index = self._scan_next_index()

    # --------------------------------------------------------------- append

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record (per the fsync policy)."""
        data = encode_record(record)
        with self._lock:
            if self._closed:
                return
            if self._file is None or self._file_bytes >= self.segment_max_bytes:
                self._rotate()
            self._file.write(data)
            self._file_bytes += len(data)
            self.records_appended += 1
            if self.fsync == "always":
                self._file.flush()
                os.fsync(self._file.fileno())
                self._unsynced = 0
            elif self.fsync == "batch":
                # into the page cache now — a killed process loses nothing;
                # only the fsync (power-failure durability) is batched
                self._file.flush()
                self._unsynced += 1
                if self._unsynced >= self.fsync_batch:
                    self._unsynced = 0
                    if self._syncer is None:
                        self._syncer = threading.Thread(
                            target=self._sync_loop,
                            name=f"waj-sync-{self.directory.name}",
                            daemon=True,
                        )
                        self._syncer.start()
                    self._sync_wanted.set()

    def _sync_loop(self) -> None:
        """The group-commit thread: fsync on behalf of whole batches.

        Appenders only ever write into the buffer and wake this thread at
        batch boundaries — the append path itself never waits for the
        disk, exactly like a database log writer.
        """
        while True:
            self._sync_wanted.wait()
            self._sync_wanted.clear()
            with self._sync_lock:
                with self._lock:
                    if self._closed:
                        return
                    file = self._file
                    if file is None:
                        continue
                    file.flush()
                try:
                    os.fsync(file.fileno())
                except (OSError, ValueError):
                    pass  # rotated or closed underneath us: the next sync covers it

    def sync(self) -> None:
        """Force any batched appends down to disk now."""
        with self._lock:
            if self._file is not None and not self._closed:
                self._file.flush()
                if self.fsync != "never":
                    os.fsync(self._file.fileno())
                self._unsynced = 0

    def close(self) -> None:
        """Stop persisting; subsequent appends are dropped.

        A graceful shutdown calls :meth:`sync` first; a simulated crash
        calls :meth:`close` alone, so whatever the dead incarnation still
        tries to write is lost — exactly like the real thing.
        """
        with self._lock:
            self._closed = True
            if self._file is not None:
                self._file.close()
                self._file = None
        self._sync_wanted.set()  # release the syncer thread, if any

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def unsynced_records(self) -> int:
        """Appended records not yet covered by an fsync (group-commit lag).

        Read without the lock on purpose: this feeds the ``/metrics``
        scrape, which must never contend with the append path. A slightly
        stale integer is fine for a gauge.
        """
        return self._unsynced

    # ------------------------------------------------------------- snapshot

    def snapshot(self, state: dict[str, Any]) -> None:
        """Write a compaction snapshot and delete the segments it covers.

        The snapshot is numbered with the *next* segment index: replay
        applies it, then every segment at or above that index. The write
        is atomic (temp file + rename), and older segments/snapshots are
        removed only after the rename succeeds.
        """
        data = encode_record(state)
        with self._lock:
            if self._closed:
                return
            if self._file is not None:
                self._file.flush()
                if self.fsync != "never":
                    os.fsync(self._file.fileno())
                self._file.close()
                self._file = None
                self._file_bytes = 0
                self._unsynced = 0
            index = self._next_index
            final = self.directory / f"snapshot-{index:08d}.waj"
            temp = self.directory / f"snapshot-{index:08d}.waj.tmp"
            with open(temp, "wb") as stream:
                stream.write(data)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temp, final)
            for path, file_index in self._matching(_SEGMENT_RE):
                if file_index < index:
                    path.unlink(missing_ok=True)
            for path, file_index in self._matching(_SNAPSHOT_RE):
                if file_index < index:
                    path.unlink(missing_ok=True)

    # ------------------------------------------------------------- recovery

    def recover(self) -> JournalRecovery:
        """Read everything valid on disk: newest good snapshot + records.

        Tolerates torn tails, checksum flips and empty segment files —
        each produces a warning, never an exception. Corrupt snapshots
        fall back to the next older one (replaying correspondingly more
        segments).
        """
        recovery = JournalRecovery()
        with self._lock:
            if self._file is not None and not self._closed:
                self._file.flush()  # a live journal reads its own buffer back
            snapshots = sorted(self._matching(_SNAPSHOT_RE), key=lambda item: item[1], reverse=True)
            segments = sorted(self._matching(_SEGMENT_RE), key=lambda item: item[1])
        snapshot_index = 0
        for path, index in snapshots:
            state = self._read_snapshot(path, recovery.warnings)
            if state is not None:
                recovery.snapshot = state
                snapshot_index = index
                break
        for path, index in segments:
            if index < snapshot_index:
                continue  # compacted away logically, even if the file survived
            if path.stat().st_size == 0:
                recovery.warnings.append(f"{path.name}: empty segment (crash before first record)")
                continue
            with open(path, "rb") as stream:
                recovery.records.extend(read_records(stream, path.name, recovery.warnings))
        for warning in recovery.warnings:
            logger.warning("journal %s: %s", self.directory, warning)
        return recovery

    # ------------------------------------------------------------ internals

    def _scan_next_index(self) -> int:
        highest = 0
        for _, index in self._matching(_SEGMENT_RE):
            highest = max(highest, index)
        for _, index in self._matching(_SNAPSHOT_RE):
            highest = max(highest, index)
        return highest + 1

    def _matching(self, pattern: "re.Pattern[str]") -> list[tuple[Path, int]]:
        found = []
        for path in self.directory.iterdir():
            match = pattern.match(path.name)
            if match:
                found.append((path, int(match.group(1))))
        return found

    def _rotate(self) -> None:
        """Open the next segment (under the journal lock)."""
        if self._file is not None:
            self._file.flush()
            if self.fsync != "never":
                os.fsync(self._file.fileno())
            self._file.close()
        path = self.directory / f"segment-{self._next_index:08d}.waj"
        self._next_index += 1
        self._file = open(path, "ab")
        self._file_bytes = 0
        self._unsynced = 0
        self.segments_created += 1

    @staticmethod
    def _read_snapshot(path: Path, warnings: list[str]) -> "dict[str, Any] | None":
        with open(path, "rb") as stream:
            states = list(read_records(stream, path.name, warnings))
        if not states:
            warnings.append(f"{path.name}: unreadable snapshot; falling back")
            return None
        return states[0]
