"""The `Recoverable` protocol: what a journal-backed component promises.

Three components implement it — the container's
:class:`~repro.container.jobmanager.JobManager`, the
:class:`~repro.workflow.wms.WorkflowManagementService` and the batch
:class:`~repro.batch.cluster.Cluster`. Each owns a record vocabulary and
the replay logic for it; this protocol pins down the shared lifecycle so
chaos controllers and operators can treat them uniformly:

- construction with a ``journal_dir`` that has history *is* recovery —
  the component rebuilds its externally promised state before serving;
- :meth:`crash` models a cold stop: the journal stops persisting first,
  then the component is torn down without the courtesies of a graceful
  shutdown (nothing gets marked, flushed or drained on the way out);
- :meth:`compact` snapshots current state and truncates the journal, so
  recovery cost tracks live state rather than history length.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.durability.journal import Journal


@runtime_checkable
class Recoverable(Protocol):
    """A component whose externally promised state survives cold restarts."""

    #: The component's write-ahead journal (``None`` when running volatile).
    journal: "Journal | None"

    def crash(self) -> None:
        """Simulate a cold stop: stop persisting, then tear down."""
        ...

    def compact(self) -> None:
        """Snapshot live state into the journal and drop covered segments."""
        ...
