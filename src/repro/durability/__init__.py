"""Durable state: write-ahead journaling and crash recovery.

Everything in the platform that promises "a submitted job stays an
addressable resource" keeps that promise only as long as the process
lives — unless its state is journaled. This package provides the one
shared substrate:

- :class:`Journal` — an append-only write-ahead journal of JSON records
  (length-prefixed, checksummed, segment-rotated, snapshot-compacted)
  whose replay tolerates the torn tails a crash leaves behind;
- :class:`Recoverable` — the protocol implemented by every component
  that can be cold-restarted from its journal (the service container's
  job manager, the workflow management service, the batch cluster).

The division of labour: the journal knows bytes and records, the
components know their own record vocabulary. A component appends one
record per externally observable state change, and on construction with
a journal directory that already has segments it replays them to rebuild
the state it had before the crash.
"""

from repro.durability.journal import Journal, JournalRecovery, encode_record, read_records
from repro.durability.recovery import Recoverable

__all__ = [
    "Journal",
    "JournalRecovery",
    "Recoverable",
    "encode_record",
    "read_records",
]
