"""The workflow management system (paper §3.3, Fig. 2).

Workflows are directed acyclic graphs whose vertices are *blocks* with
typed input/output *ports* and whose edges define data flow:

- :mod:`repro.workflow.model` — the block/port/edge model with data-type
  compatibility checking (the editor's connection rule) and DAG
  validation;
- :mod:`repro.workflow.jsonio` — the JSON workflow format ("it is possible
  to download workflow in JSON format, edit it manually and upload back");
- :mod:`repro.workflow.engine` — the runtime: executes ready blocks in
  parallel, calls services through the unified REST API, streams per-block
  states (the editor's colouring), supports custom Python script blocks;
- :mod:`repro.workflow.wms` — the workflow management service: stores
  workflows and deploys each one as a new *composite service* behind the
  same unified REST API, with proxy-based delegation when secured;
- :mod:`repro.workflow.editor` — the editor's data-model/HTML rendering.
"""

from repro.workflow.engine import BlockState, WorkflowEngine, WorkflowExecutionError
from repro.workflow.jsonio import parse_workflow, workflow_to_json
from repro.workflow.model import (
    ConstBlock,
    DataType,
    InputBlock,
    OutputBlock,
    ScriptBlock,
    ServiceBlock,
    Workflow,
    WorkflowError,
)
from repro.workflow.wms import WorkflowManagementService

__all__ = [
    "BlockState",
    "ConstBlock",
    "DataType",
    "InputBlock",
    "OutputBlock",
    "ScriptBlock",
    "ServiceBlock",
    "Workflow",
    "WorkflowEngine",
    "WorkflowError",
    "WorkflowExecutionError",
    "WorkflowManagementService",
    "parse_workflow",
    "workflow_to_json",
]
