"""The workflow model: typed blocks, ports, edges, DAG validation.

"Each block has a set of inputs and outputs displayed in the form of
ports ... Each input or output has associated data type. The compatibility
of data types is checked during connecting the ports." (paper §3.3)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.core.description import Parameter, ServiceDescription


class WorkflowError(Exception):
    """Structural problem in a workflow (bad connection, cycle, ...)."""


class DataType(str, Enum):
    """Port data types (the editor's connection vocabulary)."""

    STRING = "string"
    NUMBER = "number"
    INTEGER = "integer"
    BOOLEAN = "boolean"
    OBJECT = "object"
    ARRAY = "array"
    FILE = "file"
    ANY = "any"

    @classmethod
    def from_schema(cls, schema: Any) -> "DataType":
        """Derive a port type from a parameter's JSON Schema."""
        if not isinstance(schema, dict):
            return cls.ANY
        if schema.get("format") == "file":
            return cls.FILE
        declared = schema.get("type")
        if isinstance(declared, str):
            try:
                return cls(declared)
            except ValueError:
                return cls.ANY
        return cls.ANY


def compatible(source: DataType, target: DataType) -> bool:
    """The editor's port-connection rule.

    ``any`` connects to everything (dynamic values); an ``integer`` output
    feeds a ``number`` input; otherwise the types must match exactly. The
    engine does not (and per the paper, deliberately does not) check data
    *formats or semantics* — that remains the user's responsibility.
    """
    if source == target:
        return True
    if DataType.ANY in (source, target):
        return True
    return source == DataType.INTEGER and target == DataType.NUMBER


@dataclass(frozen=True)
class Port:
    name: str
    type: DataType = DataType.ANY
    required: bool = True


@dataclass(eq=False)
class Block:
    """Base block: identity plus typed ports."""

    id: str
    inputs: list[Port] = field(default_factory=list, init=False)
    outputs: list[Port] = field(default_factory=list, init=False)

    kind = "block"

    def input_port(self, name: str) -> Port:
        return self._port(self.inputs, name, "input")

    def output_port(self, name: str) -> Port:
        return self._port(self.outputs, name, "output")

    def _port(self, ports: list[Port], name: str, side: str) -> Port:
        for port in ports:
            if port.name == name:
                return port
        raise WorkflowError(f"block {self.id!r} has no {side} port {name!r}")


@dataclass(eq=False)
class InputBlock(Block):
    """A workflow-level input parameter."""

    name: str = ""
    type: DataType = DataType.ANY
    default: Any = None
    required: bool = True

    kind = "input"

    def __post_init__(self) -> None:
        self.name = self.name or self.id
        self.outputs = [Port("value", self.type)]


@dataclass(eq=False)
class OutputBlock(Block):
    """A workflow-level output parameter."""

    name: str = ""
    type: DataType = DataType.ANY

    kind = "output"

    def __post_init__(self) -> None:
        self.name = self.name or self.id
        self.inputs = [Port("value", self.type)]


@dataclass(eq=False)
class ConstBlock(Block):
    """A constant value wired into the graph."""

    value: Any = None

    kind = "const"

    def __post_init__(self) -> None:
        self.outputs = [Port("value", _infer_type(self.value))]


def _infer_type(value: Any) -> DataType:
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.NUMBER
    if isinstance(value, str):
        return DataType.STRING
    if isinstance(value, list):
        return DataType.ARRAY
    if isinstance(value, dict):
        return DataType.OBJECT
    return DataType.ANY


@dataclass(eq=False)
class ServiceBlock(Block):
    """A computational web service in the graph.

    Ports are generated from the service description — the editor's
    "dynamically retrieve service description and extract information about
    the number, types and names of input and output parameters".
    """

    uri: str = ""
    description: ServiceDescription | None = None
    #: Per-block retry policy for transient overload (429/503) answers:
    #: how many extra submissions the engine may make after the client's
    #: own ``Retry-After`` budget is spent. ``0`` keeps the engine's
    #: original fail-fast behaviour.
    retries: int = 0
    #: Total seconds the block's client may spend honouring ``Retry-After``
    #: waits per request (the :class:`RestClient` budget).
    retry_budget: float = 5.0

    kind = "service"

    def __post_init__(self) -> None:
        if not self.uri:
            raise WorkflowError(f"service block {self.id!r} needs a service URI")
        if self.description is not None:
            self._build_ports(self.description)

    def _build_ports(self, description: ServiceDescription) -> None:
        self.inputs = [
            Port(p.name, DataType.from_schema(p.schema), required=p.required and p.default is None)
            for p in description.inputs
        ]
        self.outputs = [Port(p.name, DataType.from_schema(p.schema)) for p in description.outputs]

    def introspect(self, registry: Any) -> None:
        """Fetch the service description through the unified REST API."""
        from repro.client.client import ServiceProxy

        self.description = ServiceProxy(self.uri, registry).describe()
        self._build_ports(self.description)


@dataclass(eq=False)
class ScriptBlock(Block):
    """A custom action written in Python (paper: "custom workflow actions
    written in JavaScript or Python").

    The code runs with each input port's value bound to a variable of the
    port's name and must assign a variable per output port.
    """

    code: str = ""
    input_names: list[str] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)
    #: Optional port typing: name -> DataType value.
    types: dict[str, str] = field(default_factory=dict)

    kind = "script"

    def __post_init__(self) -> None:
        if not self.code:
            raise WorkflowError(f"script block {self.id!r} needs code")
        for name in (*self.input_names, *self.output_names):
            if not name.isidentifier():
                raise WorkflowError(
                    f"script block {self.id!r}: port {name!r} must be a Python identifier"
                )
        self.inputs = [Port(n, self._type_of(n)) for n in self.input_names]
        self.outputs = [Port(n, self._type_of(n)) for n in self.output_names]

    def _type_of(self, name: str) -> DataType:
        return DataType(self.types[name]) if name in self.types else DataType.ANY


@dataclass(frozen=True)
class Edge:
    """A data-flow connection between two ports."""

    src_block: str
    src_port: str
    dst_block: str
    dst_port: str

    def __str__(self) -> str:
        return f"{self.src_block}.{self.src_port} → {self.dst_block}.{self.dst_port}"


class Workflow:
    """A named DAG of blocks, built with type-checked connections."""

    def __init__(self, name: str, title: str = "", description: str = ""):
        self.name = name
        self.title = title
        self.description = description
        self.blocks: dict[str, Block] = {}
        self.edges: list[Edge] = []

    # ------------------------------------------------------------- building

    def add(self, block: Block) -> Block:
        if block.id in self.blocks:
            raise WorkflowError(f"duplicate block id {block.id!r}")
        self.blocks[block.id] = block
        return block

    def block(self, block_id: str) -> Block:
        if block_id not in self.blocks:
            raise WorkflowError(f"no block {block_id!r}")
        return self.blocks[block_id]

    def connect(self, source: str, target: str) -> Edge:
        """Connect ``"block.port"`` to ``"block.port"`` with type checking."""
        src_block_id, src_port_name = self._split(source)
        dst_block_id, dst_port_name = self._split(target)
        src_port = self.block(src_block_id).output_port(src_port_name)
        dst_port = self.block(dst_block_id).input_port(dst_port_name)
        if not compatible(src_port.type, dst_port.type):
            raise WorkflowError(
                f"incompatible connection {source} ({src_port.type.value}) → "
                f"{target} ({dst_port.type.value})"
            )
        for edge in self.edges:
            if edge.dst_block == dst_block_id and edge.dst_port == dst_port_name:
                raise WorkflowError(f"input port {target} is already connected (from {edge})")
        edge = Edge(src_block_id, src_port_name, dst_block_id, dst_port_name)
        self.edges.append(edge)
        return edge

    @staticmethod
    def _split(reference: str) -> tuple[str, str]:
        block_id, separator, port = reference.partition(".")
        if not separator or not block_id or not port:
            raise WorkflowError(f"port reference must be 'block.port', got {reference!r}")
        return block_id, port

    # ----------------------------------------------------------- inspection

    def input_blocks(self) -> list[InputBlock]:
        return [b for b in self.blocks.values() if isinstance(b, InputBlock)]

    def output_blocks(self) -> list[OutputBlock]:
        return [b for b in self.blocks.values() if isinstance(b, OutputBlock)]

    def incoming(self, block_id: str) -> list[Edge]:
        return [e for e in self.edges if e.dst_block == block_id]

    def outgoing(self, block_id: str) -> list[Edge]:
        return [e for e in self.edges if e.src_block == block_id]

    def topological_order(self) -> list[str]:
        """Kahn's algorithm; raises :class:`WorkflowError` on cycles."""
        in_degree = {block_id: 0 for block_id in self.blocks}
        for edge in self.edges:
            in_degree[edge.dst_block] += 1
        ready = sorted(block_id for block_id, degree in in_degree.items() if degree == 0)
        order: list[str] = []
        while ready:
            block_id = ready.pop(0)
            order.append(block_id)
            for edge in self.outgoing(block_id):
                in_degree[edge.dst_block] -= 1
                if in_degree[edge.dst_block] == 0:
                    ready.append(edge.dst_block)
        if len(order) != len(self.blocks):
            cyclic = sorted(set(self.blocks) - set(order))
            raise WorkflowError(f"workflow contains a cycle through {cyclic}")
        return order

    def validate(self) -> None:
        """Full structural check: connectivity, required ports, acyclicity.

        Run before deployment/execution; ``connect`` already enforces the
        local rules, this adds the global ones.
        """
        problems: list[str] = []
        names: set[str] = set()
        for block in self.input_blocks():
            if block.name in names:
                problems.append(f"duplicate workflow input name {block.name!r}")
            names.add(block.name)
        names.clear()
        for block in self.output_blocks():
            if block.name in names:
                problems.append(f"duplicate workflow output name {block.name!r}")
            names.add(block.name)
            if not self.incoming(block.id):
                problems.append(f"output block {block.id!r} is not connected")
        for block in self.blocks.values():
            connected = {edge.dst_port for edge in self.incoming(block.id)}
            for port in block.inputs:
                if port.required and port.name not in connected and not isinstance(block, OutputBlock):
                    problems.append(
                        f"required input port {block.id}.{port.name} is not connected"
                    )
        try:
            self.topological_order()
        except WorkflowError as exc:
            problems.append(str(exc))
        if problems:
            raise WorkflowError(
                f"workflow {self.name!r} is invalid: " + "; ".join(problems)
            )

    def to_description(self) -> ServiceDescription:
        """The service description of this workflow as a composite service."""
        inputs = [
            Parameter(
                block.name,
                _schema_for(block.type),
                required=block.required and block.default is None,
                default=block.default,
            )
            for block in sorted(self.input_blocks(), key=lambda b: b.id)
        ]
        outputs = [
            Parameter(block.name, _schema_for(block.type))
            for block in sorted(self.output_blocks(), key=lambda b: b.id)
        ]
        return ServiceDescription(
            name=self.name,
            title=self.title or self.name,
            description=self.description or f"Composite service for workflow {self.name!r}",
            inputs=inputs,
            outputs=outputs,
            tags=["workflow", "composite"],
        )


def _schema_for(data_type: DataType) -> Any:
    if data_type == DataType.ANY:
        return True
    if data_type == DataType.FILE:
        from repro.core.filerefs import FILE_SCHEMA

        return FILE_SCHEMA
    return {"type": data_type.value}
