"""The workflow runtime.

Executes a validated workflow: blocks run as soon as all their inputs are
available, independent blocks run in parallel, and per-block states stream
to an observer — the information the editor uses to paint blocks by
state. Service blocks are invoked through the unified REST API (submit,
poll, collect), so a workflow can span services in any container,
cluster or grid without the engine knowing the difference.
"""

from __future__ import annotations

import builtins
import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from enum import Enum
from typing import Any, Callable, Mapping

from repro.cache import canonical_json, normalize_refs
from repro.client.client import JobFailedError, ServiceProxy
from repro.http.client import ClientError
from repro.http.registry import TransportRegistry
from repro.http.transport import TransportError
from repro.runtime.trace import (
    activate_span_context,
    current_span_context,
    span,
    trace_headers,
)
from repro.workflow.model import (
    Block,
    ConstBlock,
    InputBlock,
    OutputBlock,
    ScriptBlock,
    ServiceBlock,
    Workflow,
)


class BlockState(str, Enum):
    """Per-block execution states (the editor's colours)."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    SKIPPED = "SKIPPED"


class WorkflowExecutionError(Exception):
    """One or more blocks failed; carries every block error."""

    def __init__(self, workflow_name: str, block_errors: dict[str, str]):
        details = "; ".join(f"{block}: {error}" for block, error in sorted(block_errors.items()))
        super().__init__(f"workflow {workflow_name!r} failed: {details}")
        self.block_errors = block_errors


class WorkflowCancelled(Exception):
    """Execution was cancelled through the cancel event."""


#: Observer signature: (block_id, state, error_message_or_empty).
StateObserver = Callable[[str, BlockState, str], None]

#: Builtins available to script blocks — enough for data plumbing, no I/O.
_SCRIPT_BUILTINS = {
    name: getattr(builtins, name)
    for name in (
        "abs", "all", "any", "bool", "dict", "divmod", "enumerate", "filter",
        "float", "format", "frozenset", "int", "isinstance", "len", "list",
        "map", "max", "min", "pow", "range", "repr", "reversed", "round",
        "set", "sorted", "str", "sum", "tuple", "zip", "ValueError", "TypeError",
    )
}


class WorkflowEngine:
    """Executes workflows over a transport registry."""

    def __init__(
        self,
        registry: TransportRegistry | None = None,
        max_parallel: int = 8,
        poll: float = 0.02,
        headers: Mapping[str, str] | None = None,
        wait_chunk: float = 0.5,
        resubmit_lost: int = 1,
    ):
        self.registry = registry or TransportRegistry()
        self.max_parallel = max_parallel
        #: Fallback poll interval for servers that ignore ``?wait=``.
        self.poll = poll
        #: One long-poll block per member-service request; bounds how long a
        #: cancel can go unnoticed while a service block is in flight.
        self.wait_chunk = wait_chunk
        #: Headers sent with every service call (credentials / delegation).
        self.headers = dict(headers or {})
        #: How many times a service block is resubmitted from scratch when
        #: its job resource is *lost* — the backend (typically a gateway
        #: replica) becomes unreachable or answers 502/503. Running against
        #: a replicated gateway, the resubmission lands on a survivor, so
        #: workflows ride out a replica failure mid-run.
        self.resubmit_lost = resubmit_lost

    def execute(
        self,
        workflow: Workflow,
        inputs: dict[str, Any] | None = None,
        observer: StateObserver | None = None,
        cancel_event: threading.Event | None = None,
        headers: Mapping[str, str] | None = None,
        resume_from: Mapping[str, dict[str, Any]] | None = None,
        on_block_done: Callable[[str, dict[str, Any]], None] | None = None,
    ) -> dict[str, Any]:
        """Run ``workflow`` with the given workflow-level inputs.

        Returns the output parameter values. Raises
        :class:`WorkflowExecutionError` when blocks fail (downstream blocks
        are reported SKIPPED) and :class:`WorkflowCancelled` on cancel.

        ``resume_from`` maps block ids to their recorded output values from
        a previous interrupted run: those blocks are marked DONE up front
        with the recorded values instead of being executed again, so a
        restarted engine continues the DAG from its last completed
        frontier. ``on_block_done`` is called with ``(block_id, outputs)``
        just before each block turns DONE — the checkpoint hook durable
        callers persist through; a hook failure never fails the block.
        """
        workflow.validate()
        run = _Run(
            engine=self,
            workflow=workflow,
            inputs=dict(inputs or {}),
            observer=observer or (lambda *args: None),
            cancel_event=cancel_event or threading.Event(),
            headers={**self.headers, **dict(headers or {})},
            resume_from=dict(resume_from or {}),
            checkpoint=on_block_done,
        )
        return run.execute()


class _MemoEntry:
    """One sweep-wide single-flight slot: the leader's outcome, awaited by
    follower blocks with the same (service URI, canonical inputs)."""

    __slots__ = ("event", "ok", "results")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.ok = False
        self.results: dict[str, Any] = {}


class _Run:
    """State of one workflow execution."""

    def __init__(
        self,
        engine: WorkflowEngine,
        workflow: Workflow,
        inputs: dict[str, Any],
        observer: StateObserver,
        cancel_event: threading.Event,
        headers: dict[str, str],
        resume_from: dict[str, dict[str, Any]] | None = None,
        checkpoint: Callable[[str, dict[str, Any]], None] | None = None,
    ):
        self.engine = engine
        self.workflow = workflow
        self.inputs = inputs
        self.observer = observer
        self.cancel_event = cancel_event
        self.headers = headers
        self.resume_from = resume_from or {}
        self.checkpoint = checkpoint
        # captured on the submitting thread: block threads come from a
        # ThreadPoolExecutor, which never inherits contextvars, so each
        # block re-activates this before opening its own span
        self.trace_context = current_span_context()
        self.values: dict[tuple[str, str], Any] = {}
        self.states: dict[str, BlockState] = {
            block_id: BlockState.PENDING for block_id in workflow.blocks
        }
        self.errors: dict[str, str] = {}
        self._lock = threading.Lock()
        # sweep-wide submission dedup: parameter sweeps routinely contain
        # several service blocks with identical URI + inputs; only one of
        # them actually POSTs, the rest adopt its results
        self._memo: dict[tuple[str, str], _MemoEntry] = {}
        self._memo_lock = threading.Lock()

    # ----------------------------------------------------------- lifecycle

    def execute(self) -> dict[str, Any]:
        self._check_workflow_inputs()
        remaining = set(self.workflow.blocks)
        # resumed blocks complete instantly from their recorded outputs —
        # a restarted run re-executes only the unfinished frontier
        for block_id, outputs in self.resume_from.items():
            if block_id not in remaining:
                continue
            remaining.discard(block_id)
            for port_name, value in outputs.items():
                self.values[(block_id, port_name)] = value
            self._set_state(block_id, BlockState.DONE)
        running: dict[Future[None], str] = {}
        with ThreadPoolExecutor(max_workers=self.engine.max_parallel) as pool:
            while remaining or running:
                if self.cancel_event.is_set():
                    for future in running:
                        future.cancel()
                    raise WorkflowCancelled(f"workflow {self.workflow.name!r} cancelled")
                progressed = False
                for block_id in sorted(remaining):
                    decision = self._readiness(block_id)
                    if decision == "ready":
                        remaining.discard(block_id)
                        self._set_state(block_id, BlockState.RUNNING)
                        future = pool.submit(self._run_block_guarded, block_id)
                        running[future] = block_id
                        progressed = True
                    elif decision == "skip":
                        remaining.discard(block_id)
                        self._set_state(block_id, BlockState.SKIPPED)
                        progressed = True
                if running:
                    done, _ = wait(running, timeout=0.1, return_when=FIRST_COMPLETED)
                    for future in done:
                        running.pop(future)
                        progressed = True
                elif not progressed and remaining:
                    # validated DAGs always progress; guard anyway
                    raise WorkflowExecutionError(
                        self.workflow.name,
                        {block: "deadlocked (unreachable inputs)" for block in remaining},
                    )
        if self.errors:
            raise WorkflowExecutionError(self.workflow.name, self.errors)
        return self._collect_outputs()

    def _check_workflow_inputs(self) -> None:
        known = {block.name for block in self.workflow.input_blocks()}
        unknown = set(self.inputs) - known
        if unknown:
            raise WorkflowExecutionError(
                self.workflow.name,
                {name: "unknown workflow input" for name in sorted(unknown)},
            )

    # ----------------------------------------------------------- scheduling

    def _readiness(self, block_id: str) -> str:
        """'ready' | 'wait' | 'skip' for a pending block."""
        for edge in self.workflow.incoming(block_id):
            upstream_state = self.states[edge.src_block]
            if upstream_state in (BlockState.FAILED, BlockState.SKIPPED):
                return "skip"
            if upstream_state is not BlockState.DONE:
                return "wait"
            if (edge.src_block, edge.src_port) not in self.values:
                return "wait"
        return "ready"

    def _set_state(self, block_id: str, state: BlockState, error: str = "") -> None:
        with self._lock:
            self.states[block_id] = state
            if error:
                self.errors[block_id] = error
        self.observer(block_id, state, error)

    # ------------------------------------------------------------ execution

    def _run_block_guarded(self, block_id: str) -> None:
        block = self.workflow.blocks[block_id]
        try:
            with activate_span_context(self.trace_context):
                with span("workflow.block", labels={"block": block_id, "kind": block.kind}):
                    outputs = self._run_block(block)
        except (JobFailedError, ClientError, TransportError, WorkflowCancelled) as exc:
            self._set_state(block_id, BlockState.FAILED, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - script blocks run user code
            self._set_state(block_id, BlockState.FAILED, f"{type(exc).__name__}: {exc}")
            return
        with self._lock:
            for port_name, value in outputs.items():
                self.values[(block_id, port_name)] = value
        if self.checkpoint is not None:
            try:
                self.checkpoint(block_id, outputs)
            except Exception:  # noqa: BLE001 - durability is best-effort
                pass  # an unserializable output loses its checkpoint, not its run
        self._set_state(block_id, BlockState.DONE)

    def _block_inputs(self, block: Block) -> dict[str, Any]:
        bound: dict[str, Any] = {}
        for edge in self.workflow.incoming(block.id):
            bound[edge.dst_port] = self.values[(edge.src_block, edge.src_port)]
        return bound

    def _run_block(self, block: Block) -> dict[str, Any]:
        if isinstance(block, InputBlock):
            if block.name in self.inputs:
                return {"value": self.inputs[block.name]}
            if block.default is not None or not block.required:
                return {"value": block.default}
            raise ValueError(f"missing workflow input {block.name!r}")
        if isinstance(block, ConstBlock):
            return {"value": block.value}
        if isinstance(block, OutputBlock):
            return {}  # its incoming value is read at collection time
        if isinstance(block, ServiceBlock):
            return self._run_service(block)
        if isinstance(block, ScriptBlock):
            return self._run_script(block)
        raise TypeError(f"engine cannot execute block kind {block.kind!r}")

    def _run_service(self, block: ServiceBlock) -> dict[str, Any]:
        inputs = self._block_inputs(block)
        try:
            # normalize first so two blocks fed the same *content* — blob
            # refs whose URIs differ only by which replica (or gateway
            # rewrite) advertises them — share one memo slot
            memo_key = (block.uri, canonical_json(normalize_refs(inputs)))
        except (TypeError, ValueError):
            # non-JSON input values cannot be canonicalized: no dedup
            return self._submit_service(block, inputs)
        while True:
            with self._memo_lock:
                entry = self._memo.get(memo_key)
                leader = entry is None
                if leader:
                    entry = self._memo[memo_key] = _MemoEntry()
            if leader:
                try:
                    entry.results = self._submit_service(block, inputs)
                    entry.ok = True
                except BaseException:
                    # drop the slot so a waiting duplicate retries as the
                    # new leader (one block's transient failure must not
                    # condemn its twins), then wake the waiters
                    with self._memo_lock:
                        self._memo.pop(memo_key, None)
                    entry.event.set()
                    raise
                entry.event.set()
                return dict(entry.results)
            while not entry.event.wait(0.05):
                if self.cancel_event.is_set():
                    raise WorkflowCancelled(f"block {block.id!r} cancelled")
            if entry.ok:
                return dict(entry.results)
            # the leader failed; re-resolve (this block may now lead)

    def _submit_service(self, block: ServiceBlock, inputs: dict[str, Any]) -> dict[str, Any]:
        # idempotent submits: a fresh Idempotency-Key per submission lets a
        # gateway replay the POST across replicas on connection failures;
        # the block's retry budget bounds client-level Retry-After waits
        proxy = ServiceProxy(
            block.uri,
            self.engine.registry,
            # the ambient span here is this block's workflow.block span, so
            # the member service's spans parent under it across the hop
            headers={**self.headers, **trace_headers()},
            idempotent_submits=True,
            retry_after_cap=block.retry_budget,
        )
        resubmits_left = max(0, self.engine.resubmit_lost)
        transient_left = max(0, block.retries)
        backoff = 0.05
        while True:
            try:
                return self._await_service(block, proxy, inputs)
            except (TransportError, ClientError) as exc:
                status = exc.status if isinstance(exc, ClientError) else None
                if self.cancel_event.is_set():
                    raise
                if status in (429, 503) and transient_left > 0:
                    # per-block policy: an overload answer that outlived the
                    # client's Retry-After budget is retried with capped
                    # backoff before the block is allowed to fail; a server
                    # that said *when* to come back wins over the heuristic
                    transient_left -= 1
                    hinted = getattr(exc, "retry_after", None)
                    wait = min(hinted, 2.0) if hinted is not None else backoff
                    self.cancel_event.wait(wait)
                    backoff = min(backoff * 2, 0.5)
                    continue
                lost = status in (502, 503) or isinstance(exc, TransportError)
                if not lost or resubmits_left <= 0:
                    raise
                resubmits_left -= 1
                # the job resource is gone (replica died); submit afresh —
                # a replicated gateway routes the retry to a survivor

    def _await_service(
        self, block: ServiceBlock, proxy: ServiceProxy, inputs: dict[str, Any]
    ) -> dict[str, Any]:
        handle = proxy.submit_dict(inputs)
        interval = self.engine.poll
        while True:
            # primary path: long-poll in wait_chunk blocks, so completion is
            # signalled by the service's own transition and cancellation is
            # still noticed between chunks
            representation = handle.poll(wait=self.engine.wait_chunk)
            if representation["state"] == "DONE":
                return representation.get("results", {})
            if representation["state"] in ("FAILED", "CANCELLED"):
                raise JobFailedError(
                    representation["state"], representation.get("error", ""), handle.uri
                )
            if self.cancel_event.is_set():
                try:
                    handle.cancel()
                finally:
                    raise WorkflowCancelled(f"block {block.id!r} cancelled")
            if handle.long_poll_supported is False:
                # explicit fallback for servers that ignore ?wait=: event-based
                # backoff polling (interruptible by cancel, no time.sleep)
                self.cancel_event.wait(interval)
                interval = min(interval * 1.5, 0.5)

    def _run_script(self, block: ScriptBlock) -> dict[str, Any]:
        namespace: dict[str, Any] = dict(self._block_inputs(block))
        namespace["__builtins__"] = _SCRIPT_BUILTINS
        exec(compile(block.code, f"<script:{block.id}>", "exec"), namespace)  # noqa: S102
        outputs: dict[str, Any] = {}
        for name in block.output_names:
            if name not in namespace:
                raise ValueError(f"script did not assign output variable {name!r}")
            outputs[name] = namespace[name]
        return outputs

    # ------------------------------------------------------------- results

    def _collect_outputs(self) -> dict[str, Any]:
        outputs: dict[str, Any] = {}
        for block in self.workflow.output_blocks():
            edge = self.workflow.incoming(block.id)[0]
            outputs[block.name] = self.values[(edge.src_block, edge.src_port)]
        return outputs
