"""The JSON workflow format.

"Besides the graphical editor it is possible to download workflow in JSON
format, edit it manually and upload back to WMS." (paper §3.3)

Document shape::

    {
      "name": "block-inversion",
      "title": "...", "description": "...",
      "blocks": [
        {"id": "m",    "kind": "input",   "name": "matrix", "type": "object"},
        {"id": "k",    "kind": "const",   "value": 4},
        {"id": "inv",  "kind": "service", "uri": "http://.../services/invert",
                        "description": { ...optional embedded description... }},
        {"id": "fmt",  "kind": "script",  "code": "text = str(value)",
                        "inputs": ["value"], "outputs": ["text"]},
        {"id": "out",  "kind": "output",  "name": "inverse", "type": "object"}
      ],
      "edges": ["m.value -> inv.matrix", "inv.inverse -> out.value", ...]
    }

Service blocks may embed their description; otherwise it is retrieved from
the service URI at parse time (exactly what the editor does when a block
is dropped on the canvas), which requires passing a transport registry.
"""

from __future__ import annotations

from typing import Any

from repro.core.description import ServiceDescription
from repro.http.registry import TransportRegistry
from repro.workflow.model import (
    Block,
    ConstBlock,
    DataType,
    InputBlock,
    OutputBlock,
    ScriptBlock,
    ServiceBlock,
    Workflow,
    WorkflowError,
)


def workflow_to_json(workflow: Workflow) -> dict[str, Any]:
    """Serialize a workflow (service descriptions are embedded, so the
    document is self-contained and re-parsable offline)."""
    blocks: list[dict[str, Any]] = []
    for block in workflow.blocks.values():
        document: dict[str, Any] = {"id": block.id, "kind": block.kind}
        if isinstance(block, InputBlock):
            document.update(name=block.name, type=block.type.value, required=block.required)
            if block.default is not None:
                document["default"] = block.default
        elif isinstance(block, OutputBlock):
            document.update(name=block.name, type=block.type.value)
        elif isinstance(block, ConstBlock):
            document["value"] = block.value
        elif isinstance(block, ServiceBlock):
            document["uri"] = block.uri
            if block.description is not None:
                document["description"] = block.description.to_json()
            if block.retries:
                document["retries"] = block.retries
            if block.retry_budget != 5.0:
                document["retry_budget"] = block.retry_budget
        elif isinstance(block, ScriptBlock):
            document.update(
                code=block.code,
                inputs=list(block.input_names),
                outputs=list(block.output_names),
            )
            if block.types:
                document["types"] = dict(block.types)
        else:  # pragma: no cover - new kinds must extend this module
            raise WorkflowError(f"cannot serialize block kind {block.kind!r}")
        blocks.append(document)
    return {
        "name": workflow.name,
        "title": workflow.title,
        "description": workflow.description,
        "blocks": blocks,
        "edges": [
            f"{e.src_block}.{e.src_port} -> {e.dst_block}.{e.dst_port}"
            for e in workflow.edges
        ],
    }


def _parse_block(document: dict[str, Any], registry: TransportRegistry | None) -> Block:
    kind = document.get("kind")
    block_id = document.get("id")
    if not block_id:
        raise WorkflowError(f"block without an id: {document!r}")
    if kind == "input":
        return InputBlock(
            block_id,
            name=document.get("name", block_id),
            type=DataType(document.get("type", "any")),
            default=document.get("default"),
            required=bool(document.get("required", True)),
        )
    if kind == "output":
        return OutputBlock(
            block_id,
            name=document.get("name", block_id),
            type=DataType(document.get("type", "any")),
        )
    if kind == "const":
        return ConstBlock(block_id, value=document.get("value"))
    if kind == "service":
        description = document.get("description")
        block = ServiceBlock(
            block_id,
            uri=document.get("uri", ""),
            description=ServiceDescription.from_json(description) if description else None,
            retries=int(document.get("retries", 0)),
            retry_budget=float(document.get("retry_budget", 5.0)),
        )
        if block.description is None:
            if registry is None:
                raise WorkflowError(
                    f"service block {block_id!r} has no embedded description and "
                    "no registry was given to retrieve it"
                )
            block.introspect(registry)
        return block
    if kind == "script":
        return ScriptBlock(
            block_id,
            code=document.get("code", ""),
            input_names=list(document.get("inputs", [])),
            output_names=list(document.get("outputs", [])),
            types=dict(document.get("types", {})),
        )
    raise WorkflowError(f"unknown block kind {kind!r} in block {block_id!r}")


def parse_workflow(
    document: dict[str, Any],
    registry: TransportRegistry | None = None,
) -> Workflow:
    """Parse the JSON format back into a validated :class:`Workflow`."""
    if not isinstance(document, dict) or not document.get("name"):
        raise WorkflowError("workflow document must be an object with a 'name'")
    workflow = Workflow(
        document["name"],
        title=document.get("title", ""),
        description=document.get("description", ""),
    )
    for block_document in document.get("blocks", []):
        workflow.add(_parse_block(block_document, registry))
    for edge_text in document.get("edges", []):
        source, separator, target = str(edge_text).partition("->")
        if not separator:
            raise WorkflowError(f"edge must look like 'a.x -> b.y', got {edge_text!r}")
        workflow.connect(source.strip(), target.strip())
    workflow.validate()
    return workflow
