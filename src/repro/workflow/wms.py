"""The workflow management service (WMS).

"The WMS performs storage, deployment and execution of workflows ... In
accordance with the service-oriented approach the WMS deploys each saved
workflow as a new service. The subsequent workflow execution is performed
by sending request to the new composite service through the unified REST
API." (paper §3.3)

Composite-service job representations carry a ``blocks`` field with the
live per-block states, which is what the editor polls to colour blocks;
each workflow instance (job) thus has a unique URI showing its current
state at any time.

When the federation is secured, the WMS invokes member services with its
own service certificate plus an ``X-On-Behalf-Of`` header naming the user
who called the composite service — the paper's proxy-list delegation.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

from repro.core.api import mount_service, unmount_service
from repro.core.errors import BadInputError, ServiceError
from repro.core.files import FileEntry, FileStore
from repro.core.jobs import Job, JobState, JobStore
from repro.http.app import RestApp
from repro.http.messages import HttpError, Request, Response
from repro.http.registry import TransportRegistry
from repro.http.server import RestServer
from repro.security.middleware import ON_BEHALF_HEADER
from repro.workflow.engine import (
    BlockState,
    WorkflowCancelled,
    WorkflowEngine,
    WorkflowExecutionError,
)
from repro.workflow.jsonio import parse_workflow, workflow_to_json
from repro.workflow.model import Workflow, WorkflowError


class CompositeService:
    """A saved workflow behaving as one computational web service."""

    def __init__(self, workflow: Workflow, engine: WorkflowEngine):
        workflow.validate()
        self.workflow = workflow
        self.engine = engine
        self.description = workflow.to_description()
        self.jobs = JobStore()
        self.files = FileStore()

    # ------------------------------------------------------ ServiceBackend

    def describe(self) -> dict[str, Any]:
        document = self.description.to_json()
        document["workflow"] = workflow_to_json(self.workflow)
        return document

    def submit(self, inputs: dict[str, Any], request: Request) -> Job:
        values = self.description.validate_inputs(inputs)
        job = Job(
            service=self.workflow.name,
            inputs=values,
            request_id=request.context.get("request_id"),
        )
        job.extra["blocks"] = {
            block_id: BlockState.PENDING.value for block_id in self.workflow.blocks
        }
        self.jobs.add(job)
        headers = self._delegation_headers(request)
        thread = threading.Thread(
            target=self._run, args=(job, values, headers), name=f"wf-{job.id}", daemon=True
        )
        thread.start()
        return job

    def get_job(self, job_id: str) -> Job:
        return self.jobs.get(job_id)

    def delete_job(self, job_id: str) -> None:
        job = self.jobs.get(job_id)
        if not job.state.terminal:
            job.mark_cancelled()
        self.jobs.remove(job_id)
        self.files.delete_job_files(job_id)

    def get_file(self, job_id: str, file_id: str) -> FileEntry:
        self.jobs.get(job_id)
        return self.files.get(file_id, job_id=job_id)

    # ----------------------------------------------------------- internals

    def _delegation_headers(self, request: Request) -> dict[str, str]:
        access = request.context.get("access")
        if access is not None and access.effective_id:
            return {ON_BEHALF_HEADER: access.effective_id}
        return {}

    def _run(self, job: Job, values: dict[str, Any], headers: dict[str, str]) -> None:
        try:
            job.mark_running()
        except ServiceError:
            return  # cancelled before it started

        def observer(block_id: str, state: BlockState, error: str) -> None:
            job.extra["blocks"][block_id] = state.value

        try:
            outputs = self.engine.execute(
                self.workflow,
                values,
                observer=observer,
                cancel_event=job.cancel_event,
                headers=headers,
            )
        except WorkflowCancelled:
            return  # the job is already CANCELLED
        except (WorkflowExecutionError, WorkflowError) as exc:
            job.try_finish(lambda: (JobState.FAILED, str(exc)))
            return
        except Exception as exc:  # noqa: BLE001 - engine bugs must surface
            job.try_finish(lambda: (JobState.FAILED, f"internal engine error: {exc}"))
            return
        job.try_finish(lambda: (JobState.DONE, outputs))


class WorkflowManagementService:
    """Stores workflows and publishes each as a composite service."""

    def __init__(
        self,
        name: str = "wms",
        registry: TransportRegistry | None = None,
        max_parallel: int = 8,
        credentials: Mapping[str, str] | None = None,
    ):
        self.name = name
        self.registry = registry or TransportRegistry()
        self.app = RestApp(name)
        #: Headers the WMS itself presents when calling member services
        #: (its service certificate when the federation is secured).
        self.credentials = dict(credentials or {})
        self.engine = WorkflowEngine(
            self.registry, max_parallel=max_parallel, headers=self.credentials
        )
        self._composites: dict[str, CompositeService] = {}
        self._lock = threading.Lock()
        self._server: RestServer | None = None
        self.local_base = self.registry.bind_local(name, self.app)
        self.app.route("GET", "/workflows", self._list)
        self.app.route("POST", "/workflows", self._create)
        self.app.route("GET", "/workflows/{workflow_id}", self._get)
        self.app.route("PUT", "/workflows/{workflow_id}", self._replace)
        self.app.route("DELETE", "/workflows/{workflow_id}", self._delete)

    # ----------------------------------------------------------- publishing

    @property
    def base_uri(self) -> str:
        return self._server.base_url if self._server is not None else self.local_base

    def service_uri(self, workflow_name: str) -> str:
        return f"{self.base_uri}/services/{workflow_name}"

    def workflow_uri(self, workflow_name: str) -> str:
        return f"{self.base_uri}/workflows/{workflow_name}"

    def serve(self, host: str = "127.0.0.1", port: int = 0) -> RestServer:
        if self._server is not None:
            raise RuntimeError("WMS is already serving")
        self._server = RestServer(self.app, host=host, port=port).start()
        return self._server

    def shutdown(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None
        self.registry.unbind_local(self.name)

    # ------------------------------------------------------------- storage

    def deploy_workflow(self, workflow: Workflow) -> CompositeService:
        """Save ``workflow`` and publish it as a composite service."""
        composite = CompositeService(workflow, self.engine)
        with self._lock:
            if workflow.name in self._composites:
                raise WorkflowError(f"workflow {workflow.name!r} already deployed")
            self._composites[workflow.name] = composite
        mount_service(
            self.app,
            f"/services/{workflow.name}",
            composite,
            base_uri=lambda name=workflow.name: self.service_uri(name),
        )

        def instance_page(request: Request, job_id: str) -> Response:
            """The paper's instance URI: "open the current state of the
            instance in the editor at any time" — a static editor render
            coloured with the live block states."""
            from repro.workflow.editor import render_workflow_page

            try:
                job = composite.get_job(job_id)
            except ServiceError as exc:
                raise HttpError(404, exc.message) from exc
            states = job.extra.get("blocks", {})
            return Response.html(render_workflow_page(composite.workflow, states))

        self.app.route("GET", f"/services/{workflow.name}/jobs/{{job_id}}/ui", instance_page)
        return composite

    def undeploy_workflow(self, name: str) -> None:
        with self._lock:
            composite = self._composites.pop(name, None)
        if composite is None:
            raise WorkflowError(f"no workflow {name!r} deployed")
        unmount_service(self.app, f"/services/{name}")

    def replace_workflow(self, workflow: Workflow) -> CompositeService:
        with self._lock:
            exists = workflow.name in self._composites
        if exists:
            self.undeploy_workflow(workflow.name)
        return self.deploy_workflow(workflow)

    def composite(self, name: str) -> CompositeService:
        with self._lock:
            if name not in self._composites:
                raise KeyError(name)
            return self._composites[name]

    @property
    def workflows(self) -> list[str]:
        with self._lock:
            return sorted(self._composites)

    # ------------------------------------------------------------- handlers

    def _entry(self, name: str) -> dict[str, Any]:
        return {
            "id": name,
            "uri": self.workflow_uri(name),
            "service_uri": self.service_uri(name),
        }

    def _list(self, request: Request) -> Response:
        return Response.json([self._entry(name) for name in self.workflows])

    def _create(self, request: Request) -> Response:
        try:
            workflow = parse_workflow(request.json, self.registry)
            self.deploy_workflow(workflow)
        except WorkflowError as exc:
            raise HttpError(422, str(exc)) from exc
        except BadInputError as exc:
            raise HttpError(422, exc.message, details=exc.details) from exc
        return Response.created(self.workflow_uri(workflow.name), self._entry(workflow.name))

    def _get(self, request: Request, workflow_id: str) -> Response:
        try:
            composite = self.composite(workflow_id)
        except KeyError as exc:
            raise HttpError(404, f"no workflow {workflow_id!r}") from exc
        document = workflow_to_json(composite.workflow)
        document.update(self._entry(workflow_id))
        return Response.json(document)

    def _replace(self, request: Request, workflow_id: str) -> Response:
        try:
            workflow = parse_workflow(request.json, self.registry)
        except WorkflowError as exc:
            raise HttpError(422, str(exc)) from exc
        if workflow.name != workflow_id:
            raise HttpError(409, f"document names {workflow.name!r}, path names {workflow_id!r}")
        self.replace_workflow(workflow)
        return Response.json(self._entry(workflow_id))

    def _delete(self, request: Request, workflow_id: str) -> Response:
        try:
            self.undeploy_workflow(workflow_id)
        except WorkflowError as exc:
            raise HttpError(404, str(exc)) from exc
        return Response.no_content()
