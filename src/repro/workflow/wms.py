"""The workflow management service (WMS).

"The WMS performs storage, deployment and execution of workflows ... In
accordance with the service-oriented approach the WMS deploys each saved
workflow as a new service. The subsequent workflow execution is performed
by sending request to the new composite service through the unified REST
API." (paper §3.3)

Composite-service job representations carry a ``blocks`` field with the
live per-block states, which is what the editor polls to colour blocks;
each workflow instance (job) thus has a unique URI showing its current
state at any time.

When the federation is secured, the WMS invokes member services with its
own service certificate plus an ``X-On-Behalf-Of`` header naming the user
who called the composite service — the paper's proxy-list delegation.
"""

from __future__ import annotations

import json
import logging
import threading
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.api import SubmitLedger, mount_service, unmount_service
from repro.core.errors import BadInputError, ServiceError
from repro.core.files import FileEntry, FileStore
from repro.core.jobs import Job, JobState, JobStore, job_document, restore_job
from repro.durability.journal import Journal
from repro.http.app import RestApp
from repro.http.client import IDEMPOTENCY_KEY_HEADER
from repro.http.messages import HttpError, Request, Response
from repro.http.registry import TransportRegistry
from repro.http.server import RestServer
from repro.observability import ObservabilityMiddleware, instrument_wms, mount_metrics
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.trace import (
    SpanContext,
    Tracer,
    activate_span_context,
    current_span_context,
    span,
)
from repro.security.middleware import ON_BEHALF_HEADER
from repro.workflow.engine import (
    BlockState,
    WorkflowCancelled,
    WorkflowEngine,
    WorkflowExecutionError,
)
from repro.workflow.jsonio import parse_workflow, workflow_to_json
from repro.workflow.model import Workflow, WorkflowError

logger = logging.getLogger(__name__)

#: The error recorded on runs a WMS restart cut short with no way to resume.
RUN_INTERRUPTED_ERROR = "interrupted: the WMS stopped before the workflow run finished"


def apply_run_event(
    workflows: dict[str, dict[str, Any]],
    runs: dict[str, dict[str, dict[str, Any]]],
    record: dict[str, Any],
) -> None:
    """Fold one WMS journal record into the recovery tables."""
    kind = record.get("type")
    if kind == "workflow":
        name, event = record.get("name"), record.get("event")
        if not name or not event:
            return
        if event == "deployed":
            workflows[name] = dict(record.get("document") or {})
        elif event == "undeployed":
            workflows.pop(name, None)
            runs.pop(name, None)
        return
    if kind != "run":
        return
    name, run_id, event = record.get("workflow"), record.get("id"), record.get("event")
    if not name or not run_id or not event:
        return
    table = runs.setdefault(name, {})
    if event == "deleted":
        table.pop(run_id, None)
        return
    document = table.setdefault(run_id, {"id": run_id, "state": JobState.WAITING.value})
    if event == "created":
        for field in ("inputs", "created", "request_id", "key", "headers"):
            if field in record:
                document[field] = record[field]
        # a resumed run re-records its creation: it is in flight again,
        # but its checkpoints stay valid (the resume started from them)
        document["state"] = JobState.WAITING.value
        document.pop("results", None)
        document.pop("error", None)
    elif event == "block":
        block = record.get("block")
        if block:
            document.setdefault("checkpoints", {})[block] = record.get("outputs") or {}
    elif event in ("done", "failed", "cancelled"):
        document["state"] = {
            "done": JobState.DONE.value,
            "failed": JobState.FAILED.value,
            "cancelled": JobState.CANCELLED.value,
        }[event]
        for field in ("results", "error", "finished", "blocks"):
            if field in record:
                document[field] = record[field]
        document.pop("checkpoints", None)


class CompositeService:
    """A saved workflow behaving as one computational web service."""

    def __init__(
        self,
        workflow: Workflow,
        engine: WorkflowEngine,
        record: "Callable[[dict[str, Any]], None] | None" = None,
        tracer: "Tracer | None" = None,
    ):
        workflow.validate()
        self.workflow = workflow
        self.engine = engine
        self.tracer = tracer
        self.description = workflow.to_description()
        self.jobs = JobStore()
        self.files = FileStore()
        #: Journal sink supplied by a durable WMS; no-op when volatile.
        self._record_sink = record or (lambda document: None)
        #: Per-run completed-block outputs, kept while the run is live so a
        #: snapshot (compaction) can carry them for resume.
        self._checkpoints: dict[str, dict[str, dict[str, Any]]] = {}
        self._checkpoint_lock = threading.Lock()

    # ------------------------------------------------------ ServiceBackend

    def describe(self) -> dict[str, Any]:
        document = self.description.to_json()
        document["workflow"] = workflow_to_json(self.workflow)
        return document

    def submit(self, inputs: dict[str, Any], request: Request) -> Job:
        values = self.description.validate_inputs(inputs)
        job = Job(
            service=self.workflow.name,
            inputs=values,
            request_id=request.context.get("request_id"),
        )
        job.idempotency_key = request.headers.get(IDEMPOTENCY_KEY_HEADER)
        # the run thread's spans attach under the creating request's span
        trace_context = current_span_context()
        if trace_context is not None and trace_context.tracer is not None:
            job.trace_id = trace_context.trace_id
            job.trace_parent = trace_context.span_id
        job.extra["blocks"] = {
            block_id: BlockState.PENDING.value for block_id in self.workflow.blocks
        }
        self.jobs.add(job)
        headers = self._delegation_headers(request)
        self._adopt(job, headers)
        self._start(job, values, headers)
        return job

    def get_job(self, job_id: str) -> Job:
        return self.jobs.get(job_id)

    def delete_job(self, job_id: str) -> None:
        job = self.jobs.get(job_id)
        if not job.state.terminal:
            job.mark_cancelled()
        self.jobs.remove(job_id)
        self.files.delete_job_files(job_id)
        with self._checkpoint_lock:
            self._checkpoints.pop(job_id, None)
        self._record("deleted", job)

    def get_file(self, job_id: str, file_id: str) -> FileEntry:
        self.jobs.get(job_id)
        return self.files.get(file_id, job_id=job_id)

    # ------------------------------------------------------------ recovery

    def restore_run(self, document: dict[str, Any]) -> Job:
        """Rebuild one run from its recovered document and, for a run that
        was in flight at crash time, resume it from its checkpointed
        frontier: completed blocks keep their recorded outputs, only the
        unfinished remainder of the DAG executes again."""
        states = dict(document.get("blocks") or {})
        checkpoints = dict(document.get("checkpoints") or {})
        job = restore_job(
            self.workflow.name,
            {**document, "extra": {**(document.get("extra") or {}), "blocks": states}},
        )
        if not job.state.terminal:
            job.extra["blocks"] = {
                block_id: (
                    BlockState.DONE.value
                    if block_id in checkpoints
                    else BlockState.PENDING.value
                )
                for block_id in self.workflow.blocks
            }
        self.jobs.add(job)
        if not job.state.terminal:
            headers = dict(document.get("headers") or {})
            self._adopt(job, headers)
            with self._checkpoint_lock:
                self._checkpoints[job.id] = dict(checkpoints)
            self._start(job, dict(job.inputs), headers, resume_from=checkpoints)
        return job

    # ----------------------------------------------------------- internals

    def _delegation_headers(self, request: Request) -> dict[str, str]:
        access = request.context.get("access")
        if access is not None and access.effective_id:
            return {ON_BEHALF_HEADER: access.effective_id}
        return {}

    def _record(self, event: str, job: Job, **fields: Any) -> None:
        document: dict[str, Any] = {
            "type": "run",
            "event": event,
            "workflow": self.workflow.name,
            "id": job.id,
            **fields,
        }
        self._record_sink(document)

    def _adopt(self, job: Job, headers: dict[str, str]) -> None:
        """Journal the run's creation and subscribe its terminal record."""
        record: dict[str, Any] = {"inputs": job.inputs, "created": job.created}
        if job.request_id is not None:
            record["request_id"] = job.request_id
        if job.idempotency_key is not None:
            record["key"] = job.idempotency_key
        if headers:
            record["headers"] = dict(headers)
        self._record("created", job, **record)
        job.subscribe(self._on_transition)

    def _on_transition(self, job: Job, state: JobState) -> None:
        if not state.terminal:
            return
        with self._checkpoint_lock:  # a finished run needs no resume data
            self._checkpoints.pop(job.id, None)
        fields: dict[str, Any] = {
            "finished": job.finished,
            "blocks": dict(job.extra.get("blocks") or {}),
        }
        if state is JobState.DONE:
            self._record("done", job, results=job.results, **fields)
        elif state is JobState.FAILED:
            self._record("failed", job, error=job.error, **fields)
        else:
            self._record("cancelled", job, **fields)

    def _start(
        self,
        job: Job,
        values: dict[str, Any],
        headers: dict[str, str],
        resume_from: dict[str, dict[str, Any]] | None = None,
    ) -> None:
        thread = threading.Thread(
            target=self._run,
            args=(job, values, headers, resume_from),
            name=f"wf-{job.id}",
            daemon=True,
        )
        thread.start()

    def run_document(self, job: Job) -> dict[str, Any]:
        """The snapshot form of one run (job state plus resume data)."""
        document = job_document(job)
        extra = dict(document.pop("extra", {}))
        document["blocks"] = extra.pop("blocks", {})
        if extra:
            document["extra"] = extra
        with self._checkpoint_lock:
            checkpoints = dict(self._checkpoints.get(job.id) or {})
        if checkpoints:
            document["checkpoints"] = checkpoints
        return document

    def _run(
        self,
        job: Job,
        values: dict[str, Any],
        headers: dict[str, str],
        resume_from: dict[str, dict[str, Any]] | None = None,
    ) -> None:
        try:
            job.mark_running()
        except ServiceError:
            return  # cancelled before it started

        def observer(block_id: str, state: BlockState, error: str) -> None:
            job.extra["blocks"][block_id] = state.value

        def checkpoint(block_id: str, outputs: dict[str, Any]) -> None:
            json.dumps(outputs)  # unserializable outputs cannot be resumed
            with self._checkpoint_lock:
                self._checkpoints.setdefault(job.id, {})[block_id] = outputs
            self._record("block", job, block=block_id, outputs=outputs)

        # runs execute on a dedicated thread, which never inherits the
        # submitting request's contextvars: re-establish the trace position
        # captured on the job, then open the run's own span. `follows`, not
        # `child` — the submit answered 201 long before the run finishes.
        trace_context = None
        if self.tracer is not None and job.trace_id is not None:
            trace_context = SpanContext(self.tracer, job.trace_id, job.trace_parent)
        try:
            with activate_span_context(trace_context):
                with span(
                    "workflow.run",
                    labels={"workflow": self.workflow.name, "job": job.id},
                    link="follows",
                ):
                    outputs = self.engine.execute(
                        self.workflow,
                        values,
                        observer=observer,
                        cancel_event=job.cancel_event,
                        headers=headers,
                        resume_from=resume_from,
                        on_block_done=checkpoint,
                    )
        except WorkflowCancelled:
            return  # the job is already CANCELLED
        except (WorkflowExecutionError, WorkflowError) as exc:
            job.try_finish(lambda: (JobState.FAILED, str(exc)))
            return
        except Exception as exc:  # noqa: BLE001 - engine bugs must surface
            job.try_finish(lambda: (JobState.FAILED, f"internal engine error: {exc}"))
            return
        job.try_finish(lambda: (JobState.DONE, outputs))


class WorkflowManagementService:
    """Stores workflows and publishes each as a composite service."""

    def __init__(
        self,
        name: str = "wms",
        registry: TransportRegistry | None = None,
        max_parallel: int = 8,
        credentials: Mapping[str, str] | None = None,
        journal_dir: "str | Path | None" = None,
        journal_fsync: str = "batch",
        observability: bool = True,
    ):
        self.name = name
        self.registry = registry or TransportRegistry()
        self.app = RestApp(name)
        self.metrics: "MetricsRegistry | None" = None
        self.tracer: "Tracer | None" = None
        if observability:
            self.metrics = MetricsRegistry(name)
            self.tracer = Tracer(name)
            self.app.add_middleware(ObservabilityMiddleware(self.metrics, self.tracer))
            mount_metrics(self.app, self.metrics)
        #: Headers the WMS itself presents when calling member services
        #: (its service certificate when the federation is secured).
        self.credentials = dict(credentials or {})
        self.engine = WorkflowEngine(
            self.registry, max_parallel=max_parallel, headers=self.credentials
        )
        self._composites: dict[str, CompositeService] = {}
        self._lock = threading.Lock()
        self._server: RestServer | None = None
        self.journal: Journal | None = None
        #: Corruption tolerated while replaying the journal, if any.
        self.recovery_warnings: list[str] = []
        self._recovered_runs: dict[str, dict[str, dict[str, Any]]] = {}
        recovered_workflows: dict[str, dict[str, Any]] = {}
        if journal_dir is not None:
            self.journal = Journal(Path(journal_dir), fsync=journal_fsync)
            recovered_workflows = self._replay()
        self.local_base = self.registry.bind_local(name, self.app)
        self.app.route("GET", "/workflows", self._list)
        self.app.route("POST", "/workflows", self._create)
        self.app.route("GET", "/workflows/{workflow_id}", self._get)
        self.app.route("PUT", "/workflows/{workflow_id}", self._replace)
        self.app.route("DELETE", "/workflows/{workflow_id}", self._delete)
        # redeploy journaled workflows: deploy_workflow consumes each
        # workflow's recovered runs, restoring or resuming them
        for workflow_name, document in recovered_workflows.items():
            try:
                self.deploy_workflow(parse_workflow(document, self.registry))
            except (WorkflowError, BadInputError) as exc:
                self.recovery_warnings.append(
                    f"could not redeploy workflow {workflow_name!r}: {exc}"
                )
                logger.warning("skipping unrecoverable workflow %r: %s", workflow_name, exc)
        if self.metrics is not None:
            instrument_wms(self)

    # ----------------------------------------------------------- publishing

    @property
    def base_uri(self) -> str:
        return self._server.base_url if self._server is not None else self.local_base

    def service_uri(self, workflow_name: str) -> str:
        return f"{self.base_uri}/services/{workflow_name}"

    def workflow_uri(self, workflow_name: str) -> str:
        return f"{self.base_uri}/workflows/{workflow_name}"

    def serve(self, host: str = "127.0.0.1", port: int = 0, **server_options: object) -> RestServer:
        if self._server is not None:
            raise RuntimeError("WMS is already serving")
        self._server = RestServer(self.app, host=host, port=port, **server_options).start()
        return self._server

    def shutdown(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None
        self.registry.unbind_local(self.name)
        if self.journal is not None:
            self.journal.sync()
            self.journal.close()

    # ----------------------------------------------------------- durability

    def crash(self) -> None:
        """Simulate a cold stop: the journal closes first, so nothing the
        dying run threads do afterwards is persisted. Rebuild by
        constructing a fresh WMS over the same ``journal_dir``."""
        if self.journal is not None:
            self.journal.close()
        if self._server is not None:
            self._server.stop()
            self._server = None
        self.registry.unbind_local(self.name)

    def compact(self) -> None:
        """Snapshot deployed workflows and their runs (with resume
        checkpoints) into the journal; drop the segments it covers."""
        if self.journal is None:
            return
        with self._lock:
            composites = dict(self._composites)
        state: dict[str, Any] = {
            "workflows": {
                name: workflow_to_json(composite.workflow)
                for name, composite in composites.items()
            },
            "runs": {
                name: {job.id: composite.run_document(job) for job in composite.jobs.list()}
                for name, composite in composites.items()
            },
        }
        self.journal.snapshot(state)

    def _replay(self) -> dict[str, dict[str, Any]]:
        recovery = self.journal.recover()
        self.recovery_warnings = list(recovery.warnings)
        snapshot = recovery.snapshot or {}
        workflows = {
            name: dict(document)
            for name, document in (snapshot.get("workflows") or {}).items()
        }
        runs = {
            name: {run_id: dict(document) for run_id, document in table.items()}
            for name, table in (snapshot.get("runs") or {}).items()
        }
        for record in recovery.records:
            apply_run_event(workflows, runs, record)
        self._recovered_runs = runs
        if workflows or runs:
            total = sum(len(table) for table in runs.values())
            logger.info("replayed WMS journal: %d workflows, %d runs", len(workflows), total)
        return workflows

    def _journal_append(self, record: dict[str, Any]) -> None:
        """Journal one record; persistence failures never break a run."""
        if self.journal is None:
            return
        try:
            self.journal.append(record)
        except Exception as error:  # noqa: BLE001 - journaling is best-effort
            logger.error("WMS journal append failed for %s: %s", record.get("id"), error)

    # ------------------------------------------------------------- storage

    def deploy_workflow(self, workflow: Workflow) -> CompositeService:
        """Save ``workflow`` and publish it as a composite service."""
        composite = CompositeService(
            workflow, self.engine, record=self._journal_append, tracer=self.tracer
        )
        with self._lock:
            if workflow.name in self._composites:
                raise WorkflowError(f"workflow {workflow.name!r} already deployed")
            self._composites[workflow.name] = composite
        self._journal_append(
            {
                "type": "workflow",
                "event": "deployed",
                "name": workflow.name,
                "document": workflow_to_json(workflow),
            }
        )
        # restore this workflow's recovered runs before the routes exist:
        # terminal runs keep their results, in-flight runs resume from
        # their checkpointed frontier, and recovered Idempotency-Key
        # bindings seed the submit ledger
        ledger = SubmitLedger()
        for document in self._recovered_runs.pop(workflow.name, {}).values():
            job = composite.restore_run(document)
            if job.idempotency_key:
                ledger.store(job.idempotency_key, job.id)
        mount_service(
            self.app,
            f"/services/{workflow.name}",
            composite,
            base_uri=lambda name=workflow.name: self.service_uri(name),
            ledger=ledger,
            tracer=self.tracer,
        )

        def instance_page(request: Request, job_id: str) -> Response:
            """The paper's instance URI: "open the current state of the
            instance in the editor at any time" — a static editor render
            coloured with the live block states."""
            from repro.workflow.editor import render_workflow_page

            try:
                job = composite.get_job(job_id)
            except ServiceError as exc:
                raise HttpError(404, exc.message) from exc
            states = job.extra.get("blocks", {})
            return Response.html(render_workflow_page(composite.workflow, states))

        self.app.route("GET", f"/services/{workflow.name}/jobs/{{job_id}}/ui", instance_page)
        return composite

    def undeploy_workflow(self, name: str) -> None:
        with self._lock:
            composite = self._composites.pop(name, None)
        if composite is None:
            raise WorkflowError(f"no workflow {name!r} deployed")
        unmount_service(self.app, f"/services/{name}")
        self._recovered_runs.pop(name, None)
        self._journal_append({"type": "workflow", "event": "undeployed", "name": name})

    def replace_workflow(self, workflow: Workflow) -> CompositeService:
        with self._lock:
            exists = workflow.name in self._composites
        if exists:
            self.undeploy_workflow(workflow.name)
        return self.deploy_workflow(workflow)

    def composite(self, name: str) -> CompositeService:
        with self._lock:
            if name not in self._composites:
                raise KeyError(name)
            return self._composites[name]

    @property
    def workflows(self) -> list[str]:
        with self._lock:
            return sorted(self._composites)

    # ------------------------------------------------------------- handlers

    def _entry(self, name: str) -> dict[str, Any]:
        return {
            "id": name,
            "uri": self.workflow_uri(name),
            "service_uri": self.service_uri(name),
        }

    def _list(self, request: Request) -> Response:
        return Response.json([self._entry(name) for name in self.workflows])

    def _create(self, request: Request) -> Response:
        try:
            workflow = parse_workflow(request.json, self.registry)
            self.deploy_workflow(workflow)
        except WorkflowError as exc:
            raise HttpError(422, str(exc)) from exc
        except BadInputError as exc:
            raise HttpError(422, exc.message, details=exc.details) from exc
        return Response.created(self.workflow_uri(workflow.name), self._entry(workflow.name))

    def _get(self, request: Request, workflow_id: str) -> Response:
        try:
            composite = self.composite(workflow_id)
        except KeyError as exc:
            raise HttpError(404, f"no workflow {workflow_id!r}") from exc
        document = workflow_to_json(composite.workflow)
        document.update(self._entry(workflow_id))
        return Response.json(document)

    def _replace(self, request: Request, workflow_id: str) -> Response:
        try:
            workflow = parse_workflow(request.json, self.registry)
        except WorkflowError as exc:
            raise HttpError(422, str(exc)) from exc
        if workflow.name != workflow_id:
            raise HttpError(409, f"document names {workflow.name!r}, path names {workflow_id!r}")
        self.replace_workflow(workflow)
        return Response.json(self._entry(workflow_id))

    def _delete(self, request: Request, workflow_id: str) -> Response:
        try:
            self.undeploy_workflow(workflow_id)
        except WorkflowError as exc:
            raise HttpError(404, str(exc)) from exc
        return Response.no_content()
