"""The workflow editor's server-rendered artefacts.

The paper's editor is a browser application (Fig. 2, "inspired by Yahoo!
Pipes"). Everything it *does* — introspecting services, type-checked
connections, run-and-colour — lives in :mod:`repro.workflow.model` and
:mod:`repro.workflow.engine`; this module renders the editor's data model
as HTML so a workflow (and a running instance's block states) can be
inspected in a browser.
"""

from __future__ import annotations

import html
import json
from typing import Mapping

from repro.workflow.jsonio import workflow_to_json
from repro.workflow.model import Workflow

#: Block-state colours used by the editor's canvas.
STATE_COLOURS = {
    "PENDING": "#d0d0d0",
    "RUNNING": "#f5c542",
    "DONE": "#6fbf73",
    "FAILED": "#e06666",
    "SKIPPED": "#b0a8c9",
}


def editor_model(workflow: Workflow, states: Mapping[str, str] | None = None) -> dict:
    """The JSON model a canvas renderer needs: blocks with port lists,
    edges, and current block states/colours."""
    document = workflow_to_json(workflow)
    states = dict(states or {})
    for block_document in document["blocks"]:
        block = workflow.blocks[block_document["id"]]
        block_document["ports"] = {
            "in": [{"name": p.name, "type": p.type.value} for p in block.inputs],
            "out": [{"name": p.name, "type": p.type.value} for p in block.outputs],
        }
        state = states.get(block.id, "PENDING")
        block_document["state"] = state
        block_document["colour"] = STATE_COLOURS.get(state, "#ffffff")
    return document


def render_workflow_page(workflow: Workflow, states: Mapping[str, str] | None = None) -> str:
    """A static HTML view of a workflow (or a running instance)."""
    model = editor_model(workflow, states)
    rows = []
    for block in model["blocks"]:
        ports_in = ", ".join(p["name"] for p in block["ports"]["in"]) or "—"
        ports_out = ", ".join(p["name"] for p in block["ports"]["out"]) or "—"
        rows.append(
            f"<tr style='background:{block['colour']}'>"
            f"<td>{html.escape(block['id'])}</td><td>{html.escape(block['kind'])}</td>"
            f"<td>{html.escape(ports_in)}</td><td>{html.escape(ports_out)}</td>"
            f"<td>{html.escape(block['state'])}</td></tr>"
        )
    edges = "".join(f"<li>{html.escape(edge)}</li>" for edge in model["edges"])
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(workflow.name)}</title></head><body>"
        f"<h1>Workflow {html.escape(workflow.title or workflow.name)}</h1>"
        "<table border='1' cellpadding='4'><tr>"
        "<th>block</th><th>kind</th><th>inputs</th><th>outputs</th><th>state</th></tr>"
        + "".join(rows)
        + f"</table><h2>Edges</h2><ul>{edges}</ul>"
        f"<script type='application/json' id='model'>{json.dumps(model)}</script>"
        "</body></html>"
    )
