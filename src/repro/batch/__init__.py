"""A TORQUE-like cluster resource manager (substrate).

The paper's Cluster adapter translates service requests into batch jobs
"submitted to computing cluster via TORQUE resource manager". No cluster is
available here, so this subpackage provides a faithful laptop-scale
stand-in: named compute nodes with slot counts, a FIFO scheduler with slot
accounting and walltime enforcement, and the classic ``qsub``/``qstat``/
``qdel`` control surface. Jobs really execute (shell commands in scratch
directories, or in-process callables), so services backed by the cluster
do real work.
"""

from repro.batch.cluster import Cluster, ComputeNode
from repro.batch.job import BatchJob, BatchJobState, JobResources

__all__ = ["BatchJob", "BatchJobState", "Cluster", "ComputeNode", "JobResources"]
