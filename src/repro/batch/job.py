"""Batch job model for the TORQUE-like resource manager."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable


class BatchJobState(str, Enum):
    """Job lifecycle, with the TORQUE single-letter codes users know."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def torque_code(self) -> str:
        """The ``qstat`` status letter (terminal states all show ``C``)."""
        return {"QUEUED": "Q", "RUNNING": "R"}.get(self.value, "C")

    @property
    def terminal(self) -> bool:
        return self in (BatchJobState.COMPLETED, BatchJobState.FAILED, BatchJobState.CANCELLED)


@dataclass(frozen=True)
class JobResources:
    """The ``-l`` resource request: nodes, processors per node, walltime."""

    nodes: int = 1
    ppn: int = 1
    walltime: float = 3600.0

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.ppn < 1:
            raise ValueError("nodes and ppn must be >= 1")
        if self.walltime <= 0:
            raise ValueError("walltime must be positive")

    @property
    def slots(self) -> int:
        return self.nodes * self.ppn


@dataclass(eq=False)
class BatchJob:
    """One batch job: a shell command or an in-process callable.

    Exactly one of ``command`` (argv list, run in a scratch directory) or
    ``function`` (called with the job) must be given. Results land in
    ``stdout``/``stderr``/``exit_status``/``result``.
    """

    name: str = "job"
    command: list[str] | None = None
    function: Callable[["BatchJob"], Any] | None = None
    resources: JobResources = field(default_factory=JobResources)
    #: Text piped to the command's stdin.
    stdin: str = ""
    #: Files written into the scratch directory before launch: name → bytes.
    stage_in: dict[str, bytes] = field(default_factory=dict)
    #: Scratch-relative names to collect after the run.
    stage_out: list[str] = field(default_factory=list)
    env: dict[str, str] = field(default_factory=dict)
    #: Billing tenant, when the submitting layer runs under tenancy: the
    #: cluster charges ``(finished - started) × nodes × ppn`` CPU-seconds
    #: to this account on the terminal transition.
    tenant: str | None = None

    # -- filled in by the cluster --
    id: str = ""
    state: BatchJobState = BatchJobState.QUEUED
    node_names: list[str] = field(default_factory=list)
    submitted: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    exit_status: int | None = None
    stdout: str = ""
    stderr: str = ""
    #: Collected ``stage_out`` files: name → bytes.
    output_files: dict[str, bytes] = field(default_factory=dict)
    #: Return value when ``function`` was used.
    result: Any = None
    #: Why the job failed (walltime, exception text, nonzero exit).
    failure_reason: str = ""
    _done: threading.Event = field(default_factory=threading.Event, repr=False)
    _cancel: threading.Event = field(default_factory=threading.Event, repr=False)

    def __post_init__(self) -> None:
        if (self.command is None) == (self.function is None):
            raise ValueError("exactly one of command/function must be set")

    @property
    def cancelled_requested(self) -> bool:
        """Cooperative cancellation flag for ``function`` payloads."""
        return self._cancel.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)
