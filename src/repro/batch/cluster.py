"""The cluster: nodes, slot-accounting FIFO scheduler, qsub/qstat/qdel.

Scheduling model (deliberately the classic TORQUE one):

- every node has a fixed number of slots (processors);
- a job asking for ``nodes × ppn`` needs that many nodes each with ``ppn``
  free slots, simultaneously;
- the queue is FIFO: the head job blocks smaller jobs behind it (no
  backfill) — matching default TORQUE behaviour and keeping job start
  order predictable for tests;
- walltime is enforced: commands are killed, callables are flagged through
  the job's cooperative cancel event and reported as walltime failures.

Jobs execute for real — shell commands in throwaway scratch directories,
callables on a worker thread — so cluster-backed services do actual work.
"""

from __future__ import annotations

import itertools
import os
import shutil
import subprocess
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.batch.job import BatchJob, BatchJobState
from repro.runtime.pool import ExecutorPool


@dataclass
class ComputeNode:
    """One node: a name and a slot count."""

    name: str
    slots: int = 4

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("a node needs at least one slot")


class ClusterError(Exception):
    """Submission or control-command failure (unknown job, oversized request)."""


class Cluster:
    """A TORQUE-like resource manager over simulated nodes.

    The public surface mirrors the command-line tools: :meth:`qsub`,
    :meth:`qstat`, :meth:`qdel`, plus :meth:`wait` and lifecycle control.
    """

    def __init__(self, nodes: list[ComputeNode] | None = None, name: str = "cluster"):
        self.name = name
        self.nodes = nodes or [ComputeNode("node01", slots=4)]
        seen: set[str] = set()
        for node in self.nodes:
            if node.name in seen:
                raise ValueError(f"duplicate node name {node.name!r}")
            seen.add(node.name)
        self._free = {node.name: node.slots for node in self.nodes}
        self._dead: set[str] = set()
        self._released: set[str] = set()
        # callable payloads run on a shared worker pool; the scheduler can
        # never start more than total_slots jobs at once (every job holds at
        # least one slot), so this size guarantees a free worker per job
        self._fn_pool = ExecutorPool(workers=self.total_slots, name=f"{name}-fn")
        self._queue: list[BatchJob] = []
        self._jobs: dict[str, BatchJob] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._shutdown = False
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name=f"{name}-sched", daemon=True
        )
        self._scheduler.start()

    # ------------------------------------------------------------- control

    def qsub(self, job: BatchJob) -> str:
        """Submit a job; returns its id (``<n>.<cluster>`` like TORQUE)."""
        if job.resources.ppn > max(node.slots for node in self.nodes):
            raise ClusterError(
                f"job {job.name!r} asks ppn={job.resources.ppn}, "
                f"larger than any node on {self.name}"
            )
        if job.resources.nodes > len(self.nodes):
            raise ClusterError(
                f"job {job.name!r} asks {job.resources.nodes} nodes, "
                f"cluster {self.name} has {len(self.nodes)}"
            )
        with self._lock:
            if self._shutdown:
                raise ClusterError(f"cluster {self.name} is shut down")
            job.id = f"{next(self._ids)}.{self.name}"
            job.state = BatchJobState.QUEUED
            self._jobs[job.id] = job
            self._queue.append(job)
            self._wake.notify_all()
        return job.id

    def qstat(self, job_id: str) -> dict[str, object]:
        """Status record for one job (raises for unknown ids, like qstat)."""
        job = self._get(job_id)
        return {
            "id": job.id,
            "name": job.name,
            "state": job.state.torque_code,
            "detail": job.state.value,
            "exit_status": job.exit_status,
            "nodes": list(job.node_names),
        }

    def qdel(self, job_id: str) -> None:
        """Cancel a queued or running job."""
        job = self._get(job_id)
        with self._lock:
            if job.state is BatchJobState.QUEUED:
                self._queue.remove(job)
                self._finish(job, BatchJobState.CANCELLED, reason="deleted by qdel")
                return
        # running (or already terminal): signal cooperatively; the runner
        # notices and reports CANCELLED.
        job._cancel.set()

    def get_job(self, job_id: str) -> BatchJob:
        return self._get(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> BatchJob:
        job = self._get(job_id)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.state.value} after {timeout}s")
        return job

    def jobs(self) -> list[BatchJob]:
        with self._lock:
            return list(self._jobs.values())

    @property
    def total_slots(self) -> int:
        return sum(node.slots for node in self.nodes)

    @property
    def free_slots(self) -> int:
        with self._lock:
            return sum(self._free.values())

    # --------------------------------------------------------- node failure

    def fail_node(self, name: str) -> list[str]:
        """Take a node down: kill its running jobs, withdraw its slots.

        Returns the ids of the jobs that were signalled. The node stops
        taking allocations until :meth:`restore_node`; queued jobs simply
        wait for capacity elsewhere (or for the node to come back).
        """
        with self._lock:
            if name not in self._free:
                raise ClusterError(f"unknown node {name!r} on cluster {self.name}")
            if name in self._dead:
                return []
            self._dead.add(name)
            self._free[name] = 0
            victims = [
                job
                for job in self._jobs.values()
                if job.state is BatchJobState.RUNNING and name in job.node_names
            ]
        for job in victims:
            job._cancel.set()
        return [job.id for job in victims]

    def restore_node(self, name: str) -> None:
        """Bring a failed node back with its slot capacity restored.

        Slots still held by jobs that survived on other nodes of a
        multi-node allocation (and have not released yet) stay deducted,
        so the free-slot ledger remains conserved.
        """
        with self._lock:
            if name not in self._dead:
                return
            self._dead.discard(name)
            node = next(node for node in self.nodes if node.name == name)
            held = sum(
                job.resources.ppn
                for job in self._jobs.values()
                if name in job.node_names and job.id not in self._released
            )
            self._free[name] = max(0, node.slots - held)
            self._wake.notify_all()

    @property
    def dead_nodes(self) -> list[str]:
        with self._lock:
            return sorted(self._dead)

    def shutdown(self) -> None:
        """Stop scheduling; queued jobs are cancelled, running jobs signalled."""
        with self._lock:
            self._shutdown = True
            doomed = list(self._queue)
            self._queue.clear()
            for job in doomed:
                self._finish(job, BatchJobState.CANCELLED, reason="cluster shutdown")
            self._wake.notify_all()
        for job in self.jobs():
            if job.state is BatchJobState.RUNNING:
                job._cancel.set()
        self._fn_pool.shutdown(wait=False)

    # ----------------------------------------------------------- internals

    def _get(self, job_id: str) -> BatchJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ClusterError(f"unknown job id {job_id!r}")
        return job

    def _finish(self, job: BatchJob, state: BatchJobState, reason: str = "", exit_status: int | None = None) -> None:
        """Must hold no locks that the waiter needs; sets the done event."""
        job.state = state
        job.failure_reason = reason
        if exit_status is not None:
            job.exit_status = exit_status
        job.finished = time.time()
        job._done.set()

    def _try_allocate(self, job: BatchJob) -> list[str] | None:
        """Pick nodes for the job; returns node names or None (under lock)."""
        chosen: list[str] = []
        for node in self.nodes:
            if self._free[node.name] >= job.resources.ppn:
                chosen.append(node.name)
                if len(chosen) == job.resources.nodes:
                    for name in chosen:
                        self._free[name] -= job.resources.ppn
                    return chosen
        return None

    def _release(self, job: BatchJob) -> None:
        with self._lock:
            self._released.add(job.id)
            for name in job.node_names:
                # a dead node's slots were withdrawn wholesale on failure;
                # restore_node re-credits them, so don't double-count here
                if name not in self._dead:
                    self._free[name] += job.resources.ppn
            self._wake.notify_all()

    def _schedule_loop(self) -> None:
        while True:
            with self._lock:
                while not self._shutdown and not (self._queue and self._head_fits()):
                    self._wake.wait(timeout=0.5)
                    if self._shutdown:
                        break
                if self._shutdown:
                    return
                job = self._queue.pop(0)
                job.node_names = self._try_allocate(job) or []
            if not job.node_names:  # lost a race; requeue at the head
                with self._lock:
                    self._queue.insert(0, job)
                continue
            job.state = BatchJobState.RUNNING
            job.started = time.time()
            threading.Thread(
                target=self._run_job, args=(job,), name=f"{self.name}-{job.id}", daemon=True
            ).start()

    def _head_fits(self) -> bool:
        """Whether the queue head could be allocated right now (under lock)."""
        job = self._queue[0]
        available = sum(1 for node in self.nodes if self._free[node.name] >= job.resources.ppn)
        return available >= job.resources.nodes

    def _run_job(self, job: BatchJob) -> None:
        try:
            if job.command is not None:
                self._run_command(job)
            else:
                self._run_function(job)
        except Exception as exc:  # noqa: BLE001 - a job must never kill the runner
            self._finish(job, BatchJobState.FAILED, reason=f"runner error: {exc}")
        finally:
            self._release(job)

    def _run_command(self, job: BatchJob) -> None:
        scratch = Path(tempfile.mkdtemp(prefix=f"batch-{self.name}-"))
        try:
            for name, content in job.stage_in.items():
                target = scratch / name
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_bytes(content)
            process = subprocess.Popen(
                job.command,
                cwd=scratch,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=None if not job.env else {**os.environ, **job.env},
                text=True,
            )
            deadline = time.monotonic() + job.resources.walltime
            try:
                if job.stdin:
                    process.stdin.write(job.stdin)
                process.stdin.close()
                while process.poll() is None:
                    if job._cancel.is_set():
                        process.kill()
                        process.wait()
                        self._finish(job, BatchJobState.CANCELLED, reason="deleted by qdel")
                        return
                    if time.monotonic() > deadline:
                        process.kill()
                        process.wait()
                        self._finish(job, BatchJobState.FAILED, reason="walltime exceeded")
                        return
                    time.sleep(0.01)
            finally:
                job.stdout = process.stdout.read()
                job.stderr = process.stderr.read()
            for name in job.stage_out:
                path = scratch / name
                if path.exists():
                    job.output_files[name] = path.read_bytes()
            code = process.returncode
            if code == 0:
                self._finish(job, BatchJobState.COMPLETED, exit_status=0)
            else:
                self._finish(
                    job,
                    BatchJobState.FAILED,
                    reason=f"exit status {code}",
                    exit_status=code,
                )
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    def _run_function(self, job: BatchJob) -> None:
        deadline = time.monotonic() + job.resources.walltime
        handle = self._fn_pool.submit(job.function, job)
        while not handle.wait(timeout=0.01):
            if job._cancel.is_set():
                handle.wait(timeout=1.0)  # give a cooperative payload a beat
                self._finish(job, BatchJobState.CANCELLED, reason="deleted by qdel")
                return
            if time.monotonic() > deadline:
                self._finish(job, BatchJobState.FAILED, reason="walltime exceeded")
                return
        if job._cancel.is_set():
            self._finish(job, BatchJobState.CANCELLED, reason="deleted by qdel")
        elif handle.error is not None:
            self._finish(job, BatchJobState.FAILED, reason=str(handle.error))
        else:
            job.result = handle.result
            self._finish(job, BatchJobState.COMPLETED, exit_status=0)
