"""The cluster: nodes, slot-accounting FIFO scheduler, qsub/qstat/qdel.

Scheduling model (deliberately the classic TORQUE one):

- every node has a fixed number of slots (processors);
- a job asking for ``nodes × ppn`` needs that many nodes each with ``ppn``
  free slots, simultaneously;
- the queue is FIFO: the head job blocks smaller jobs behind it (no
  backfill) — matching default TORQUE behaviour and keeping job start
  order predictable for tests;
- walltime is enforced: commands are killed, callables are flagged through
  the job's cooperative cancel event and reported as walltime failures.

Jobs execute for real — shell commands in throwaway scratch directories,
callables on a worker thread — so cluster-backed services do actual work.
"""

from __future__ import annotations

import base64
import itertools
import json
import logging
import os
import shutil
import subprocess
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.batch.job import BatchJob, BatchJobState, JobResources
from repro.durability.journal import Journal
from repro.runtime.pool import ExecutorPool

logger = logging.getLogger(__name__)

#: The failure recorded on unrecoverable in-flight jobs after a restart.
BATCH_INTERRUPTED_REASON = "interrupted: the cluster stopped before the job finished"


def batch_job_document(job: BatchJob) -> dict[str, Any]:
    """The journal form of one batch job's submission.

    Command jobs serialize completely (argv, stdin, staged files, resource
    request), so a restarted cluster can requeue them verbatim. Function
    jobs carry in-process callables that cannot be persisted; they are
    flagged and recovery fails them as interrupted instead.
    """
    resources = job.resources
    document: dict[str, Any] = {
        "id": job.id,
        "name": job.name,
        "submitted": job.submitted,
        "resources": {
            "nodes": resources.nodes,
            "ppn": resources.ppn,
            "walltime": resources.walltime,
        },
    }
    if job.tenant:
        document["tenant"] = job.tenant
    if job.command is not None:
        document["command"] = list(job.command)
        if job.stdin:
            document["stdin"] = job.stdin
        if job.stage_in:
            document["stage_in"] = {
                name: base64.b64encode(content).decode("ascii")
                for name, content in job.stage_in.items()
            }
        if job.stage_out:
            document["stage_out"] = list(job.stage_out)
        if job.env:
            document["env"] = dict(job.env)
    else:
        document["function"] = True
    return document


def restore_batch_job(document: dict[str, Any]) -> BatchJob:
    """Rebuild a :class:`BatchJob` from its journal document (QUEUED)."""
    spec = document.get("resources") or {}
    resources = JobResources(
        nodes=int(spec.get("nodes", 1)),
        ppn=int(spec.get("ppn", 1)),
        walltime=float(spec.get("walltime", 3600.0)),
    )
    if "command" in document:
        job = BatchJob(
            name=document.get("name", "job"),
            command=list(document["command"]),
            resources=resources,
            stdin=document.get("stdin", ""),
            stage_in={
                name: base64.b64decode(content)
                for name, content in (document.get("stage_in") or {}).items()
            },
            stage_out=list(document.get("stage_out") or []),
            env=dict(document.get("env") or {}),
        )
    else:
        job = BatchJob(
            name=document.get("name", "job"),
            function=_unrecoverable_function,
            resources=resources,
        )
    job.id = document["id"]
    job.submitted = document.get("submitted", job.submitted)
    job.tenant = document.get("tenant")
    return job


def _unrecoverable_function(job: BatchJob) -> None:  # pragma: no cover
    raise RuntimeError("in-process callables do not survive a cluster restart")


def _numeric_id(job_id: str) -> int:
    """The leading number of a ``<n>.<cluster>`` id (0 when malformed)."""
    head = job_id.split(".", 1)[0]
    return int(head) if head.isdigit() else 0


def apply_batch_event(table: dict[str, dict[str, Any]], record: dict[str, Any]) -> None:
    """Fold one journal record into the recovery table (id → document)."""
    if record.get("type") != "batch":
        return
    job_id, event = record.get("id"), record.get("event")
    if not job_id or not event:
        return
    if event == "submitted":
        document = dict(record.get("job") or {})
        document["id"] = job_id
        document["state"] = BatchJobState.QUEUED.value
        table[job_id] = document
    elif event == "finished":
        document = table.setdefault(job_id, {"id": job_id, "function": True})
        for field in (
            "state",
            "reason",
            "exit_status",
            "stdout",
            "stderr",
            "output_files",
            "result",
            "started",
            "finished",
        ):
            if field in record:
                document[field] = record[field]


@dataclass
class ComputeNode:
    """One node: a name and a slot count."""

    name: str
    slots: int = 4

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("a node needs at least one slot")


class ClusterError(Exception):
    """Submission or control-command failure (unknown job, oversized request)."""


class Cluster:
    """A TORQUE-like resource manager over simulated nodes.

    The public surface mirrors the command-line tools: :meth:`qsub`,
    :meth:`qstat`, :meth:`qdel`, plus :meth:`wait` and lifecycle control.
    """

    def __init__(
        self,
        nodes: list[ComputeNode] | None = None,
        name: str = "cluster",
        journal_dir: "str | Path | None" = None,
        journal_fsync: str = "batch",
        accounting=None,
    ):
        self.name = name
        #: Tenant registry charged for reserved slot-time (``wall × nodes
        #: × ppn``) on terminal transitions, when tenancy is wired in.
        self.accounting = accounting
        self.nodes = nodes or [ComputeNode("node01", slots=4)]
        seen: set[str] = set()
        for node in self.nodes:
            if node.name in seen:
                raise ValueError(f"duplicate node name {node.name!r}")
            seen.add(node.name)
        self._free = {node.name: node.slots for node in self.nodes}
        self._dead: set[str] = set()
        self._released: set[str] = set()
        # callable payloads run on a shared worker pool; the scheduler can
        # never start more than total_slots jobs at once (every job holds at
        # least one slot), so this size guarantees a free worker per job
        self._fn_pool = ExecutorPool(workers=self.total_slots, name=f"{name}-fn")
        self._queue: list[BatchJob] = []
        self._jobs: dict[str, BatchJob] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._shutdown = False
        self.journal: Journal | None = None
        #: Corruption tolerated while replaying the journal, if any.
        self.recovery_warnings: list[str] = []
        if journal_dir is not None:
            self.journal = Journal(Path(journal_dir), fsync=journal_fsync)
            self._replay()
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name=f"{name}-sched", daemon=True
        )
        self._scheduler.start()

    # ------------------------------------------------------------- control

    def qsub(self, job: BatchJob) -> str:
        """Submit a job; returns its id (``<n>.<cluster>`` like TORQUE)."""
        if job.resources.ppn > max(node.slots for node in self.nodes):
            raise ClusterError(
                f"job {job.name!r} asks ppn={job.resources.ppn}, "
                f"larger than any node on {self.name}"
            )
        if job.resources.nodes > len(self.nodes):
            raise ClusterError(
                f"job {job.name!r} asks {job.resources.nodes} nodes, "
                f"cluster {self.name} has {len(self.nodes)}"
            )
        with self._lock:
            if self._shutdown:
                raise ClusterError(f"cluster {self.name} is shut down")
            job.id = f"{next(self._ids)}.{self.name}"
            job.state = BatchJobState.QUEUED
            self._jobs[job.id] = job
            self._queue.append(job)
            # journaled before the scheduler can see the job, so a crash
            # after qsub returned can never lose an acknowledged submission
            self._append(
                {
                    "type": "batch",
                    "event": "submitted",
                    "id": job.id,
                    "job": batch_job_document(job),
                }
            )
            self._wake.notify_all()
        return job.id

    def qstat(self, job_id: str) -> dict[str, object]:
        """Status record for one job (raises for unknown ids, like qstat)."""
        job = self._get(job_id)
        return {
            "id": job.id,
            "name": job.name,
            "state": job.state.torque_code,
            "detail": job.state.value,
            "exit_status": job.exit_status,
            "nodes": list(job.node_names),
        }

    def qdel(self, job_id: str) -> None:
        """Cancel a queued or running job."""
        job = self._get(job_id)
        with self._lock:
            if job.state is BatchJobState.QUEUED:
                self._queue.remove(job)
                self._finish(job, BatchJobState.CANCELLED, reason="deleted by qdel")
                return
        # running (or already terminal): signal cooperatively; the runner
        # notices and reports CANCELLED.
        job._cancel.set()

    def get_job(self, job_id: str) -> BatchJob:
        return self._get(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> BatchJob:
        job = self._get(job_id)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.state.value} after {timeout}s")
        return job

    def jobs(self) -> list[BatchJob]:
        with self._lock:
            return list(self._jobs.values())

    @property
    def total_slots(self) -> int:
        return sum(node.slots for node in self.nodes)

    @property
    def free_slots(self) -> int:
        with self._lock:
            return sum(self._free.values())

    # --------------------------------------------------------- node failure

    def fail_node(self, name: str) -> list[str]:
        """Take a node down: kill its running jobs, withdraw its slots.

        Returns the ids of the jobs that were signalled. The node stops
        taking allocations until :meth:`restore_node`; queued jobs simply
        wait for capacity elsewhere (or for the node to come back).
        """
        with self._lock:
            if name not in self._free:
                raise ClusterError(f"unknown node {name!r} on cluster {self.name}")
            if name in self._dead:
                return []
            self._dead.add(name)
            self._free[name] = 0
            victims = [
                job
                for job in self._jobs.values()
                if job.state is BatchJobState.RUNNING and name in job.node_names
            ]
        for job in victims:
            job._cancel.set()
        return [job.id for job in victims]

    def restore_node(self, name: str) -> None:
        """Bring a failed node back with its slot capacity restored.

        Slots still held by jobs that survived on other nodes of a
        multi-node allocation (and have not released yet) stay deducted,
        so the free-slot ledger remains conserved.
        """
        with self._lock:
            if name not in self._dead:
                return
            self._dead.discard(name)
            node = next(node for node in self.nodes if node.name == name)
            held = sum(
                job.resources.ppn
                for job in self._jobs.values()
                if name in job.node_names and job.id not in self._released
            )
            self._free[name] = max(0, node.slots - held)
            self._wake.notify_all()

    @property
    def dead_nodes(self) -> list[str]:
        with self._lock:
            return sorted(self._dead)

    def shutdown(self) -> None:
        """Stop scheduling; queued jobs are cancelled, running jobs signalled."""
        with self._lock:
            self._shutdown = True
            doomed = list(self._queue)
            self._queue.clear()
            for job in doomed:
                self._finish(job, BatchJobState.CANCELLED, reason="cluster shutdown")
            self._wake.notify_all()
        for job in self.jobs():
            if job.state is BatchJobState.RUNNING:
                job._cancel.set()
        self._fn_pool.shutdown(wait=False)
        if self.journal is not None:
            self.journal.sync()
            self.journal.close()

    # ----------------------------------------------------------- durability

    def crash(self) -> None:
        """Simulate a cold stop: the journal closes first, so nothing the
        dying threads do afterwards is persisted. Queued jobs are *not*
        cancelled — their submitted records stand, and the next incarnation
        over the same ``journal_dir`` requeues them.
        """
        if self.journal is not None:
            self.journal.close()
        with self._lock:
            self._shutdown = True
            self._queue.clear()
            self._wake.notify_all()
        for job in self.jobs():
            if job.state is BatchJobState.RUNNING:
                job._cancel.set()
        self._fn_pool.shutdown(wait=False)

    def compact(self) -> None:
        """Snapshot every known job into the journal and drop the segments
        the snapshot covers."""
        if self.journal is None:
            return
        with self._lock:
            jobs = list(self._jobs.values())
        self.journal.snapshot(
            {"jobs": {job.id: self._snapshot_document(job) for job in jobs}}
        )

    def _snapshot_document(self, job: BatchJob) -> dict[str, Any]:
        document = batch_job_document(job)
        document["state"] = job.state.value
        if job.started is not None:
            document["started"] = job.started
        if job.state.terminal:
            document["finished"] = job.finished
            if job.failure_reason:
                document["reason"] = job.failure_reason
            if job.exit_status is not None:
                document["exit_status"] = job.exit_status
            if job.stdout:
                document["stdout"] = job.stdout
            if job.stderr:
                document["stderr"] = job.stderr
            if job.output_files:
                document["output_files"] = {
                    name: base64.b64encode(content).decode("ascii")
                    for name, content in job.output_files.items()
                }
            if job.result is not None:
                try:
                    json.dumps(job.result)
                except (TypeError, ValueError):
                    pass  # unserializable results are not recoverable
                else:
                    document["result"] = job.result
        return document

    def _replay(self) -> None:
        recovery = self.journal.recover()
        self.recovery_warnings = list(recovery.warnings)
        table: dict[str, dict[str, Any]] = {}
        snapshot = recovery.snapshot or {}
        for job_id, document in (snapshot.get("jobs") or {}).items():
            table[job_id] = dict(document)
        for record in recovery.records:
            apply_batch_event(table, record)
        highest = 0
        requeued = 0
        for job_id in sorted(table, key=_numeric_id):  # original submission order
            document = table[job_id]
            highest = max(highest, _numeric_id(job_id))
            job = restore_batch_job(document)
            state = BatchJobState(document.get("state", BatchJobState.QUEUED.value))
            if state.terminal:
                # direct restoration: the run already happened, pre-crash
                job.state = state
                job.started = document.get("started")
                job.finished = document.get("finished", job.submitted)
                job.failure_reason = document.get("reason", "")
                job.exit_status = document.get("exit_status")
                job.stdout = document.get("stdout", "")
                job.stderr = document.get("stderr", "")
                job.output_files = {
                    name: base64.b64decode(content)
                    for name, content in (document.get("output_files") or {}).items()
                }
                job.result = document.get("result")
                job._done.set()
                self._jobs[job.id] = job
            elif job.command is not None:
                # a queued (or mid-run) command job re-runs from its staged
                # inputs; node-death requeue semantics apply as usual
                job.state = BatchJobState.QUEUED
                job.started = None
                self._jobs[job.id] = job
                self._queue.append(job)
                requeued += 1
            else:
                # in-process callables cannot be rebuilt from a journal
                self._jobs[job.id] = job
                self._finish(job, BatchJobState.FAILED, reason=BATCH_INTERRUPTED_REASON)
        self._ids = itertools.count(highest + 1)
        if table:
            logger.info(
                "replayed cluster journal: %d jobs, %d requeued", len(table), requeued
            )

    def _append(self, record: dict[str, Any]) -> None:
        """Journal one record; persistence failures never break scheduling."""
        if self.journal is None:
            return
        try:
            self.journal.append(record)
        except Exception as error:  # noqa: BLE001 - journaling is best-effort
            logger.error("cluster journal append failed for %s: %s", record.get("id"), error)

    # ----------------------------------------------------------- internals

    def _get(self, job_id: str) -> BatchJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ClusterError(f"unknown job id {job_id!r}")
        return job

    def _finish(self, job: BatchJob, state: BatchJobState, reason: str = "", exit_status: int | None = None) -> None:
        """Must hold no locks that the waiter needs; sets the done event."""
        job.state = state
        job.failure_reason = reason
        if exit_status is not None:
            job.exit_status = exit_status
        job.finished = time.time()
        if self.journal is not None:
            record: dict[str, Any] = {
                "type": "batch",
                "event": "finished",
                "id": job.id,
                "state": state.value,
                "finished": job.finished,
            }
            if job.started is not None:
                record["started"] = job.started
            if reason:
                record["reason"] = reason
            if job.exit_status is not None:
                record["exit_status"] = job.exit_status
            if job.stdout:
                record["stdout"] = job.stdout
            if job.stderr:
                record["stderr"] = job.stderr
            if job.output_files:
                record["output_files"] = {
                    name: base64.b64encode(content).decode("ascii")
                    for name, content in job.output_files.items()
                }
            if job.result is not None:
                try:
                    json.dumps(job.result)
                except (TypeError, ValueError):
                    pass  # unserializable results are not recoverable
                else:
                    record["result"] = job.result
            self._append(record)
        if (self.accounting is not None and job.tenant and job.started
                and job.finished):
            # reserved slot-time, charged once on the terminal transition:
            # a cancelled-while-queued job (no started stamp) costs nothing
            wall = max(0.0, job.finished - job.started)
            self.accounting.charge(
                job.tenant, cpu=wall * job.resources.nodes * job.resources.ppn)
        job._done.set()

    def _try_allocate(self, job: BatchJob) -> list[str] | None:
        """Pick nodes for the job; returns node names or None (under lock)."""
        chosen: list[str] = []
        for node in self.nodes:
            if self._free[node.name] >= job.resources.ppn:
                chosen.append(node.name)
                if len(chosen) == job.resources.nodes:
                    for name in chosen:
                        self._free[name] -= job.resources.ppn
                    return chosen
        return None

    def _release(self, job: BatchJob) -> None:
        with self._lock:
            self._released.add(job.id)
            for name in job.node_names:
                # a dead node's slots were withdrawn wholesale on failure;
                # restore_node re-credits them, so don't double-count here
                if name not in self._dead:
                    self._free[name] += job.resources.ppn
            self._wake.notify_all()

    def _schedule_loop(self) -> None:
        while True:
            with self._lock:
                while not self._shutdown and not (self._queue and self._head_fits()):
                    self._wake.wait(timeout=0.5)
                    if self._shutdown:
                        break
                if self._shutdown:
                    return
                job = self._queue.pop(0)
                job.node_names = self._try_allocate(job) or []
            if not job.node_names:  # lost a race; requeue at the head
                with self._lock:
                    self._queue.insert(0, job)
                continue
            job.state = BatchJobState.RUNNING
            job.started = time.time()
            threading.Thread(
                target=self._run_job, args=(job,), name=f"{self.name}-{job.id}", daemon=True
            ).start()

    def _head_fits(self) -> bool:
        """Whether the queue head could be allocated right now (under lock)."""
        job = self._queue[0]
        available = sum(1 for node in self.nodes if self._free[node.name] >= job.resources.ppn)
        return available >= job.resources.nodes

    def _run_job(self, job: BatchJob) -> None:
        try:
            if job.command is not None:
                self._run_command(job)
            else:
                self._run_function(job)
        except Exception as exc:  # noqa: BLE001 - a job must never kill the runner
            self._finish(job, BatchJobState.FAILED, reason=f"runner error: {exc}")
        finally:
            self._release(job)

    def _run_command(self, job: BatchJob) -> None:
        scratch = Path(tempfile.mkdtemp(prefix=f"batch-{self.name}-"))
        try:
            for name, content in job.stage_in.items():
                target = scratch / name
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_bytes(content)
            process = subprocess.Popen(
                job.command,
                cwd=scratch,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=None if not job.env else {**os.environ, **job.env},
                text=True,
            )
            deadline = time.monotonic() + job.resources.walltime
            try:
                if job.stdin:
                    process.stdin.write(job.stdin)
                process.stdin.close()
                while process.poll() is None:
                    if job._cancel.is_set():
                        process.kill()
                        process.wait()
                        self._finish(job, BatchJobState.CANCELLED, reason="deleted by qdel")
                        return
                    if time.monotonic() > deadline:
                        process.kill()
                        process.wait()
                        self._finish(job, BatchJobState.FAILED, reason="walltime exceeded")
                        return
                    time.sleep(0.01)
            finally:
                job.stdout = process.stdout.read()
                job.stderr = process.stderr.read()
            for name in job.stage_out:
                path = scratch / name
                if path.exists():
                    job.output_files[name] = path.read_bytes()
            code = process.returncode
            if code == 0:
                self._finish(job, BatchJobState.COMPLETED, exit_status=0)
            else:
                self._finish(
                    job,
                    BatchJobState.FAILED,
                    reason=f"exit status {code}",
                    exit_status=code,
                )
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    def _run_function(self, job: BatchJob) -> None:
        deadline = time.monotonic() + job.resources.walltime
        handle = self._fn_pool.submit(job.function, job)
        while not handle.wait(timeout=0.01):
            if job._cancel.is_set():
                handle.wait(timeout=1.0)  # give a cooperative payload a beat
                self._finish(job, BatchJobState.CANCELLED, reason="deleted by qdel")
                return
            if time.monotonic() > deadline:
                self._finish(job, BatchJobState.FAILED, reason="walltime exceeded")
                return
        if job._cancel.is_set():
            self._finish(job, BatchJobState.CANCELLED, reason="deleted by qdel")
        elif handle.error is not None:
            self._finish(job, BatchJobState.FAILED, reason=str(handle.error))
        else:
            job.result = handle.result
            self._finish(job, BatchJobState.COMPLETED, exit_status=0)
