"""The content-addressed result cache with single-flight coalescing.

One :class:`ResultCache` serves a whole container. It answers three
questions about a fingerprint, in strict priority order:

1. *done* — a job with this fingerprint completed ``DONE`` and is still
   fresh (LRU + TTL): serve that job instantly (``X-Cache: hit``);
2. *in flight* — a job with this fingerprint is queued or running:
   attach to it instead of executing again (``X-Cache: coalesced``);
3. *pending* — another submit thread is mid-way through creating the
   leader job: wait for it to register (the same protocol as
   ``Idempotency-Key`` replay's reserve/release), then re-evaluate.

Only a genuine miss executes, so within one container a fingerprint can
never be executing twice concurrently — the chaos suite asserts exactly
that. Failures and cancellations are never cached: a terminal
``FAILED``/``CANCELLED`` leader just drops out of the in-flight index and
the next identical submit recomputes. Deleting a job invalidates its
fingerprint, so a hit can never resurrect deleted results.

Durability: each promotion to the done tier is reported through
``journal_fn`` as a lightweight ``(service, fingerprint, job_id, stored)``
record; after a cold restart the container re-seeds the hot set from
those records, keeping only entries whose job was itself recovered
``DONE`` and whose TTL has not lapsed.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.jobs import Job, JobState

__all__ = ["CacheClosedError", "CacheStats", "ResultCache"]

logger = logging.getLogger(__name__)


class CacheClosedError(Exception):
    """The cache shut down while a claim was outstanding.

    Raised to pending claimants so a container shutdown fails coalesced
    waiters promptly instead of leaving them hanging on the condition.
    """


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of the cache's counters."""

    hits: int
    coalesced: int
    misses: int
    evictions: int
    expirations: int
    invalidations: int

    @property
    def lookups(self) -> int:
        return self.hits + self.coalesced + self.misses

    @property
    def hit_ratio(self) -> float:
        lookups = self.lookups
        return (self.hits + self.coalesced) / lookups if lookups else 0.0


class _DoneEntry:
    __slots__ = ("service", "job_id", "stored")

    def __init__(self, service: str, job_id: str, stored: float):
        self.service = service
        self.job_id = job_id
        self.stored = stored


class ResultCache:
    """Container-wide fingerprint → job index (LRU + TTL + single-flight).

    ``ttl`` bounds how long a ``DONE`` result stays servable (``None``
    disables expiry); ``capacity`` bounds the done tier (LRU eviction).
    ``clock`` is wall-clock time — entry ages are journaled and must stay
    meaningful across restarts.
    """

    def __init__(
        self,
        capacity: int = 2048,
        ttl: "float | None" = 600.0,
        pending_timeout: float = 30.0,
        clock: Callable[[], float] = time.time,
        journal_fn: "Callable[[str, str, str, float], None] | None" = None,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("cache ttl must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl = ttl
        self.pending_timeout = pending_timeout
        self.clock = clock
        #: Called with ``(service, fingerprint, job_id, stored)`` on each
        #: promotion to the done tier; the container wires the journal here.
        self.journal_fn = journal_fn
        self._cond = threading.Condition(threading.Lock())
        self._done: "OrderedDict[str, _DoneEntry]" = OrderedDict()
        self._inflight: dict[str, tuple[str, str]] = {}  # fp -> (service, job id)
        self._pending: set[str] = set()
        self._by_job: dict[str, str] = {}  # job id -> fp (done or in flight)
        self._closed = False
        self._hits = 0
        self._coalesced = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._invalidations = 0

    # --------------------------------------------------------------- lookup

    def claim(self, fingerprint: str) -> "tuple[str, str | None]":
        """Resolve ``fingerprint``: ``("hit", job_id)``, ``("coalesced",
        job_id)`` or ``("miss", None)``.

        A miss hands *ownership* of the fingerprint to the caller, who
        must finish with :meth:`register` (leader job created) or
        :meth:`release` (submit failed). While a fingerprint is owned,
        concurrent claimants block until the owner resolves it — at most
        ``pending_timeout`` seconds, after which the claim degrades to a
        plain miss (a pathologically stuck owner can then at worst cause
        one duplicate execution; it can never cause a deadlock).

        Raises :class:`CacheClosedError` once the cache is closed, so
        shutdown fails waiters instead of stranding them.
        """
        deadline = time.monotonic() + self.pending_timeout
        with self._cond:
            while True:
                if self._closed:
                    raise CacheClosedError("result cache is closed")
                entry = self._done.get(fingerprint)
                if entry is not None:
                    if self._expired(entry):
                        self._evict(fingerprint, entry, expired=True)
                    else:
                        self._done.move_to_end(fingerprint)
                        self._hits += 1
                        return "hit", entry.job_id
                if fingerprint in self._inflight:
                    self._coalesced += 1
                    return "coalesced", self._inflight[fingerprint][1]
                if fingerprint not in self._pending:
                    self._pending.add(fingerprint)
                    self._misses += 1
                    return "miss", None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._misses += 1
                    return "miss", None
                self._cond.wait(remaining)

    def register(self, fingerprint: str, service: str, job: Job) -> None:
        """Install the owner's freshly created leader job.

        The fingerprint moves pending → in-flight and the cache follows
        the job's transitions: ``DONE`` promotes it to the done tier,
        ``FAILED``/``CANCELLED`` simply drops it (failures are never
        cached). Waiting claimants are released to coalesce onto the job.
        """
        with self._cond:
            self._pending.discard(fingerprint)
            if not self._closed:
                self._inflight[fingerprint] = (service, job.id)
                self._by_job[job.id] = fingerprint
            self._cond.notify_all()
        job.subscribe(self._on_transition)

    def release(self, fingerprint: str) -> None:
        """Abandon an owned fingerprint (the submit failed before a job
        existed); a waiting claimant inherits the miss."""
        with self._cond:
            self._pending.discard(fingerprint)
            self._cond.notify_all()

    # ---------------------------------------------------------- maintenance

    def invalidate_job(self, job_id: str) -> bool:
        """Forget whatever entry points at ``job_id`` (the job was deleted).

        A later identical submit recomputes instead of serving the dead
        job. Returns True when an entry was dropped.
        """
        with self._cond:
            fingerprint = self._by_job.pop(job_id, None)
            if fingerprint is None:
                return False
            self._done.pop(fingerprint, None)
            self._inflight.pop(fingerprint, None)
            self._invalidations += 1
            self._cond.notify_all()
            return True

    def seed(self, fingerprint: str, service: str, job_id: str, stored: float) -> bool:
        """Rehydrate one journaled entry (recovery path).

        The caller has already checked the job recovered ``DONE``; here
        the entry is dropped if its TTL lapsed across the outage or the
        fingerprint is already occupied. Returns True when seeded.
        """
        with self._cond:
            if self._closed or fingerprint in self._done or fingerprint in self._inflight:
                return False
            entry = _DoneEntry(service, job_id, stored)
            if self._expired(entry):
                return False
            self._done[fingerprint] = entry
            self._by_job[job_id] = fingerprint
            self._trim()
            return True

    def export(self) -> list[dict[str, Any]]:
        """The done tier as journal-shaped records (compaction snapshots)."""
        with self._cond:
            return [
                {"service": entry.service, "fp": fingerprint, "id": entry.job_id, "stored": entry.stored}
                for fingerprint, entry in self._done.items()
                if not self._expired(entry)
            ]

    def close(self) -> None:
        """Shut the cache: wake every pending claimant with
        :class:`CacheClosedError` and stop accepting registrations."""
        with self._cond:
            self._closed = True
            self._pending.clear()
            self._cond.notify_all()

    # ------------------------------------------------------------- metrics

    @property
    def stats(self) -> CacheStats:
        with self._cond:
            return CacheStats(
                hits=self._hits,
                coalesced=self._coalesced,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                invalidations=self._invalidations,
            )

    @property
    def pending_count(self) -> int:
        with self._cond:
            return len(self._pending)

    @property
    def inflight_count(self) -> int:
        with self._cond:
            return len(self._inflight)

    def __len__(self) -> int:
        with self._cond:
            return len(self._done)

    def __contains__(self, fingerprint: object) -> bool:
        with self._cond:
            entry = self._done.get(fingerprint)  # type: ignore[arg-type]
            return entry is not None and not self._expired(entry)

    # ----------------------------------------------------------- internals

    def _expired(self, entry: _DoneEntry) -> bool:
        return self.ttl is not None and self.clock() - entry.stored >= self.ttl

    def _evict(self, fingerprint: str, entry: _DoneEntry, expired: bool = False) -> None:
        self._done.pop(fingerprint, None)
        if self._by_job.get(entry.job_id) == fingerprint:
            del self._by_job[entry.job_id]
        if expired:
            self._expirations += 1
        else:
            self._evictions += 1

    def _trim(self) -> None:
        while len(self._done) > self.capacity:
            fingerprint, entry = next(iter(self._done.items()))
            self._evict(fingerprint, entry)

    def _on_transition(self, job: Job, state: JobState) -> None:
        if not state.terminal:
            return
        journal = None
        with self._cond:
            fingerprint = self._by_job.get(job.id)
            if fingerprint is None or self._inflight.get(fingerprint, (None, None))[1] != job.id:
                return
            service, _ = self._inflight.pop(fingerprint)
            if state is JobState.DONE and not self._closed:
                stored = self.clock()
                self._done[fingerprint] = _DoneEntry(service, job.id, stored)
                self._trim()
                if self._by_job.get(job.id) == fingerprint:
                    journal = (service, fingerprint, job.id, stored)
            else:
                # FAILED / CANCELLED: never cached; the next identical
                # submit recomputes from scratch
                self._by_job.pop(job.id, None)
            self._cond.notify_all()
        if journal is not None and self.journal_fn is not None:
            try:
                self.journal_fn(*journal)
            except Exception as error:  # noqa: BLE001 - journaling is best-effort
                logger.error("cache journal record failed for %s: %s", job.id, error)
