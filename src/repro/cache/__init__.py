"""repro.cache — content-addressed result caching with single-flight.

The reuse layer the paper's thesis implies: published services are
invoked again and again with identical inputs (catalogue clients,
parameter sweeps, composite workflows), so the platform deduplicates at
the submission boundary. :mod:`repro.cache.fingerprint` turns a
submission into a canonical content address; :mod:`repro.cache.store`
keeps the fingerprint → job index (LRU + TTL done tier, in-flight
coalescing, journal-backed rehydration).
"""

from repro.cache.fingerprint import (
    ContentHasher,
    FingerprintError,
    canonical_json,
    hash_bytes,
    job_fingerprint,
    normalize_refs,
    routing_hint,
)
from repro.cache.store import CacheClosedError, CacheStats, ResultCache

__all__ = [
    "CacheClosedError",
    "CacheStats",
    "ContentHasher",
    "FingerprintError",
    "ResultCache",
    "canonical_json",
    "hash_bytes",
    "job_fingerprint",
    "normalize_refs",
    "routing_hint",
]
