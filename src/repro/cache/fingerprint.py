"""Canonical job fingerprints: the cache's content address.

A fingerprint identifies *what a submission computes*, not how the
request happened to be spelled: two submissions whose service and input
values are equal must fingerprint identically, whatever the JSON key
order, whitespace or header dressing of the POST. Input values that are
file references are resolved to the *content* behind them — the URI is an
address, not a value, and the same bytes published under two URIs must
still collide.

Three layers, from cheapest to most thorough:

- :func:`canonical_json` — deterministic serialization (sorted keys,
  minimal separators) of any JSON value;
- :func:`routing_hint` — a cheap fingerprint of a raw submit body, used
  by the gateway to key consistent-hash routing so identical work lands
  on the replica most likely to hold the cached result (no file
  fetching: the gateway never dereferences inputs);
- :func:`job_fingerprint` — the authoritative content address computed
  by the container, with file references resolved through a caller
  supplied fetcher and hashed incrementally (:class:`ContentHasher`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Iterable

from repro.core.filerefs import blob_digest, file_uri, is_blob_ref, is_file_ref

__all__ = [
    "ContentHasher",
    "FingerprintError",
    "canonical_json",
    "hash_bytes",
    "job_fingerprint",
    "routing_hint",
]


class FingerprintError(Exception):
    """The fingerprint could not be computed (e.g. an unfetchable file)."""


def canonical_json(value: Any) -> str:
    """Serialize ``value`` deterministically: sorted keys, no whitespace.

    Two JSON-equal values always produce the same string, whatever dict
    insertion order they were built in.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), ensure_ascii=False)


class ContentHasher:
    """Incremental SHA-256 over a byte stream.

    The digest depends only on the concatenated bytes, never on how they
    were chunked — feeding one 10 MB buffer or ten 1 MB buffers yields the
    same fingerprint (the chunking-invariance property test pins this).
    """

    def __init__(self) -> None:
        self._hash = hashlib.sha256()

    def update(self, chunk: bytes) -> "ContentHasher":
        self._hash.update(chunk)
        return self

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def hash_bytes(content: "bytes | Iterable[bytes]") -> str:
    """SHA-256 of ``content`` (a buffer or any iterable of chunks)."""
    hasher = ContentHasher()
    if isinstance(content, (bytes, bytearray, memoryview)):
        hasher.update(bytes(content))
    else:
        for chunk in content:
            hasher.update(chunk)
    return hasher.hexdigest()


def _normalize(value: Any, fetch: "Callable[[dict], bytes] | None") -> Any:
    """Replace file references with content digests, recursively.

    Everything else passes through untouched; ``canonical_json`` then
    handles key-order insensitivity.
    """
    if is_blob_ref(value):
        # the blob digest *is* sha256 of the content (the manifest digest
        # is chunk-boundary independent by construction), so this equals
        # {"$content": hash_bytes(fetched)} without moving a byte
        return {"$content": blob_digest(value)}
    if is_file_ref(value):
        if fetch is None:
            # no fetcher: fall back to the URI, which is still stable for
            # a file that stays where it is
            return {"$content-uri": file_uri(value)}
        try:
            content = fetch(value)
        except Exception as exc:  # noqa: BLE001 - fetchers wrap transports
            raise FingerprintError(
                f"cannot resolve file reference {file_uri(value)!r}: {exc}"
            ) from exc
        return {"$content": hash_bytes(content)}
    if isinstance(value, dict):
        return {name: _normalize(item, fetch) for name, item in value.items()}
    if isinstance(value, list):
        return [_normalize(item, fetch) for item in value]
    return value


def normalize_refs(value: Any, fetch: "Callable[[dict], bytes] | None" = None) -> Any:
    """Public face of :func:`_normalize` for non-fingerprint dedup keys.

    With no fetcher, blob references still normalize to their content
    digest — two blob refs to the same bytes on different containers (or
    the same URI seen raw and gateway-rewritten) compare equal without a
    single fetch; plain file refs degrade to their URI.
    """
    return _normalize(value, fetch)


def job_fingerprint(
    service: str,
    inputs: dict[str, Any],
    fetch: "Callable[[dict], bytes] | None" = None,
) -> str:
    """The content address of one submission: ``sha256(service + inputs)``.

    ``fetch`` resolves a file-reference envelope to its bytes; when given,
    file-valued inputs are hashed by content, making the fingerprint
    invariant under re-publication of the same bytes at a new URI.
    """
    normalized = _normalize(inputs, fetch)
    payload = f"{service}\x00{canonical_json(normalized)}"
    return hash_bytes(payload.encode("utf-8"))


def routing_hint(service: str, body: bytes) -> str:
    """A cheap submit fingerprint for gateway routing affinity.

    Parses the body as JSON when possible so key order cannot scatter
    identical submissions across replicas; an unparseable body hashes
    verbatim. This is a *routing* key only — correctness never depends on
    it, the container computes the authoritative fingerprint itself.
    """
    try:
        canonical = canonical_json(json.loads(body)) if body else "{}"
    except ValueError:
        canonical = body.hex()
    return f"{service}\x00{canonical}"
