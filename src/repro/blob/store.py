"""The chunked content-addressed blob store.

A *blob* is an immutable byte sequence addressed by the SHA-256 of its
content (the same :mod:`repro.cache.fingerprint` hashing the result cache
uses, so a blob digest doubles as the ``{"$content": ...}`` value in a job
fingerprint). On disk a blob is a *manifest* — an ordered list of chunk
digests — plus the chunk files themselves, each addressed by its own
digest so identical chunks are stored once across all blobs.

Layout under the store directory::

    chunks/<chunk digest>          one file per distinct chunk
    manifests/<blob digest>.json   one manifest per committed blob

Commit is atomic: chunks are written first (via tmp-file + rename, so a
torn write never corrupts an existing chunk), then the manifest is
renamed into place. A crash mid-upload therefore leaves orphan chunks at
worst — never a committed partial blob — and orphans are swept by GC.

Garbage collection is refcounted through *pins*: a pin is a
``(digest, owner)`` pair (owners are strings like ``job:<id>``) recorded
in the container's write-ahead journal as ``{"type": "blob"}`` records,
so the pin set survives a cold restart. :meth:`BlobStore.gc` collects
committed blobs with no pins (after a grace period, so a blob uploaded
just before its job submission cannot be swept in between) and then
drops chunk files no surviving manifest references.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.blob.chunker import DEFAULT_CHUNK_SIZE, rechunk
from repro.cache.fingerprint import ContentHasher, hash_bytes

__all__ = [
    "BlobError",
    "BlobDigestMismatch",
    "BlobNotFound",
    "BlobManifest",
    "BlobStore",
    "BlobUpload",
]

logger = logging.getLogger(__name__)

#: Seconds an unpinned blob is left alone after commit before GC may take
#: it — the window between "client uploaded the blob" and "client
#: submitted the job that pins it".
DEFAULT_GC_GRACE = 60.0

_READ_SIZE = 256 * 1024


class BlobError(Exception):
    """A blob-store operation failed."""


class BlobNotFound(BlobError):
    """The requested digest is not committed in this store."""


class BlobDigestMismatch(BlobError):
    """Uploaded content does not hash to the digest the caller claimed."""


@dataclass
class BlobManifest:
    """The committed description of one blob."""

    digest: str
    size: int
    chunk_size: int
    #: Ordered ``[digest, size]`` pairs; concatenating the chunks in order
    #: reproduces the content, and ``sha256(content) == digest``.
    chunks: list[list[Any]] = field(default_factory=list)
    content_type: str = ""

    def to_json(self) -> dict[str, Any]:
        document: dict[str, Any] = {
            "digest": self.digest,
            "size": self.size,
            "chunkSize": self.chunk_size,
            "chunks": [[digest, size] for digest, size in self.chunks],
        }
        if self.content_type:
            document["contentType"] = self.content_type
        return document

    @classmethod
    def from_json(cls, document: dict[str, Any]) -> "BlobManifest":
        try:
            chunks = [[str(digest), int(size)] for digest, size in document["chunks"]]
            manifest = cls(
                digest=str(document["digest"]),
                size=int(document["size"]),
                chunk_size=int(document.get("chunkSize", DEFAULT_CHUNK_SIZE)),
                chunks=chunks,
                content_type=str(document.get("contentType", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BlobError(f"malformed blob manifest: {exc}") from exc
        if sum(size for _digest, size in manifest.chunks) != manifest.size:
            raise BlobError("malformed blob manifest: chunk sizes do not sum to size")
        return manifest


class BlobUpload:
    """One in-progress streaming upload (created by :meth:`BlobStore.begin_upload`).

    ``write`` accepts arbitrarily sized buffers; full chunks are hashed
    and flushed to disk as they fill, so an upload of any size holds at
    most one chunk in memory. ``commit`` seals the blob: the manifest is
    written atomically, and when the caller claimed a digest up front it
    is verified against the actual content hash first.
    """

    def __init__(self, store: "BlobStore", content_type: str = ""):
        self._store = store
        self.content_type = content_type
        self._hasher = ContentHasher()
        self._pending = bytearray()
        self._chunks: list[list[Any]] = []
        self._size = 0
        self._done = False

    @property
    def size(self) -> int:
        return self._size

    def write(self, data: bytes) -> None:
        if self._done:
            raise BlobError("upload already committed or aborted")
        if not data:
            return
        self._hasher.update(bytes(data))
        self._size += len(data)
        self._pending.extend(data)
        chunk_size = self._store.chunk_size
        while len(self._pending) >= chunk_size:
            self._flush(bytes(self._pending[:chunk_size]))
            del self._pending[:chunk_size]

    def _flush(self, chunk: bytes) -> None:
        digest = hash_bytes(chunk)
        self._store._write_chunk(digest, chunk)
        self._chunks.append([digest, len(chunk)])

    def commit(self, expected: "str | None" = None) -> BlobManifest:
        """Seal the upload; returns the committed manifest.

        With ``expected`` the content digest is verified and a mismatch
        aborts the upload (no manifest appears) — the wire contract of
        ``PUT /blobs/{digest}``.
        """
        if self._done:
            raise BlobError("upload already committed or aborted")
        self._done = True
        if self._pending:
            self._flush(bytes(self._pending))
            self._pending = bytearray()
        digest = self._hasher.hexdigest()
        if expected is not None and expected != digest:
            raise BlobDigestMismatch(
                f"content hashes to {digest}, not the claimed {expected}"
            )
        manifest = BlobManifest(
            digest=digest,
            size=self._size,
            chunk_size=self._store.chunk_size,
            chunks=self._chunks,
            content_type=self.content_type,
        )
        self._store._commit(manifest)
        return manifest

    def abort(self) -> None:
        """Drop the upload; chunks already flushed stay as GC-able orphans."""
        self._done = True
        self._pending = bytearray()


class BlobStore:
    """Directory-backed content-addressed blob storage with journaled pins."""

    def __init__(
        self,
        directory: "str | Path",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        journal_fn: "Callable[[dict[str, Any]], None] | None" = None,
        gc_grace: float = DEFAULT_GC_GRACE,
    ):
        self.directory = Path(directory)
        self.chunk_size = chunk_size
        #: Called with each ``{"type": "blob"}`` record (commit/pin/unpin/
        #: collect); the container wires this to its write-ahead journal.
        self.journal_fn = journal_fn
        self.gc_grace = gc_grace
        self._chunk_dir = self.directory / "chunks"
        self._manifest_dir = self.directory / "manifests"
        self._chunk_dir.mkdir(parents=True, exist_ok=True)
        self._manifest_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._manifests: dict[str, BlobManifest] = {}
        self._pins: dict[str, set[str]] = {}
        self._committed_at: dict[str, float] = {}
        self.chunks_deduped = 0
        self.blobs_collected = 0
        self._load()

    def _load(self) -> None:
        """Index the manifests already on disk (committed = manifest exists)."""
        for path in self._manifest_dir.glob("*.json"):
            try:
                manifest = BlobManifest.from_json(json.loads(path.read_text()))
            except (ValueError, BlobError) as exc:
                logger.warning("ignoring unreadable blob manifest %s: %s", path.name, exc)
                continue
            if manifest.digest != path.stem:
                logger.warning("ignoring mislabeled blob manifest %s", path.name)
                continue
            self._manifests[manifest.digest] = manifest
            self._committed_at[manifest.digest] = path.stat().st_mtime

    # ------------------------------------------------------------- writing

    def begin_upload(self, content_type: str = "") -> BlobUpload:
        return BlobUpload(self, content_type=content_type)

    def put_bytes(self, content: "bytes | Iterable[bytes]", content_type: str = "") -> BlobManifest:
        """Store ``content`` (a buffer or chunk iterable); returns its manifest."""
        upload = self.begin_upload(content_type=content_type)
        for piece in rechunk(content, self.chunk_size):
            upload.write(piece)
        return upload.commit()

    def _write_chunk(self, digest: str, chunk: bytes) -> None:
        """Persist one chunk under its digest (idempotent, atomic)."""
        target = self._chunk_dir / digest
        if target.exists():
            with self._lock:
                self.chunks_deduped += 1
            return
        tmp = self._chunk_dir / f".tmp-{uuid.uuid4().hex}"
        tmp.write_bytes(chunk)
        os.replace(tmp, target)

    def add_chunk(self, digest: str, chunk: bytes) -> None:
        """Add one externally fetched chunk, verifying its digest (staging)."""
        actual = hash_bytes(chunk)
        if actual != digest:
            raise BlobDigestMismatch(f"chunk hashes to {actual}, not the claimed {digest}")
        self._write_chunk(digest, chunk)

    def has_chunk(self, digest: str) -> bool:
        return (self._chunk_dir / digest).exists()

    def commit_manifest(self, manifest: BlobManifest) -> BlobManifest:
        """Commit a blob assembled chunk-by-chunk (the staging path).

        Every chunk must already be present; the full content digest is
        recomputed from the chunk files before the manifest appears, so a
        forged or corrupted manifest can never commit under a digest its
        bytes do not hash to.
        """
        if self.exists(manifest.digest):
            return self._manifests[manifest.digest]
        hasher = ContentHasher()
        for digest, size in manifest.chunks:
            path = self._chunk_dir / digest
            if not path.exists():
                raise BlobError(f"cannot commit {manifest.digest}: missing chunk {digest}")
            data = path.read_bytes()
            if len(data) != size:
                raise BlobError(f"cannot commit {manifest.digest}: chunk {digest} has wrong size")
            hasher.update(data)
        actual = hasher.hexdigest()
        if actual != manifest.digest:
            raise BlobDigestMismatch(
                f"assembled content hashes to {actual}, not the claimed {manifest.digest}"
            )
        self._commit(manifest)
        return manifest

    def _commit(self, manifest: BlobManifest) -> None:
        with self._lock:
            fresh = manifest.digest not in self._manifests
            if fresh:
                tmp = self._manifest_dir / f".tmp-{uuid.uuid4().hex}"
                tmp.write_text(json.dumps(manifest.to_json()))
                os.replace(tmp, self._manifest_dir / f"{manifest.digest}.json")
                self._manifests[manifest.digest] = manifest
                self._committed_at[manifest.digest] = time.time()
        if fresh:
            self._journal(
                {"type": "blob", "event": "commit", "digest": manifest.digest, "size": manifest.size}
            )

    # ------------------------------------------------------------- reading

    def exists(self, digest: str) -> bool:
        with self._lock:
            return digest in self._manifests

    def manifest(self, digest: str) -> BlobManifest:
        with self._lock:
            manifest = self._manifests.get(digest)
        if manifest is None:
            raise BlobNotFound(f"no blob {digest!r} in this store")
        return manifest

    def open_range(self, digest: str, start: int = 0, end: "int | None" = None) -> Iterator[bytes]:
        """Iterate the bytes of ``[start, end]`` (inclusive, whole blob by
        default) one stored chunk at a time — constant memory whatever the
        blob size, which is what the streaming GET serves from."""
        manifest = self.manifest(digest)
        last = manifest.size - 1 if end is None else min(end, manifest.size - 1)
        if manifest.size == 0 or start > last:
            return
        offset = 0
        for chunk_digest, size in manifest.chunks:
            chunk_start, chunk_last = offset, offset + size - 1
            offset += size
            if chunk_last < start:
                continue
            if chunk_start > last:
                break
            data = (self._chunk_dir / chunk_digest).read_bytes()
            lo = max(start - chunk_start, 0)
            hi = min(last - chunk_start, size - 1)
            yield data[lo : hi + 1]

    def read(self, digest: str) -> bytes:
        return b"".join(self.open_range(digest))

    # ---------------------------------------------------------------- pins

    def pin(self, digest: str, owner: str) -> None:
        """Hold ``digest`` against GC on behalf of ``owner`` (journaled)."""
        if not self.exists(digest):
            raise BlobNotFound(f"cannot pin uncommitted blob {digest!r}")
        with self._lock:
            owners = self._pins.setdefault(digest, set())
            fresh = owner not in owners
            owners.add(owner)
        if fresh:
            self._journal({"type": "blob", "event": "pin", "digest": digest, "owner": owner})

    def unpin(self, digest: str, owner: str) -> None:
        """Release ``owner``'s pin (no-op when absent, journaled when held)."""
        with self._lock:
            owners = self._pins.get(digest)
            held = owners is not None and owner in owners
            if held:
                owners.discard(owner)
                if not owners:
                    del self._pins[digest]
        if held:
            self._journal({"type": "blob", "event": "unpin", "digest": digest, "owner": owner})

    def pins(self, digest: str) -> set[str]:
        with self._lock:
            return set(self._pins.get(digest, ()))

    # ------------------------------------------------------------ lifecycle

    def recover(self, table: dict[str, dict[str, Any]]) -> None:
        """Adopt the journal replay's blob table after a cold restart.

        Pins are restored exactly as journaled; a pin whose blob has no
        manifest on disk (lost to an unsynced crash) is dropped with a
        warning rather than resurrecting a blob that has no bytes.
        """
        with self._lock:
            for digest, entry in table.items():
                if digest not in self._manifests:
                    if entry.get("pins"):
                        logger.warning(
                            "dropping pins for blob %s: journaled but no manifest on disk", digest
                        )
                    continue
                owners = {str(owner) for owner in entry.get("pins", [])}
                if owners:
                    self._pins[digest] = owners

    def export(self) -> list[dict[str, Any]]:
        """Journal-shaped records reproducing current state (for snapshots)."""
        records: list[dict[str, Any]] = []
        with self._lock:
            for digest, manifest in self._manifests.items():
                records.append(
                    {"type": "blob", "event": "commit", "digest": digest, "size": manifest.size}
                )
                for owner in sorted(self._pins.get(digest, ())):
                    records.append(
                        {"type": "blob", "event": "pin", "digest": digest, "owner": owner}
                    )
        return records

    def gc(self, grace: "float | None" = None) -> dict[str, int]:
        """Collect unpinned blobs and orphan chunks; returns counters.

        A committed blob is collected only when it has no pins and its
        commit is older than ``grace`` seconds. Chunks survive as long as
        any surviving manifest references them (dedup means a chunk may
        outlive the blob it arrived with).
        """
        grace = self.gc_grace if grace is None else grace
        horizon = time.time() - grace
        collected: list[str] = []
        with self._lock:
            for digest in list(self._manifests):
                if self._pins.get(digest):
                    continue
                if self._committed_at.get(digest, 0.0) > horizon:
                    continue
                with contextlib.suppress(OSError):
                    (self._manifest_dir / f"{digest}.json").unlink()
                del self._manifests[digest]
                self._committed_at.pop(digest, None)
                collected.append(digest)
            live_chunks = {
                chunk_digest
                for manifest in self._manifests.values()
                for chunk_digest, _size in manifest.chunks
            }
            chunks_removed = 0
            for path in self._chunk_dir.iterdir():
                if path.name in live_chunks:
                    continue
                if path.name.startswith(".tmp-") and path.stat().st_mtime > horizon:
                    continue  # an upload may still be renaming it into place
                if not path.name.startswith(".tmp-") and path.stat().st_mtime > horizon:
                    continue  # a chunk of an upload that has not committed yet
                with contextlib.suppress(OSError):
                    path.unlink()
                    chunks_removed += 1
            self.blobs_collected += len(collected)
        for digest in collected:
            self._journal({"type": "blob", "event": "collect", "digest": digest})
        return {"blobs": len(collected), "chunks": chunks_removed}

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "blobs": len(self._manifests),
                "bytes": sum(m.size for m in self._manifests.values()),
                "pinned": sum(1 for d in self._manifests if self._pins.get(d)),
                "chunks_deduped": self.chunks_deduped,
                "blobs_collected": self.blobs_collected,
                "chunk_size": self.chunk_size,
            }

    def _journal(self, record: dict[str, Any]) -> None:
        if self.journal_fn is None:
            return
        try:
            self.journal_fn(record)
        except Exception as error:  # noqa: BLE001 - journaling is best-effort
            logger.error("blob journal append failed for %s: %s", record.get("digest"), error)
