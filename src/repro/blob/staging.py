"""Staging: pulling a remote blob into a local store chunk by chunk.

This is the consumer half of by-reference data passing. A workflow block
receives a blob *reference* (digest + the owning container's blob URL);
before the adapter runs, the consuming container stages the content into
its own blob store — fetching the manifest, then only the chunks it does
not already hold, each with a ranged GET sized to one chunk. The engine
never touches the bytes, transfers are restartable at chunk granularity,
and cross-container dedup falls out of content addressing: a chunk shared
with any previously staged blob is never fetched again.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.blob.store import BlobError, BlobManifest, BlobStore
from repro.http.client import RestClient
from repro.http.registry import TransportRegistry
from repro.runtime.trace import span

__all__ = ["StagingError", "stage_blob"]


class StagingError(BlobError):
    """A remote blob could not be staged (recoverable: fail the job, not
    the worker)."""


def stage_blob(
    store: BlobStore,
    registry: TransportRegistry,
    uri: str,
    digest: str,
    max_bytes: "int | None" = None,
    timeout: "float | None" = None,
) -> BlobManifest:
    """Pull blob ``digest`` from ``uri`` (its resource on the owning
    container) into ``store``; returns the committed manifest.

    Already-present blobs return immediately. ``max_bytes`` caps the
    advertised size before any content moves; ``timeout`` bounds the whole
    transfer with a monotonic deadline checked between chunks (each
    individual read is additionally bounded by the transport's socket
    timeout). Commit re-verifies the full content digest, so a lying or
    corrupted producer cannot plant wrong bytes under a digest.
    """
    if store.exists(digest):
        return store.manifest(digest)
    with span("blob.stage", labels={"digest": digest[:16]}):
        return _stage_remote(store, registry, uri, digest, max_bytes, timeout)


def _stage_remote(
    store: BlobStore,
    registry: TransportRegistry,
    uri: str,
    digest: str,
    max_bytes: "int | None",
    timeout: "float | None",
) -> BlobManifest:
    deadline = None if timeout is None else time.monotonic() + timeout
    client = RestClient(registry)
    try:
        raw = client.get_bytes(f"{uri}/manifest", max_bytes=max_bytes)
        manifest = BlobManifest.from_json(json.loads(raw))
    except (ValueError, BlobError) as exc:
        raise StagingError(f"cannot fetch blob manifest from {uri!r}: {exc}") from exc
    if manifest.digest != digest:
        raise StagingError(
            f"manifest at {uri!r} describes {manifest.digest}, not the referenced {digest}"
        )
    if max_bytes is not None and manifest.size > max_bytes:
        raise StagingError(
            f"blob {digest} is {manifest.size} bytes, over the {max_bytes}-byte staging limit"
        )
    offset = 0
    for chunk_digest, size in manifest.chunks:
        start = offset
        offset += size
        if store.has_chunk(chunk_digest):
            continue  # cross-blob dedup: never re-fetch a chunk we hold
        if deadline is not None and time.monotonic() > deadline:
            raise StagingError(f"staging blob {digest} from {uri!r} exceeded its deadline")
        chunk = client.get_bytes(
            uri, headers={"Range": f"bytes={start}-{start + size - 1}"}
        )
        try:
            store.add_chunk(chunk_digest, chunk)
        except BlobError as exc:
            raise StagingError(f"bad chunk from {uri!r}: {exc}") from exc
    try:
        return store.commit_manifest(manifest)
    except BlobError as exc:
        raise StagingError(f"cannot commit staged blob {digest}: {exc}") from exc


def blob_ref_target(reference: dict[str, Any]) -> "tuple[str, str]":
    """Split a blob reference into ``(uri, digest)`` for staging."""
    from repro.core.filerefs import blob_digest, file_uri

    return file_uri(reference), blob_digest(reference)
