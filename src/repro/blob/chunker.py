"""Fixed-size rechunking of arbitrary byte streams.

The blob store addresses chunks by content, so two uploads of the same
bytes must produce the same chunk sequence whatever buffer sizes the
producers happened to write with. :func:`rechunk` normalizes any iterable
of buffers into exact ``chunk_size`` pieces (the last one may be short),
which is what makes chunk-level dedup deterministic.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: Default blob chunk size. Large enough that per-chunk overhead (one
#: file, one digest, one ranged GET when staging) stays negligible, small
#: enough that a chunk is a cheap unit of retry and dedup.
DEFAULT_CHUNK_SIZE = 1024 * 1024


def rechunk(source: "bytes | Iterable[bytes]", chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[bytes]:
    """Yield ``source`` as exact ``chunk_size`` pieces (last may be short).

    The concatenation of the output equals the concatenation of the input
    for every input chunking — the property test pins this.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    if isinstance(source, (bytes, bytearray, memoryview)):
        source = (bytes(source),)
    pending = bytearray()
    for piece in source:
        if not piece:
            continue
        pending.extend(piece)
        while len(pending) >= chunk_size:
            yield bytes(pending[:chunk_size])
            del pending[:chunk_size]
    if pending:
        yield bytes(pending)
