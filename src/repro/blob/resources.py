"""REST resources of the blob data plane.

Mounted beside the service resources on every container (and proxied by
the gateway), giving the federation a uniform byte-transfer interface::

    GET  /blobs                    store statistics
    POST /blobs                    upload; 201 with the blob reference
    PUT  /blobs/{digest}           upload verified against a claimed digest
    GET  /blobs/{digest}           content (streaming; honours Range)
    GET  /blobs/{digest}/manifest  the chunk manifest (what staging reads)

Uploads stream from the request body spool into the store one chunk at a
time and downloads stream manifest chunks into the response, so neither
direction ever holds a whole blob in memory.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.blob.store import BlobDigestMismatch, BlobNotFound, BlobStore
from repro.core.filerefs import make_blob_ref
from repro.http.app import RestApp
from repro.http.messages import HttpError, Request, Response

__all__ = ["blob_uri", "mount_blob_store"]

OCTET_STREAM = "application/octet-stream"


def blob_uri(base_uri: str, digest: str) -> str:
    return f"{base_uri.rstrip('/')}/blobs/{digest}"


def mount_blob_store(
    app: RestApp,
    store: BlobStore,
    base_uri: "str | Callable[[], str]" = "",
) -> None:
    """Wire the blob resources for ``store`` under ``/blobs``.

    ``base_uri`` (the container's advertised address, callable when not
    fixed yet) is used to build the ``$file`` URI in upload responses.
    """

    def _advertised() -> str:
        current = base_uri() if callable(base_uri) else base_uri
        return current.rstrip("/")

    def _reference(manifest) -> dict[str, Any]:
        return make_blob_ref(
            manifest.digest,
            blob_uri(_advertised(), manifest.digest),
            size=manifest.size,
            content_type=manifest.content_type,
        )

    def _upload(request: Request, expected: "str | None" = None) -> Response:
        content_type = request.content_type or OCTET_STREAM
        upload = store.begin_upload(content_type=content_type)
        try:
            for piece in request.body_chunks():
                upload.write(piece)
            manifest = upload.commit(expected=expected)
        except BlobDigestMismatch as exc:
            upload.abort()
            raise HttpError(422, str(exc)) from exc
        except Exception:
            upload.abort()
            raise
        return Response.created(
            blob_uri(_advertised(), manifest.digest), _reference(manifest)
        )

    def stats(request: Request) -> Response:
        return Response.json(store.stats())

    def post_blob(request: Request) -> Response:
        return _upload(request)

    def put_blob(request: Request, digest: str) -> Response:
        return _upload(request, expected=digest)

    def get_blob(request: Request, digest: str) -> Response:
        try:
            manifest = store.manifest(digest)
        except BlobNotFound as exc:
            raise HttpError(404, str(exc)) from exc
        span = request.byte_range(manifest.size) if manifest.size else None
        if span is None:
            start, end = 0, manifest.size - 1
            response = Response.streamed(
                store.open_range(digest),
                length=manifest.size,
                content_type=manifest.content_type or OCTET_STREAM,
            )
        else:
            start, end = span
            response = Response.streamed(
                store.open_range(digest, start, end),
                length=end - start + 1,
                status=206,
                content_type=manifest.content_type or OCTET_STREAM,
            )
            response.headers.set("Content-Range", f"bytes {start}-{end}/{manifest.size}")
        response.headers.set("Accept-Ranges", "bytes")
        response.headers.set("ETag", f'"{digest}"')
        return response

    def get_manifest(request: Request, digest: str) -> Response:
        try:
            manifest = store.manifest(digest)
        except BlobNotFound as exc:
            raise HttpError(404, str(exc)) from exc
        return Response.json(manifest.to_json())

    app.route("GET", "/blobs", stats)
    app.route("POST", "/blobs", post_blob)
    app.route("PUT", "/blobs/{digest}", put_blob)
    app.route("GET", "/blobs/{digest}", get_blob)
    app.route("GET", "/blobs/{digest}/manifest", get_manifest)
