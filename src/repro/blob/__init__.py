"""repro.blob — the content-addressed streaming data plane.

Jobs carry *references*, this subsystem carries *bytes*: chunked
content-addressed storage (:mod:`repro.blob.store`), chunk-wise transfer
between containers (:mod:`repro.blob.staging`) and the REST resources
that expose both (:mod:`repro.blob.resources`).
"""

from repro.blob.chunker import DEFAULT_CHUNK_SIZE, rechunk
from repro.blob.resources import blob_uri, mount_blob_store
from repro.blob.staging import StagingError, stage_blob
from repro.blob.store import (
    BlobDigestMismatch,
    BlobError,
    BlobManifest,
    BlobNotFound,
    BlobStore,
    BlobUpload,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "BlobDigestMismatch",
    "BlobError",
    "BlobManifest",
    "BlobNotFound",
    "BlobStore",
    "BlobUpload",
    "StagingError",
    "blob_uri",
    "mount_blob_store",
    "rechunk",
    "stage_blob",
]
