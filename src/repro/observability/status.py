"""The gateway's platform-wide ``/status`` aggregate.

``gateway_status`` fans out to every replica's ``/metrics`` resource,
parses the exposition pages, and merges them into one document: per-
replica health (reachability, scrape outcome, request counts, error
rate, queue depth) plus platform percentiles computed by summing the
replicas' latency histogram buckets — the same estimate an external
Prometheus would produce with ``histogram_quantile`` over a ``sum by
(le)``.  A replica that cannot be scraped is reported, not omitted:
missing eyes are themselves a health signal.

``verify_trace_tree`` is the shared invariant checker for trace trees —
used by the hypothesis property tests, the chaos schedules, and anyone
debugging a trace by hand.
"""

from __future__ import annotations

from typing import Any

from repro.observability.promtext import Family, histogram_quantile, parse_metrics

__all__ = ["gateway_status", "verify_trace_tree"]

#: Slack for comparing wall-clock span starts taken on different
#: monotonic bases (start is time.time(), duration is perf_counter
#: delta), and across processes on one host.
_CLOCK_SLACK = 0.050


def _merge_buckets(target: dict[float, float], family: "Family | None",
                   method: str = "POST") -> None:
    if family is None:
        return
    for bound, count in family.buckets(method=method):
        target[bound] = target.get(bound, 0.0) + count


def _scrape_summary(families: dict[str, Family]) -> dict[str, Any]:
    requests = families.get("mc_http_requests_total")
    total = errors = 0.0
    if requests is not None:
        for sample in requests.samples:
            total += sample.value
            if sample.labels.get("status", "").startswith("5"):
                errors += sample.value
    summary: dict[str, Any] = {
        "requests_total": total,
        "error_rate": (errors / total) if total else 0.0,
    }
    queued = families.get("mc_pool_queued")
    if queued is not None:
        summary["queue_depth"] = queued.total()
    jobs = families.get("mc_jobs")
    if jobs is not None:
        summary["jobs"] = {
            sample.labels.get("state", "?"): sample.value for sample in jobs.samples
        }
    latency = families.get("mc_http_request_seconds")
    if latency is not None:
        buckets = latency.buckets(method="POST")
        if buckets and buckets[-1][1]:
            summary["submit_p99_seconds"] = histogram_quantile(0.99, buckets)
    return summary


def _merge_tenant_families(tenants: dict[str, dict], families: dict[str, Family]) -> None:
    """Fold one process's per-tenant families into the aggregate."""

    def row(tenant: str) -> dict:
        return tenants.setdefault(tenant, {
            "requests_total": 0.0, "shed_total": 0.0,
            "cpu_seconds_used": 0.0, "disk_bytes_used": 0.0,
            "_buckets": {},
        })

    for name, key in (("mc_tenant_requests_total", "requests_total"),
                      ("mc_tenant_shed_total", "shed_total"),
                      ("mc_tenant_cpu_seconds_used", "cpu_seconds_used"),
                      ("mc_tenant_disk_bytes_used", "disk_bytes_used")):
        family = families.get(name)
        if family is None:
            continue
        for sample in family.samples:
            tenant = sample.labels.get("tenant")
            if tenant:
                row(tenant)[key] += sample.value
    latency = families.get("mc_tenant_request_seconds")
    if latency is not None:
        seen = {s.labels.get("tenant") for s in latency.samples}
        for tenant in sorted(t for t in seen if t):
            buckets = row(tenant)["_buckets"]
            for bound, count in latency.buckets(tenant=tenant):
                buckets[bound] = buckets.get(bound, 0.0) + count


def _tenant_report(tenants: dict[str, dict], gate: Any) -> dict[str, dict]:
    """Finish the aggregate: percentiles from merged buckets, quota
    standings from the gateway's own registry."""
    standings = {}
    if gate is not None:
        standings = {
            entry["tenant"]: entry for entry in gate.registry.standings()
        }
        for tenant in standings:
            tenants.setdefault(tenant, {
                "requests_total": 0.0, "shed_total": 0.0,
                "cpu_seconds_used": 0.0, "disk_bytes_used": 0.0,
                "_buckets": {},
            })
    report: dict[str, dict] = {}
    for tenant, row in sorted(tenants.items()):
        buckets = sorted(row.pop("_buckets").items(), key=lambda pair: pair[0])
        if buckets and buckets[-1][1]:
            row["latency_seconds"] = {
                f"p{int(q * 100)}": histogram_quantile(q, buckets)
                for q in (0.5, 0.9, 0.99)
            }
        standing = standings.get(tenant)
        if standing is not None:
            row["quota"] = {
                "weight": standing["weight"],
                "priority": standing["priority"],
                "cpu_quota": standing["cpu_quota"],
                "disk_quota": standing["disk_quota"],
                "over_quota": standing["over_quota"],
            }
        report[tenant] = row
    return report


def gateway_status(gateway: Any) -> dict[str, Any]:
    """Aggregate the fleet's metrics into one status document."""
    merged_buckets: dict[float, float] = {}
    total_requests = total_errors = 0.0
    queue_depth = 0.0
    jobs: dict[str, float] = {}
    tenants: dict[str, dict] = {}
    replicas: list[dict[str, Any]] = []
    healthy = 0

    for entry in gateway.replicas.snapshot():
        report: dict[str, Any] = {
            "id": entry["id"],
            "url": entry["url"],
            "state": entry["state"],
            "in_flight": entry["in_flight"],
        }
        if entry["state"] == "HEALTHY":
            healthy += 1
        try:
            response = gateway.registry.request("GET", entry["url"] + "/metrics")
            if response.status != 200:
                raise ValueError(f"scrape answered {response.status}")
            families = parse_metrics(response.body.decode("utf-8"))
        except Exception as exc:  # noqa: BLE001 - unreachable replica is a *finding*
            report["scrape"] = f"error: {exc}"
            replicas.append(report)
            continue
        report["scrape"] = "ok"
        summary = _scrape_summary(families)
        report["metrics"] = summary
        total_requests += summary["requests_total"]
        total_errors += summary["error_rate"] * summary["requests_total"]
        queue_depth += summary.get("queue_depth", 0.0)
        for state, count in summary.get("jobs", {}).items():
            jobs[state] = jobs.get(state, 0.0) + count
        _merge_buckets(merged_buckets, families.get("mc_http_request_seconds"))
        _merge_tenant_families(tenants, families)
        replicas.append(report)

    gate = getattr(gateway, "tenant_gate", None)
    if gateway.metrics is not None and gate is not None:
        # the gateway's own shed counters and rate-limit view
        _merge_tenant_families(tenants, parse_metrics(gateway.metrics.render()))

    ordered = sorted(merged_buckets.items(), key=lambda pair: pair[0])
    percentiles = {
        f"p{int(q * 100)}": histogram_quantile(q, ordered)
        for q in (0.5, 0.9, 0.99)
    } if ordered and ordered[-1][1] else {}

    handoffs = getattr(gateway, "handoffs", None)
    autoscaler = getattr(gateway, "autoscaler", None)
    return {
        "gateway": gateway.name,
        "uri": gateway.base_uri,
        "policy": gateway.policy_name,
        "retry_budget": gateway.retry_budget.balance,
        "idempotency_entries": len(gateway.idempotency),
        "cache": gateway.cache_stats,
        "replicas": replicas,
        "handoffs": handoffs.snapshot() if handoffs is not None else {},
        "autoscaler": autoscaler.snapshot() if autoscaler is not None else None,
        "tenants": _tenant_report(tenants, gate),
        "platform": {
            "replicas_total": len(replicas),
            "replicas_healthy": healthy,
            "replicas_draining": sum(
                1 for entry in gateway.replicas.snapshot() if entry.get("draining")
            ),
            "requests_total": total_requests,
            "error_rate": (total_errors / total_requests) if total_requests else 0.0,
            "queue_depth": queue_depth,
            "jobs": jobs,
            "submit_latency_seconds": percentiles,
        },
    }


def verify_trace_tree(spans: list[dict], complete: bool = True) -> list[str]:
    """Check the trace-tree invariants over a flat span list.

    Returns a list of violation descriptions (empty = well-formed):

    - span ids unique; durations non-negative
    - with ``complete=True``: exactly one root, and every parent id
      resolves within the list
    - a parent never starts after its child (within clock slack)
    - a ``child``-linked span's interval nests inside its parent's
      (``follows``-linked spans only need the start ordering: they
      outlive the request span that caused them)
    """
    problems: list[str] = []
    by_id: dict[str, dict] = {}
    for record in spans:
        span_id = record.get("span_id")
        if span_id in by_id:
            problems.append(f"duplicate span id {span_id}")
        by_id[span_id] = record
        if record.get("duration", 0) < 0:
            problems.append(f"negative duration on {record.get('name')} ({span_id})")

    roots = [s for s in spans if not s.get("parent_id") or s["parent_id"] not in by_id]
    if complete:
        named_roots = [s for s in roots if not s.get("parent_id")]
        orphans = [s for s in roots if s.get("parent_id")]
        for orphan in orphans:
            problems.append(
                f"span {orphan.get('name')} ({orphan['span_id']}) references "
                f"missing parent {orphan['parent_id']}"
            )
        if len(named_roots) != 1:
            problems.append(f"expected a single root span, found {len(named_roots)}")

    trace_ids = {s.get("trace_id") for s in spans}
    if len(trace_ids) > 1:
        problems.append(f"spans from {len(trace_ids)} different traces mixed together")

    for record in spans:
        parent = by_id.get(record.get("parent_id") or "")
        if parent is None:
            continue
        if record["start"] < parent["start"] - _CLOCK_SLACK:
            problems.append(
                f"span {record.get('name')} starts before its parent "
                f"{parent.get('name')} ({record['start']:.6f} < {parent['start']:.6f})"
            )
        if record.get("link", "child") == "child":
            parent_end = parent["start"] + parent.get("duration", 0.0)
            child_end = record["start"] + record.get("duration", 0.0)
            if child_end > parent_end + _CLOCK_SLACK:
                problems.append(
                    f"child span {record.get('name')} ends {child_end - parent_end:.6f}s "
                    f"after its parent {parent.get('name')}"
                )
    return problems
