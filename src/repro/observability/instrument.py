"""Wiring the metrics registry and tracer into the serving stack.

Three pieces, deliberately kept out of :mod:`repro.http.app` so the REST
kernel stays observability-agnostic:

- :class:`ObservabilityMiddleware` — outermost middleware: opens the
  ``http.request`` span (joining an incoming ``X-Trace`` or starting a
  fresh trace) and maintains the request counter / latency histogram /
  in-flight gauge.  Deferred long-polls are handled precisely: the
  in-flight gauge drops when the connection parks, and the latency
  sample lands when the deferred response actually renders.
- :func:`mount_metrics` — the ``GET /metrics`` resource.
- :func:`instrument_container` / :func:`instrument_gateway` — register
  scrape-time collectors over the state each process already maintains
  (pool stats, job stores, journal counters, cache stats, blob stats,
  server connection counts; replica set, breakers, retry budget).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any

from repro.http.app import DeferredResponse, RestApp
from repro.http.messages import HttpError, Request, Response
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.trace import (
    TRACE_HEADER,
    SpanContext,
    Tracer,
    new_span_id,
    new_trace_id,
    parse_trace_header,
    reset_span_context,
    set_span_context,
)

__all__ = [
    "METRICS_CONTENT_TYPE",
    "ObservabilityMiddleware",
    "mount_metrics",
    "instrument_container",
    "instrument_gateway",
    "instrument_wms",
]

METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObservabilityMiddleware:
    """Per-request metrics and trace-context activation.

    The request thread does the bare minimum: derive the trace position,
    flip the in-flight gauge, time the handler, and append one compact
    tuple to a bounded deque.  Turning those tuples into counter
    increments, histogram samples and tracer records happens lazily —
    when the registry is scraped or the tracer is read — so the submit
    hot path never pays aggregation locks (measured: deferral keeps the
    plane inside its <3% TCP submit-overhead budget; eager aggregation
    was 4x over).  A deque overflow silently drops the *oldest* pending
    samples; with the default headroom that only happens if nothing
    scrapes this process for tens of thousands of requests.
    """

    #: Pending raw samples held between scrapes.
    PENDING_LIMIT = 65536

    def __init__(self, metrics: "MetricsRegistry | None" = None,
                 tracer: "Tracer | None" = None):
        self.tracer = tracer
        self._pending: deque = deque(maxlen=self.PENDING_LIMIT)
        if metrics is not None:
            self.requests = metrics.counter(
                "mc_http_requests_total",
                "HTTP requests handled, by method and response status.",
                labels=("method", "status"),
            )
            self.latency = metrics.histogram(
                "mc_http_request_seconds",
                "Request handling latency in seconds, by method.",
                labels=("method",),
            )
            self.in_flight = metrics.gauge(
                "mc_http_requests_in_flight",
                "Requests currently in a handler (parked long-polls excluded).",
            )
            metrics.on_scrape(self._flush_pending)
        else:
            self.requests = self.latency = self.in_flight = None
        if tracer is not None:
            tracer.on_read(self._flush_pending)

    def _flush_pending(self) -> None:
        """Drain buffered samples into the families and the tracer."""
        pending = self._pending
        requests, latency, tracer = self.requests, self.latency, self.tracer
        while True:
            try:
                method, status, elapsed, path, trace_id, span_id, parent_id, start_wall = (
                    pending.popleft()
                )
            except IndexError:
                return
            if requests is not None:
                requests.labels(method, status).inc()
                latency.labels(method).observe(elapsed)
            if tracer is not None and trace_id is not None:
                tracer.record({
                    "trace_id": trace_id,
                    "span_id": span_id,
                    "parent_id": parent_id,
                    "name": "http.request",
                    "start": start_wall,
                    "duration": elapsed,
                    "labels": {"method": method, "path": path},
                    "link": "child",
                    "component": tracer.name,
                })

    def _resumed_render(self, render, method: str, path: str, trace, start_wall: float,
                        start: float):
        def resumed() -> Response:
            response = render()
            self._pending.append((
                method, response.status, time.perf_counter() - start, path,
                trace[0], trace[1], trace[2], start_wall,
            ))
            return response

        return resumed

    def __call__(self, request: Request, call_next) -> Response:
        tracer = self.tracer
        token = None
        trace_id = span_id = parent_id = None
        if tracer is not None:
            parsed = parse_trace_header(request.headers.get(TRACE_HEADER))
            if parsed is not None:
                trace_id, parent_id = parsed
            else:
                trace_id = new_trace_id()
            request.context.setdefault("trace_id", trace_id)
            span_id = new_span_id()
            # the handler's ambient position: child spans and outbound
            # X-Trace headers parent under this request's span
            token = set_span_context(SpanContext(tracer, trace_id, span_id))
        method = request.method
        path = request.path
        in_flight = self.in_flight
        if in_flight is not None:
            in_flight.inc()
        pending = self._pending
        start_wall = time.time()
        start = time.perf_counter()
        try:
            response = call_next(request)
            pending.append((
                method, response.status, time.perf_counter() - start, path,
                trace_id, span_id, parent_id, start_wall,
            ))
            return response
        except DeferredResponse as deferred:
            # the connection parks: the latency sample lands when the
            # deferred render runs, off this thread
            deferred.render = self._resumed_render(
                deferred.render, method, path,
                (trace_id, span_id, parent_id), start_wall, start,
            )
            raise
        except HttpError as error:
            pending.append((
                method, error.status, time.perf_counter() - start, path,
                trace_id, span_id, parent_id, start_wall,
            ))
            raise
        except BaseException:
            # the app kernel converts anything unexpected into a 500
            pending.append((
                method, 500, time.perf_counter() - start, path,
                trace_id, span_id, parent_id, start_wall,
            ))
            raise
        finally:
            if in_flight is not None:
                in_flight.dec()
            if token is not None:
                reset_span_context(token)


def mount_metrics(app: RestApp, registry: MetricsRegistry) -> None:
    """Serve ``registry`` as ``GET /metrics`` in exposition format."""

    def metrics_handler(request: Request) -> Response:
        return Response.text(registry.render(), content_type=METRICS_CONTENT_TYPE)

    app.route("GET", "/metrics", metrics_handler)


def _jobs_by_state(container) -> list[tuple[tuple[str], int]]:
    tally: dict[str, int] = {}
    for service in container.services:
        for job in service.jobs.list():
            state = job.state.value
            tally[state] = tally.get(state, 0) + 1
    return [((state,), count) for state, count in sorted(tally.items())]


def instrument_container(container: Any) -> None:
    """Register scrape-time collectors over a ServiceContainer's state."""
    metrics: MetricsRegistry = container.metrics
    manager = container.job_manager
    tracer: Tracer = container.tracer

    metrics.collector(
        "mc_pool_queued", "Handler-pool tasks waiting for a thread.",
        "gauge", lambda: manager.stats.queued)
    metrics.collector(
        "mc_pool_running", "Handler-pool tasks currently executing.",
        "gauge", lambda: manager.stats.running)
    metrics.collector(
        "mc_pool_completed_total", "Handler-pool tasks finished successfully.",
        "counter", lambda: manager.stats.completed)
    metrics.collector(
        "mc_pool_failed_total", "Handler-pool tasks that raised.",
        "counter", lambda: manager.stats.failed)
    metrics.collector(
        "mc_services_deployed", "Services currently deployed in this container.",
        "gauge", lambda: len(container.services))
    metrics.collector(
        "mc_jobs", "Jobs held by deployed services, by lifecycle state.",
        "gauge", lambda: _jobs_by_state(container), labels=("state",))

    metrics.collector(
        "mc_trace_spans_recorded_total", "Trace spans accepted into the buffer.",
        "counter", lambda: tracer.spans_recorded)
    metrics.collector(
        "mc_trace_spans_dropped_total", "Trace spans dropped by buffer bounds.",
        "counter", lambda: tracer.spans_dropped)
    metrics.collector(
        "mc_trace_spans_buffered", "Trace spans currently buffered.",
        "gauge", lambda: tracer.buffered_spans)

    journal = container.journal
    if journal is not None:
        metrics.collector(
            "mc_journal_records_total", "Records appended to the write-ahead journal.",
            "counter", lambda: journal.records_appended)
        metrics.collector(
            "mc_journal_segments_total", "Journal segments created.",
            "counter", lambda: journal.segments_created)
        metrics.collector(
            "mc_journal_unsynced_records",
            "Appended records not yet covered by an fsync (group-commit lag).",
            "gauge", lambda: journal.unsynced_records)

    cache = container.cache
    if cache is not None:
        def cache_outcomes():
            stats = cache.stats()
            return [
                (("hit",), stats.hits),
                (("coalesced",), stats.coalesced),
                (("miss",), stats.misses),
            ]

        def cache_removals():
            stats = cache.stats()
            return [
                (("evicted",), stats.evictions),
                (("expired",), stats.expirations),
                (("invalidated",), stats.invalidations),
            ]

        metrics.collector(
            "mc_cache_lookups_total", "Result-cache claims, by outcome.",
            "counter", cache_outcomes, labels=("outcome",))
        metrics.collector(
            "mc_cache_removals_total", "Result-cache entries removed, by reason.",
            "counter", cache_removals, labels=("reason",))
        metrics.collector(
            "mc_cache_entries", "Result-cache done-tier entries held.",
            "gauge", lambda: len(cache))

    blobs = container.blobs

    def blob_stat(key):
        return lambda: blobs.stats()[key]

    metrics.collector("mc_blobs", "Blobs committed in the store.",
                      "gauge", blob_stat("blobs"))
    metrics.collector("mc_blob_bytes", "Total bytes across committed blobs.",
                      "gauge", blob_stat("bytes"))
    metrics.collector("mc_blob_pinned", "Blobs currently pinned against GC.",
                      "gauge", blob_stat("pinned"))
    metrics.collector("mc_blob_chunks_deduped_total",
                      "Chunk writes skipped because the chunk already existed.",
                      "counter", blob_stat("chunks_deduped"))
    metrics.collector("mc_blobs_collected_total", "Blobs removed by the GC.",
                      "counter", blob_stat("blobs_collected"))

    def server_stat(attribute):
        def read():
            server = getattr(container, "_server", None)
            if server is None:
                return 0
            return getattr(server, attribute, 0) or 0

        return read

    metrics.collector("mc_server_connections_accepted_total",
                      "TCP connections accepted by the server.",
                      "counter", server_stat("connections_accepted"))
    metrics.collector("mc_server_connections_timed_out_total",
                      "Idle TCP connections reaped by the keep-alive timeout.",
                      "counter", server_stat("connections_timed_out"))
    metrics.collector("mc_server_open_connections",
                      "TCP connections currently open.",
                      "gauge", server_stat("open_connections"))
    metrics.collector("mc_server_timer_entries",
                      "Entries scheduled on the event-loop timer wheel.",
                      "gauge", server_stat("timer_entries"))


def instrument_wms(wms: Any) -> None:
    """Register scrape-time collectors over a WorkflowManagementService."""
    metrics: MetricsRegistry = wms.metrics
    tracer: Tracer = wms.tracer

    def runs_by_state():
        tally: dict[str, int] = {}
        for name in wms.workflows:
            try:
                composite = wms.composite(name)
            except KeyError:
                continue  # undeployed between listing and lookup
            for job in composite.jobs.list():
                state = job.state.value
                tally[state] = tally.get(state, 0) + 1
        return [((state,), count) for state, count in sorted(tally.items())]

    metrics.collector(
        "mc_workflows_deployed", "Workflows currently deployed as composite services.",
        "gauge", lambda: len(wms.workflows))
    metrics.collector(
        "mc_jobs", "Workflow runs held by composite services, by lifecycle state.",
        "gauge", runs_by_state, labels=("state",))
    metrics.collector(
        "mc_trace_spans_recorded_total", "Trace spans accepted into the buffer.",
        "counter", lambda: tracer.spans_recorded)
    metrics.collector(
        "mc_trace_spans_dropped_total", "Trace spans dropped by buffer bounds.",
        "counter", lambda: tracer.spans_dropped)
    metrics.collector(
        "mc_trace_spans_buffered", "Trace spans currently buffered.",
        "gauge", lambda: tracer.buffered_spans)

    journal = wms.journal
    if journal is not None:
        metrics.collector(
            "mc_journal_records_total", "Records appended to the write-ahead journal.",
            "counter", lambda: journal.records_appended)
        metrics.collector(
            "mc_journal_segments_total", "Journal segments created.",
            "counter", lambda: journal.segments_created)
        metrics.collector(
            "mc_journal_unsynced_records",
            "Appended records not yet covered by an fsync (group-commit lag).",
            "gauge", lambda: journal.unsynced_records)

    def server_stat(attribute):
        def read():
            server = getattr(wms, "_server", None)
            if server is None:
                return 0
            return getattr(server, attribute, 0) or 0

        return read

    metrics.collector("mc_server_connections_accepted_total",
                      "TCP connections accepted by the server.",
                      "counter", server_stat("connections_accepted"))
    metrics.collector("mc_server_open_connections",
                      "TCP connections currently open.",
                      "gauge", server_stat("open_connections"))


_BREAKER_STATES = {"closed": 0, "open": 1, "half-open": 2}


def instrument_gateway(gateway: Any) -> None:
    """Register scrape-time collectors over a ServiceGateway's state."""
    metrics: MetricsRegistry = gateway.metrics

    def replicas_by_state():
        tally: dict[str, int] = {}
        for entry in gateway.replicas.snapshot():
            state = entry["state"]
            tally[state] = tally.get(state, 0) + 1
        return [((state,), count) for state, count in sorted(tally.items())]

    def replica_in_flight():
        return [((entry["id"],), entry["in_flight"])
                for entry in gateway.replicas.snapshot()]

    def breaker_states():
        return [
            ((entry["id"],), _BREAKER_STATES.get(str(entry.get("breaker", "")).lower(), 0))
            for entry in gateway.replicas.snapshot()
        ]

    def cache_outcomes():
        return [((outcome,), count)
                for outcome, count in sorted(gateway.cache_stats.items())]

    metrics.collector(
        "mc_gateway_replicas", "Replicas behind this gateway, by health state.",
        "gauge", replicas_by_state, labels=("state",))
    metrics.collector(
        "mc_gateway_replica_in_flight", "Requests in flight to each replica.",
        "gauge", replica_in_flight, labels=("replica",))
    def replica_draining():
        return [((entry["id"],), 1 if entry.get("draining") else 0)
                for entry in gateway.replicas.snapshot()]

    metrics.collector(
        "mc_gateway_breaker_state",
        "Per-replica circuit breaker state (0=closed, 1=open, 2=half-open).",
        "gauge", breaker_states, labels=("replica",))
    metrics.collector(
        "mc_gateway_replica_draining",
        "Whether each replica is draining for retirement (1=draining).",
        "gauge", replica_draining, labels=("replica",))
    metrics.collector(
        "mc_gateway_handoff_entries",
        "Retired-replica redirects the gateway still resolves.",
        "gauge", lambda: len(getattr(gateway, "handoffs", ())))
    metrics.collector(
        "mc_gateway_retry_budget", "Retry-budget tokens available.",
        "gauge", lambda: gateway.retry_budget.balance)
    metrics.collector(
        "mc_gateway_idempotency_entries", "Cached idempotent submit responses.",
        "gauge", lambda: len(gateway.idempotency))
    metrics.collector(
        "mc_gateway_cache_outcomes_total",
        "Replica result-cache outcomes observed on forwarded submits.",
        "counter", cache_outcomes, labels=("outcome",))

    def server_stat(attribute):
        def read():
            server = getattr(gateway, "_server", None)
            if server is None:
                return 0
            return getattr(server, attribute, 0) or 0

        return read

    metrics.collector("mc_server_connections_accepted_total",
                      "TCP connections accepted by the server.",
                      "counter", server_stat("connections_accepted"))
    metrics.collector("mc_server_open_connections",
                      "TCP connections currently open.",
                      "gauge", server_stat("open_connections"))
