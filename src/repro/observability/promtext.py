"""Parser for the Prometheus text exposition format (0.0.4).

Used by the gateway's ``/status`` aggregator to digest replica
``/metrics`` pages, by the conformance tests, and by the SLO benchmark
guard — the whole point of the exercise is that the numbers asserted in
CI come off the wire exactly as an external scraper would see them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Sample", "Family", "parse_metrics", "histogram_quantile"]


@dataclass
class Sample:
    name: str
    labels: dict[str, str]
    value: float


@dataclass
class Family:
    name: str
    kind: str = "untyped"
    help: str = ""
    samples: list[Sample] = field(default_factory=list)

    def value(self, **labels: str) -> float | None:
        """The first sample matching ``labels`` exactly (ignoring ``le``)."""
        for sample in self.samples:
            trimmed = {k: v for k, v in sample.labels.items() if k != "le"}
            if trimmed == labels and not sample.name.endswith(("_sum", "_count", "_bucket")):
                return sample.value
        return None

    def total(self) -> float:
        """Sum of plain (non-histogram-series) samples across label sets."""
        return sum(
            s.value for s in self.samples
            if not s.name.endswith(("_sum", "_count", "_bucket"))
        )

    def buckets(self, **labels: str) -> list[tuple[float, float]]:
        """``(le, cumulative_count)`` pairs for one histogram child."""
        pairs: list[tuple[float, float]] = []
        for sample in self.samples:
            if not sample.name.endswith("_bucket"):
                continue
            trimmed = {k: v for k, v in sample.labels.items() if k != "le"}
            if trimmed != labels:
                continue
            le = sample.labels.get("le", "")
            bound = math.inf if le == "+Inf" else float(le)
            pairs.append((bound, sample.value))
        pairs.sort(key=lambda p: p[0])
        return pairs

    def series(self, suffix: str, **labels: str) -> float | None:
        """The ``_sum``/``_count`` series value for one histogram child."""
        wanted = self.name + suffix
        for sample in self.samples:
            if sample.name == wanted and sample.labels == labels:
                return sample.value
        return None


def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        c = value[i]
        if c == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(nxt)
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        # label name up to '='
        eq = text.index("=", i)
        name = text[i:eq].strip().strip(",").strip()
        i = eq + 1
        if text[i] != '"':
            raise ValueError(f"unquoted label value at {text[i:]!r}")
        i += 1
        raw: list[str] = []
        while True:
            c = text[i]
            if c == "\\":
                raw.append(text[i:i + 2])
                i += 2
                continue
            if c == '"':
                i += 1
                break
            raw.append(c)
            i += 1
        labels[name] = _unescape("".join(raw))
        if i < len(text) and text[i] == ",":
            i += 1
    return labels


def _sample_family(sample_name: str, families: dict[str, Family]) -> str:
    """Map ``foo_bucket``/``foo_sum``/``foo_count`` onto family ``foo``."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families and families[base].kind == "histogram":
                return base
    return sample_name


def parse_metrics(text: str) -> dict[str, Family]:
    """Parse an exposition page into families keyed by base name.

    Raises ``ValueError`` on malformed lines — the conformance suite
    wants strictness, and /status treats a replica that serves garbage
    as unhealthy rather than silently partial.
    """
    families: dict[str, Family] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, Family(name)).help = _unescape(help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            kind = kind.strip()
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"unknown metric type {kind!r} for {name}")
            families.setdefault(name, Family(name)).kind = kind
            continue
        if line.startswith("#"):
            continue
        # sample line: name[{labels}] value
        brace = line.find("{")
        space = line.find(" ")
        if brace != -1 and (space == -1 or brace < space):
            name = line[:brace]
            close = line.rindex("}")
            labels = _parse_labels(line[brace + 1:close])
            value_text = line[close + 1:].strip().split()[0]
        else:
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed sample line: {line!r}")
            name, value_text = parts[0], parts[1]
            labels = {}
        value = float(value_text)
        family_name = _sample_family(name, families)
        family = families.setdefault(family_name, Family(family_name))
        family.samples.append(Sample(name, labels, value))
    return families


def histogram_quantile(q: float, buckets: list[tuple[float, float]]) -> float:
    """Prometheus-style quantile estimate from cumulative buckets."""
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total == 0:
        return 0.0
    rank = q * total
    previous_bound, previous_count = 0.0, 0.0
    for bound, count in buckets:
        if count >= rank and count > previous_count:
            if bound == math.inf:
                return previous_bound
            fraction = (rank - previous_count) / (count - previous_count)
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = (
            (bound, count) if bound != math.inf else (previous_bound, count)
        )
    return previous_bound
