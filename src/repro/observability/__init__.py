"""The observability plane: trace spans, /metrics, /status aggregation.

Builds on the primitives in :mod:`repro.runtime` (``MetricsRegistry``,
``Tracer``, the ``span``/``X-Trace`` context machinery) and wires them
into the serving stack: a middleware that times every request and joins
or starts traces, scrape-time collectors over the state every subsystem
already keeps, the ``/metrics`` resource, and the gateway's fleet-wide
``/status`` aggregate with platform percentiles.
"""

from repro.observability.instrument import (
    METRICS_CONTENT_TYPE,
    ObservabilityMiddleware,
    instrument_container,
    instrument_gateway,
    instrument_wms,
    mount_metrics,
)
from repro.observability.promtext import (
    Family,
    Sample,
    histogram_quantile,
    parse_metrics,
)
from repro.observability.status import gateway_status, verify_trace_tree

__all__ = [
    "METRICS_CONTENT_TYPE",
    "Family",
    "ObservabilityMiddleware",
    "Sample",
    "gateway_status",
    "histogram_quantile",
    "instrument_container",
    "instrument_gateway",
    "instrument_wms",
    "mount_metrics",
    "parse_metrics",
    "verify_trace_tree",
]
