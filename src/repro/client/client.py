"""The Python client library.

Typical use::

    proxy = ServiceProxy("http://host:9000/services/invert")
    print(proxy.describe().inputs)

    job = proxy.submit(n=200, method="block")
    result = job.result(timeout=600)       # waits, raises on failure

    quick = proxy(n=10)                     # submit + wait in one call
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.core.description import ServiceDescription
from repro.core.filerefs import file_uri, is_file_ref
from repro.core.jobs import JobState
from repro.http.client import IDEMPOTENCY_KEY_HEADER, RestClient, new_idempotency_key
from repro.http.registry import TransportRegistry


class JobFailedError(Exception):
    """The job ended FAILED or CANCELLED; carries the service's error."""

    def __init__(self, state: str, error: str, job_uri: str):
        super().__init__(f"job {job_uri} ended {state}: {error}")
        self.state = state
        self.error = error
        self.job_uri = job_uri


#: One long-poll block per request. Kept under the transports' socket
#: timeout; waits longer than this chain requests.
LONG_POLL_CHUNK = 10.0


class JobHandle:
    """A client-side view of one job resource."""

    def __init__(self, uri: str, client: RestClient):
        self.uri = uri
        self._client = client
        self._last: dict[str, Any] = {}
        #: The validator of the cached representation; polls send it as
        #: ``If-None-Match`` so an unchanged job answers 304, body-free.
        self._etag: str | None = None
        #: Whether the server honours ``?wait=``: None until observed,
        #: False once a long-poll GET provably returned early.
        self._long_poll: bool | None = None

    def _get(self, query: "Mapping[str, Any] | None" = None) -> dict[str, Any]:
        etag = self._etag if self._last else None
        representation, self._etag, not_modified = self._client.get_conditional(
            self.uri, etag=etag, query=query
        )
        if not not_modified:
            self._last = representation
        return self._last

    def refresh(self) -> dict[str, Any]:
        """``GET`` the job resource and cache its representation
        (conditionally: an unchanged job costs a 304, not a body)."""
        return self._get()

    def poll(self, wait: float = 0.0) -> dict[str, Any]:
        """One GET, long-polling up to ``wait`` seconds when supported.

        A conforming server blocks the full ``wait`` unless the job turns
        terminal; a server that ignores the parameter answers immediately,
        which is detected here and remembered so callers can fall back to
        plain polling.
        """
        if wait <= 0 or self._long_poll is False:
            return self.refresh()
        started = time.monotonic()
        self._get(query={"wait": f"{wait:g}"})
        elapsed = time.monotonic() - started
        if not JobState(self._last["state"]).terminal:
            if wait >= 0.1 and elapsed < wait / 2:
                self._long_poll = False
            elif self._long_poll is None and elapsed >= wait / 2:
                self._long_poll = True
        return self._last

    @property
    def long_poll_supported(self) -> "bool | None":
        return self._long_poll

    @property
    def representation(self) -> dict[str, Any]:
        return self._last or self.refresh()

    @property
    def state(self) -> JobState:
        return JobState(self.representation["state"])

    @property
    def done(self) -> bool:
        return JobState(self.refresh()["state"]).terminal

    def wait(self, timeout: float | None = None, poll: float = 0.05) -> "JobHandle":
        """Block until the job is terminal.

        The primary path long-polls (``GET ...?wait=``), so completion is
        answered by the server's own transition signal with no poll
        latency. Against servers that ignore ``wait`` the handle degrades
        to the paper's plain polling with gentle backoff.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        interval = poll
        while True:
            if self._long_poll is False:
                representation = self.refresh()
            else:
                chunk = LONG_POLL_CHUNK
                if deadline is not None:
                    chunk = min(chunk, max(deadline - time.monotonic(), 0.001))
                representation = self.poll(wait=chunk)
            if JobState(representation["state"]).terminal:
                return self
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"job {self.uri} still {self._last['state']} after {timeout}s")
            if self._long_poll is False:  # explicit fallback: backoff polling
                time.sleep(interval)
                interval = min(interval * 1.5, 1.0)

    def result(self, timeout: float | None = None, poll: float = 0.05) -> dict[str, Any]:
        """Wait for completion and return the outputs (or raise)."""
        self.wait(timeout=timeout, poll=poll)
        state = self._last["state"]
        if state != JobState.DONE.value:
            raise JobFailedError(state, self._last.get("error", ""), self.uri)
        return self._last.get("results", {})

    def cancel(self) -> None:
        """``DELETE`` the job resource (cancel or clean up)."""
        self._client.delete(self.uri)

    def fetch(self, output: str | Mapping[str, Any]) -> bytes:
        """Download an output file, by output name or reference envelope."""
        if isinstance(output, str):
            reference = self.result().get(output)
            if not is_file_ref(reference):
                raise ValueError(f"output {output!r} is not a file reference")
        else:
            reference = dict(output)
        return self._client.get_bytes(file_uri(reference))

    def __repr__(self) -> str:
        state = self._last.get("state", "?")
        return f"JobHandle({self.uri!r}, state={state})"


class ServiceProxy:
    """A client-side view of one computational web service."""

    def __init__(
        self,
        uri: str,
        registry: TransportRegistry | None = None,
        headers: Mapping[str, str] | None = None,
        idempotent_submits: bool = False,
        retry_after_cap: float = 5.0,
    ):
        self.uri = uri.rstrip("/")
        self._client = RestClient(
            registry, base=self.uri, headers=headers, retry_after_cap=retry_after_cap
        )
        #: When True every submit carries a fresh ``Idempotency-Key``, so a
        #: gateway in front of the service may safely replay the POST after
        #: a connection-level failure (and dedupe accidental duplicates).
        self.idempotent_submits = idempotent_submits

    def with_headers(self, headers: Mapping[str, str]) -> "ServiceProxy":
        """A copy sending extra headers (credentials, delegation)."""
        proxy = ServiceProxy.__new__(ServiceProxy)
        proxy.uri = self.uri
        proxy._client = self._client.with_headers(headers)
        proxy.idempotent_submits = self.idempotent_submits
        return proxy

    def describe(self) -> ServiceDescription:
        """Introspect the service (``GET`` on the service resource)."""
        return ServiceDescription.from_json(self._client.get())

    def describe_raw(self) -> dict[str, Any]:
        return self._client.get()

    def submit_dict(self, inputs: dict[str, Any], idempotency_key: str | None = None) -> JobHandle:
        """``POST`` a request; returns the handle of the created job.

        An explicit ``idempotency_key`` (or :attr:`idempotent_submits`)
        marks the POST as replayable for gateways and retry layers.
        """
        headers: dict[str, str] = {}
        if idempotency_key is None and self.idempotent_submits:
            idempotency_key = new_idempotency_key()
        if idempotency_key is not None:
            headers[IDEMPOTENCY_KEY_HEADER] = idempotency_key
        created = self._client.request_json("POST", "", payload=inputs, headers=headers)
        handle = JobHandle(created["uri"], self._client)
        handle._last = created
        return handle

    def submit(self, **inputs: Any) -> JobHandle:
        return self.submit_dict(inputs)

    def __call__(self, timeout: float | None = None, **inputs: Any) -> dict[str, Any]:
        """Submit and wait: the synchronous convenience call."""
        return self.submit_dict(inputs).result(timeout=timeout)

    def __repr__(self) -> str:
        return f"ServiceProxy({self.uri!r})"
