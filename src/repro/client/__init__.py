"""Clients for computational web services (paper §3.5).

- :mod:`repro.client.client` — the Python client: a
  :class:`~repro.client.client.ServiceProxy` wraps one service URI, and a
  :class:`~repro.client.client.JobHandle` tracks one submitted job.
- :mod:`repro.client.cli` — the command-line client (``mathcloud`` /
  ``python -m repro.client.cli``), covering describe/submit/status/
  result/cancel/fetch plus catalogue search.

Since the access is plain REST+JSON, any HTTP client works too — these
are conveniences, not requirements (the paper's argument for REST).
"""

from repro.client.client import JobFailedError, JobHandle, ServiceProxy

__all__ = ["JobFailedError", "JobHandle", "ServiceProxy"]
