"""The command-line client.

::

    mathcloud describe  http://host:9000/services/invert
    mathcloud submit    http://host:9000/services/invert -p n=200 --wait
    mathcloud status    http://host:9000/services/invert/jobs/j-1
    mathcloud result    http://host:9000/services/invert/jobs/j-1
    mathcloud cancel    http://host:9000/services/invert/jobs/j-1
    mathcloud fetch     <file-uri> -o curve.json
    mathcloud search    http://host:9100 "matrix inversion" --tag cas

Parameters given as ``-p name=value`` are parsed as JSON when possible and
fall back to strings, so ``-p n=4 -p mode=block`` does what it looks like.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.client.client import JobFailedError, JobHandle, ServiceProxy
from repro.http.client import ClientError, RestClient
from repro.http.registry import TransportRegistry
from repro.http.transport import TransportError


def parse_parameter(text: str) -> tuple[str, Any]:
    """Parse one ``name=value`` option (value as JSON, else string)."""
    name, separator, raw = text.partition("=")
    if not separator or not name:
        raise argparse.ArgumentTypeError(f"expected name=value, got {text!r}")
    try:
        return name, json.loads(raw)
    except ValueError:
        return name, raw


def parse_header(text: str) -> tuple[str, str]:
    name, separator, value = text.partition(":")
    if not separator or not name:
        raise argparse.ArgumentTypeError(f"expected Name:value, got {text!r}")
    return name.strip(), value.strip()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mathcloud", description="Command-line client for MathCloud services."
    )
    parser.add_argument(
        "-H",
        "--header",
        type=parse_header,
        action="append",
        default=[],
        help="extra request header (repeatable), e.g. -H 'X-On-Behalf-Of:CN=alice'",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    describe = commands.add_parser("describe", help="show a service description")
    describe.add_argument("service_uri")

    submit = commands.add_parser("submit", help="submit a request to a service")
    submit.add_argument("service_uri")
    submit.add_argument(
        "-p", "--param", type=parse_parameter, action="append", default=[], dest="params"
    )
    submit.add_argument("--inputs-json", help="all inputs as one JSON object")
    submit.add_argument("--wait", action="store_true", help="poll until the job finishes")
    submit.add_argument("--timeout", type=float, default=None)

    for name, help_text in (
        ("status", "show a job representation"),
        ("result", "wait for a job and print its results"),
        ("cancel", "cancel a job / delete its data"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("job_uri")
        if name == "result":
            sub.add_argument("--timeout", type=float, default=None)

    fetch = commands.add_parser("fetch", help="download a file resource")
    fetch.add_argument("file_uri")
    fetch.add_argument("-o", "--output", help="write to file instead of stdout")

    search = commands.add_parser("search", help="query a service catalogue")
    search.add_argument("catalogue_uri")
    search.add_argument("query", nargs="?", default="")
    search.add_argument("--tag", default=None)
    search.add_argument("--available-only", action="store_true")
    return parser


def _print_json(data: Any, stream: Any) -> None:
    json.dump(data, stream, indent=2, ensure_ascii=False)
    stream.write("\n")


def main(
    argv: Sequence[str] | None = None,
    registry: TransportRegistry | None = None,
    stdout: Any = None,
    stderr: Any = None,
) -> int:
    """CLI entry point; ``registry`` is injectable for in-process testing."""
    stdout = stdout or sys.stdout
    stderr = stderr or sys.stderr
    parser = build_parser()
    options = parser.parse_args(argv)
    headers = dict(options.header)
    registry = registry or TransportRegistry()
    try:
        return _dispatch(options, registry, headers, stdout)
    except JobFailedError as error:
        print(f"error: {error}", file=stderr)
        return 3
    except (ClientError, TransportError) as error:
        print(f"error: {error}", file=stderr)
        return 2


def _dispatch(
    options: argparse.Namespace,
    registry: TransportRegistry,
    headers: dict[str, str],
    stdout: Any,
) -> int:
    if options.command == "describe":
        proxy = ServiceProxy(options.service_uri, registry, headers=headers)
        _print_json(proxy.describe_raw(), stdout)
        return 0

    if options.command == "submit":
        proxy = ServiceProxy(options.service_uri, registry, headers=headers)
        inputs = dict(options.params)
        if options.inputs_json:
            inputs = {**json.loads(options.inputs_json), **inputs}
        handle = proxy.submit_dict(inputs)
        if options.wait:
            handle.wait(timeout=options.timeout)
        _print_json(handle.representation, stdout)
        return 0

    client = RestClient(registry, headers=headers)
    if options.command == "status":
        _print_json(client.get(options.job_uri), stdout)
        return 0
    if options.command == "result":
        handle = JobHandle(options.job_uri, client)
        _print_json(handle.result(timeout=options.timeout), stdout)
        return 0
    if options.command == "cancel":
        client.delete(options.job_uri)
        print("cancelled", file=stdout)
        return 0
    if options.command == "fetch":
        content = client.get_bytes(options.file_uri)
        if options.output:
            with open(options.output, "wb") as sink:
                sink.write(content)
            print(f"wrote {len(content)} bytes to {options.output}", file=stdout)
        else:
            stdout.write(content.decode("utf-8", errors="replace"))
        return 0
    if options.command == "search":
        query: dict[str, Any] = {"q": options.query}
        if options.tag:
            query["tag"] = options.tag
        if options.available_only:
            query["available"] = "true"
        results = client.get(options.catalogue_uri.rstrip("/") + "/search", query=query)
        _print_json(results, stdout)
        return 0
    raise AssertionError(f"unhandled command {options.command!r}")


if __name__ == "__main__":
    sys.exit(main())
