"""The fault plan: a seeded scenario schedule queried at injection points.

Determinism model: every ``(site, scenario)`` pair owns an independent
``random.Random`` stream seeded from ``f"{seed}:{site}:{index}"`` (string
seeding hashes with SHA-512, so streams are stable across processes and
``PYTHONHASHSEED``). A decision consumes draws only from its own streams,
in the order the site queries the plan — so as long as a workload issues
operations in a fixed order, the same seed produces the same fault
schedule, regardless of what other sites do in between.
"""

from __future__ import annotations

import random
import re
import threading
from dataclasses import dataclass
from typing import Iterable

#: Scenario kinds handled by the wrapping transport.
TRANSPORT_KINDS = frozenset({"connect-refused", "drop", "partial-write", "delay"})

#: Every kind the DSL accepts, and which injection point consumes it.
SCENARIO_KINDS = TRANSPORT_KINDS | frozenset(
    {
        "crash-restart",  # CrashController (gateway replicas)
        "cold-restart",  # CrashController cold mode (journal teardown+rebuild)
        "worker-stall",  # WorkerStallHook (ExecutorPool task_hook)
        "node-death",  # BatchNodeChaos (batch cluster nodes)
        "server-drop",  # ServerDropHook (RestServer fault_hook)
        "server-drop-mid-write",  # ServerDropHook: sever after a partial response
    }
)


@dataclass(frozen=True)
class Scenario:
    """One declarative fault source.

    ``rate`` is the per-query injection probability; ``target`` is a regex
    the query subject (a URL, a pool name, a replica or node name) must
    match for the scenario to apply. ``delay``/``jitter`` size delay and
    stall faults; ``duration`` is how many controller steps a crashed
    replica or dead node stays away.
    """

    kind: str
    rate: float
    target: str = ""
    delay: float = 0.02
    jitter: float = 0.0
    duration: int = 3

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(f"unknown scenario kind {self.kind!r}; choose from {sorted(SCENARIO_KINDS)}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        if self.delay < 0 or self.jitter < 0:
            raise ValueError("delay and jitter must be >= 0")
        if self.duration < 1:
            raise ValueError("duration must be at least 1 step")


@dataclass(frozen=True)
class Fault:
    """One concrete injection decision returned by :meth:`FaultPlan.decide`."""

    kind: str
    site: str
    subject: str
    delay: float = 0.0
    duration: int = 1


@dataclass(frozen=True)
class FaultEvent:
    """One log row: what was injected where (for repro messages)."""

    index: int
    site: str
    kind: str
    subject: str
    detail: str = ""


class FaultPlan:
    """Seeded, thread-safe fault schedule over a set of scenarios."""

    def __init__(self, seed: int, scenarios: Iterable[Scenario]):
        self.seed = seed
        self.scenarios: tuple[Scenario, ...] = tuple(scenarios)
        self._lock = threading.Lock()
        self._streams: dict[str, random.Random] = {}
        self._patterns: dict[str, "re.Pattern[str]"] = {}
        self._active = True
        self._events: list[FaultEvent] = []

    # -------------------------------------------------------------- control

    @property
    def active(self) -> bool:
        with self._lock:
            return self._active

    def deactivate(self) -> None:
        """Stop injecting (the chaos harness's settle phase)."""
        with self._lock:
            self._active = False

    def activate(self) -> None:
        with self._lock:
            self._active = True

    # ------------------------------------------------------------ decisions

    def decide(
        self,
        site: str,
        subject: str = "",
        kinds: "frozenset[str] | set[str] | None" = None,
    ) -> Fault | None:
        """Whether (and what) to inject for one operation at ``site``.

        Every applicable scenario draws from its own stream on every call,
        so streams stay aligned with the site's operation count whether or
        not earlier scenarios hit; the first hit (in declaration order)
        wins.
        """
        with self._lock:
            if not self._active:
                return None
            chosen: Fault | None = None
            for index, scenario in enumerate(self.scenarios):
                if kinds is not None and scenario.kind not in kinds:
                    continue
                if scenario.target and not self._pattern(scenario.target).search(subject):
                    continue
                stream = self._stream(f"{site}:{index}")
                hit = stream.random() < scenario.rate
                if not hit or chosen is not None:
                    continue
                delay = scenario.delay + (stream.random() * scenario.jitter if scenario.jitter else 0.0)
                chosen = Fault(
                    kind=scenario.kind,
                    site=site,
                    subject=subject,
                    delay=delay,
                    duration=scenario.duration,
                )
            if chosen is not None:
                self._record(chosen.site, chosen.kind, chosen.subject, f"delay={chosen.delay:.3f}")
            return chosen

    def stream(self, name: str) -> random.Random:
        """A named derived PRNG stream (controllers pick victims from it)."""
        with self._lock:
            return self._stream(f"stream:{name}")

    # -------------------------------------------------------------- logging

    def record(self, site: str, kind: str, subject: str, detail: str = "") -> None:
        """Log an externally-applied event (controllers call this)."""
        with self._lock:
            self._record(site, kind, subject, detail)

    @property
    def events(self) -> list[FaultEvent]:
        with self._lock:
            return list(self._events)

    def describe(self) -> str:
        """One line naming the seed and scenario mix (for repro messages)."""
        kinds = ",".join(f"{s.kind}@{s.rate:g}" for s in self.scenarios)
        with self._lock:
            count = len(self._events)
        return f"seed={self.seed} scenarios=[{kinds}] events={count}"

    # ------------------------------------------------------------ internals

    def _stream(self, name: str) -> random.Random:
        stream = self._streams.get(name)
        if stream is None:
            stream = self._streams[name] = random.Random(f"{self.seed}:{name}")
        return stream

    def _pattern(self, target: str) -> "re.Pattern[str]":
        pattern = self._patterns.get(target)
        if pattern is None:
            pattern = self._patterns[target] = re.compile(target)
        return pattern

    def _record(self, site: str, kind: str, subject: str, detail: str) -> None:
        self._events.append(FaultEvent(len(self._events), site, kind, subject, detail))
