"""Plan-driven hooks for the runtime pool and the TCP server.

:class:`WorkerStallHook` is assigned to an
:class:`~repro.runtime.pool.ExecutorPool`'s ``task_hook``: each task
about to run may be stalled by a seeded delay, simulating a handler
thread wedged on slow I/O. :class:`ServerDropHook` is passed to
:class:`~repro.http.server.RestServer` as ``fault_hook``: a request may
have its connection severed before any response bytes go out, which is
what a crashing server looks like to a keep-alive client.
"""

from __future__ import annotations

import time

from repro.faults.plan import FaultPlan
from repro.http.messages import Request


class WorkerStallHook:
    """Stall pool workers per the plan's ``worker-stall`` scenarios."""

    def __init__(self, plan: FaultPlan, site: str = "pool"):
        self.plan = plan
        self.site = site

    def __call__(self, pool_name: str) -> None:
        fault = self.plan.decide(self.site, subject=pool_name, kinds={"worker-stall"})
        if fault is not None:
            time.sleep(fault.delay)


class ServerDropHook:
    """Sever connections per the plan's ``server-drop*`` scenarios.

    Returns ``"drop"`` to make the server close the socket without
    answering, ``"drop-mid-write"`` to close it after a partial response
    (the torn-response variant a client cannot tell from a server crash
    mid-send); any other return lets the request proceed (after an
    optional seeded delay).
    """

    def __init__(self, plan: FaultPlan, site: str = "server"):
        self.plan = plan
        self.site = site

    def __call__(self, request: Request) -> "str | None":
        subject = f"{request.method} {request.path}"
        fault = self.plan.decide(
            self.site,
            subject=subject,
            kinds={"server-drop", "server-drop-mid-write", "delay"},
        )
        if fault is None:
            return None
        if fault.kind == "server-drop":
            return "drop"
        if fault.kind == "server-drop-mid-write":
            return "drop-mid-write"
        time.sleep(fault.delay)
        return None
