"""A transport wrapper that injects connection-level faults.

Wraps any :class:`~repro.http.transport.Transport` and consults the plan
once per request. The four transport fault kinds map onto the failure
classes the rest of the platform distinguishes:

- ``connect-refused`` → :class:`ConnectError` *without* forwarding: the
  server provably never saw the request (the gateway may re-route it).
- ``partial-write`` → plain :class:`TransportError` *without* forwarding:
  the connection died mid-send, the framing never completed — but the
  caller cannot know that, so the error is deliberately ambiguous.
- ``drop`` → the request IS forwarded (side effects happen on the
  server), then :class:`TransportError`: the response was lost on the
  wire. This is the scenario that separates correct idempotent-replay
  handling from duplicate-job bugs.
- ``delay`` → sleep a seeded delay, then forward normally (latency and
  jitter without failure).
"""

from __future__ import annotations

import time
from typing import Mapping

from repro.faults.plan import TRANSPORT_KINDS, FaultPlan
from repro.http.messages import Response
from repro.http.transport import ConnectError, Transport, TransportError


class FaultInjectingTransport(Transport):
    """Injects plan-scheduled faults in front of an inner transport."""

    def __init__(self, inner: Transport, plan: FaultPlan, site: str = "transport"):
        self.inner = inner
        self.plan = plan
        self.site = site
        self.schemes = inner.schemes

    def request(
        self,
        method: str,
        url: str,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
    ) -> Response:
        fault = self.plan.decide(self.site, subject=f"{method.upper()} {url}", kinds=TRANSPORT_KINDS)
        if fault is None:
            return self.inner.request(method, url, headers=headers, body=body)
        if fault.kind == "connect-refused":
            raise ConnectError(f"injected connect-refused: {method} {url}")
        if fault.kind == "partial-write":
            raise TransportError(f"injected partial write: {method} {url}")
        if fault.kind == "drop":
            # the request reaches the server; only the response is lost
            self.inner.request(method, url, headers=headers, body=body)
            raise TransportError(f"injected mid-request drop: {method} {url}")
        # delay: seeded latency, then the real exchange
        time.sleep(fault.delay)
        return self.inner.request(method, url, headers=headers, body=body)
