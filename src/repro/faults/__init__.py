"""Deterministic fault injection for the gateway/container stack.

Everything here is seed-driven: a :class:`FaultPlan` compiles a list of
:class:`Scenario` declarations plus one integer seed into per-site PRNG
streams, so the exact same fault schedule replays from the same seed — a
failing chaos run is a one-line repro command, not a shrug.

The plan is threaded through the platform's existing seams:

- :class:`FaultInjectingTransport` wraps any client transport and injects
  connect-refused, mid-request drops, partial writes and response delays;
- :class:`WorkerStallHook` plugs into :class:`repro.runtime.ExecutorPool`
  (``task_hook``) to stall handler threads;
- :class:`ServerDropHook` plugs into :class:`repro.http.server.RestServer`
  (``fault_hook``) to sever connections before the response goes out, or
  mid-write after a partial response (``server-drop-mid-write``);
- :class:`CrashController` crashes and restarts gateway replicas, and
  :class:`BatchNodeChaos` kills and restores batch cluster nodes, both on
  a deterministic operation clock.
"""

from repro.faults.controller import BatchNodeChaos, CrashController
from repro.faults.hooks import ServerDropHook, WorkerStallHook
from repro.faults.plan import Fault, FaultEvent, FaultPlan, Scenario
from repro.faults.transport import FaultInjectingTransport

__all__ = [
    "BatchNodeChaos",
    "CrashController",
    "Fault",
    "FaultEvent",
    "FaultInjectingTransport",
    "FaultPlan",
    "Scenario",
    "ServerDropHook",
    "WorkerStallHook",
]
