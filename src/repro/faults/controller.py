"""Crash controllers: replica and batch-node failures on an op clock.

Wall-clock scheduling would make chaos runs racy; instead both
controllers advance on an explicit *operation clock* — the workload calls
:meth:`step` between operations, and crash/restore decisions are drawn
from the plan's seeded streams at those points only. A crashed replica
recovers after ``duration`` steps (the scenario's field), so an entire
run's failure schedule is a pure function of the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.batch.cluster import Cluster
from repro.faults.plan import FaultPlan


@dataclass
class _Handle:
    name: str
    stop: Callable[[], None]
    start: Callable[[], None]
    #: Cold-restart pair, when the replica supports journal recovery:
    #: ``cold_stop`` tears the object graph down mid-flight (journal closes
    #: first), ``cold_start`` rebuilds a fresh replica over the same
    #: journal directory. ``None`` disables cold faults for this replica.
    cold_stop: "Callable[[], None] | None" = None
    cold_start: "Callable[[], None] | None" = None
    up: bool = True
    restore_at: int = 0
    #: Whether the current outage is a cold one (restores via cold_start).
    cold_down: bool = False


class CrashController:
    """Crashes and restarts registered replicas per the plan.

    ``stop``/``start`` callables model a *warm* crash (for in-process
    replicas: unbind/rebind the local authority; for TCP replicas:
    stop/start the server) — in-memory state survives. A replica
    registered with a ``cold_stop``/``cold_start`` pair can also draw
    ``cold-restart`` faults: the object graph is torn down and rebuilt
    from its write-ahead journal, so only journaled state survives.
    ``on_change`` runs after every membership change — the chaos harness
    uses it to drive deterministic health probes. ``min_up`` replicas are
    always left standing so a schedule cannot wedge the workload on a
    total outage (set it to 0 to allow one).
    """

    def __init__(
        self,
        plan: FaultPlan,
        site: str = "crash",
        on_change: "Callable[[], None] | None" = None,
        min_up: int = 1,
    ):
        self.plan = plan
        self.site = site
        self.on_change = on_change
        self.min_up = min_up
        self._handles: list[_Handle] = []
        self._ops = 0
        #: How many cold restarts this controller has performed.
        self.cold_restarts = 0

    def register(
        self,
        name: str,
        stop: Callable[[], None],
        start: Callable[[], None],
        cold_stop: "Callable[[], None] | None" = None,
        cold_start: "Callable[[], None] | None" = None,
    ) -> None:
        self._handles.append(
            _Handle(name, stop, start, cold_stop=cold_stop, cold_start=cold_start)
        )

    @property
    def up_count(self) -> int:
        return sum(1 for handle in self._handles if handle.up)

    def step(self) -> None:
        """Advance the op clock: restore due replicas, maybe crash one."""
        self._ops += 1
        changed = False
        for handle in self._handles:
            if not handle.up:
                if self._ops >= handle.restore_at:
                    self._restore(handle, f"op={self._ops}")
                    changed = True
                continue
            kinds = {"crash-restart"}
            if handle.cold_stop is not None:
                kinds.add("cold-restart")
            fault = self.plan.decide(self.site, subject=handle.name, kinds=kinds)
            if fault is not None and self.up_count > self.min_up:
                if fault.kind == "cold-restart":
                    handle.cold_stop()
                    handle.cold_down = True
                else:
                    handle.stop()
                handle.up = False
                handle.restore_at = self._ops + fault.duration
                changed = True
        if changed and self.on_change is not None:
            self.on_change()

    def restore_all(self) -> None:
        """Bring every crashed replica back (the settle phase)."""
        changed = False
        for handle in self._handles:
            if not handle.up:
                self._restore(handle, "settle")
                changed = True
        if changed and self.on_change is not None:
            self.on_change()

    def _restore(self, handle: _Handle, detail: str) -> None:
        if handle.cold_down:
            handle.cold_start()
            handle.cold_down = False
            self.cold_restarts += 1
            self.plan.record(self.site, "cold-restart", handle.name, detail)
        else:
            handle.start()
            self.plan.record(self.site, "restart", handle.name, detail)
        handle.up = True


class BatchNodeChaos:
    """Kills and restores batch cluster nodes per ``node-death`` scenarios."""

    def __init__(self, plan: FaultPlan, cluster: Cluster, site: str = "batch", min_up: int = 1):
        self.plan = plan
        self.cluster = cluster
        self.site = site
        self.min_up = min_up
        self._ops = 0
        self._down: dict[str, int] = {}

    def step(self) -> None:
        self._ops += 1
        for name, restore_at in list(self._down.items()):
            if self._ops >= restore_at:
                self.cluster.restore_node(name)
                del self._down[name]
                self.plan.record(self.site, "node-restore", name, f"op={self._ops}")
        for node in self.cluster.nodes:
            if node.name in self._down:
                continue
            if len(self.cluster.nodes) - len(self._down) <= self.min_up:
                break
            fault = self.plan.decide(self.site, subject=node.name, kinds={"node-death"})
            if fault is not None:
                killed = self.cluster.fail_node(node.name)
                self._down[node.name] = self._ops + fault.duration
                self.plan.record(self.site, "node-death", node.name, f"killed={len(killed)}")

    def restore_all(self) -> None:
        for name in list(self._down):
            self.cluster.restore_node(name)
            del self._down[name]
            self.plan.record(self.site, "node-restore", name, "settle")
